//! Web people search: the paper's motivating scenario.
//!
//! A user searches for an ambiguous name ("cohen") and gets 100 pages back
//! that actually talk about several different people. We resolve the block
//! and present the results *grouped by real-world person*, each group
//! summarised by its most frequent full name, organizations and concepts.
//!
//! Run with: `cargo run --release --example web_people_search`

use std::collections::BTreeMap;

use weber::core::blocking::prepare_dataset;
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{generate, presets};
use weber::eval::MetricSet;
use weber::textindex::TfIdf;

fn main() {
    let dataset = generate(&presets::www05_like(20100301));
    let prepared = prepare_dataset(&dataset, TfIdf::default());
    let query = "cohen";
    let nb = prepared
        .blocks
        .iter()
        .find(|b| b.block.query_name() == query)
        .expect("the www05-like corpus contains a 'cohen' block");

    println!(
        "web people search: '{query}' ({} result pages)",
        nb.block.len()
    );

    let resolver = Resolver::new(ResolverConfig::default()).expect("valid configuration");
    let supervision = Supervision::sample_from_truth(&nb.truth, 0.1, 7);
    let resolution = resolver
        .resolve(&nb.block, &supervision)
        .expect("resolution");

    // Group result pages by resolved entity.
    let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (doc, &label) in resolution.partition.labels().iter().enumerate() {
        groups.entry(label).or_default().push(doc);
    }
    println!(
        "resolved into {} distinct people (ground truth: {})\n",
        groups.len(),
        nb.truth.cluster_count()
    );

    // Show the five largest groups with extracted profile summaries.
    let mut ordered: Vec<(u32, Vec<usize>)> = groups.into_iter().collect();
    ordered.sort_by_key(|(_, docs)| std::cmp::Reverse(docs.len()));
    for (label, docs) in ordered.iter().take(5) {
        let mut names: BTreeMap<&str, u32> = BTreeMap::new();
        let mut orgs: BTreeMap<&str, u32> = BTreeMap::new();
        let mut concepts: BTreeMap<&str, u32> = BTreeMap::new();
        for &d in docs {
            let f = nb.block.features(d);
            if let Some(n) = f.most_frequent_person() {
                *names.entry(n).or_insert(0) += 1;
            }
            for o in &f.organizations {
                *orgs.entry(o).or_insert(0) += 1;
            }
            for c in &f.concepts {
                *concepts.entry(c).or_insert(0) += 1;
            }
        }
        let top = |m: &BTreeMap<&str, u32>| {
            let mut v: Vec<_> = m.iter().collect();
            v.sort_by_key(|(_, &c)| std::cmp::Reverse(c));
            v.into_iter()
                .take(2)
                .map(|(s, _)| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "person #{label}: {} pages | name: {} | orgs: {} | topics: {}",
            docs.len(),
            top(&names),
            top(&orgs),
            top(&concepts),
        );
    }

    let metrics = MetricSet::evaluate(&resolution.partition, &nb.truth);
    println!(
        "\nquality vs ground truth: Fp {:.3}, pairwise F {:.3}, Rand {:.3}",
        metrics.fp, metrics.f, metrics.rand
    );
}
