//! Extending the suite with a custom similarity function.
//!
//! The paper's framework is open-ended: "we cannot expect that we can
//! design a single similarity function which would perform optimally in
//! all cases". This example adds an eleventh function — location overlap —
//! plugs it into the resolver next to F1–F10, and shows that the
//! per-region accuracy machinery applies to it unchanged.
//!
//! Run with: `cargo run --release --example custom_similarity`

use std::sync::Arc;

use weber::core::blocking::prepare_dataset;
use weber::core::decision::DecisionCriterion;
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{generate, presets};
use weber::eval::MetricSet;
use weber::ml::regions::RegionScheme;
use weber::simfun::block::PreparedBlock;
use weber::simfun::functions::SimilarityFunction;
use weber::simfun::set_sim::overlap_coefficient;
use weber::textindex::TfIdf;

/// Location overlap: two pages are similar if they mention the same places.
#[derive(Debug, Default, Clone, Copy)]
struct LocationOverlap;

impl SimilarityFunction for LocationOverlap {
    fn name(&self) -> &'static str {
        "location-overlap"
    }
    fn description(&self) -> &'static str {
        "Location entities on the page / number of overlapping locations"
    }
    fn compare(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        overlap_coefficient(&block.features(i).locations, &block.features(j).locations)
    }
}

fn main() {
    let dataset = generate(&presets::tiny(5));
    let prepared = prepare_dataset(&dataset, TfIdf::default());
    let nb = &prepared.blocks[0];
    let supervision = Supervision::sample_from_truth(&nb.truth, 0.2, 3);

    // Baseline: the standard ten functions.
    let standard = Resolver::new(ResolverConfig::default()).expect("valid configuration");
    let base = standard
        .resolve(&nb.block, &supervision)
        .expect("resolution");
    let base_metrics = MetricSet::evaluate(&base.partition, &nb.truth);

    // Extended: the same configuration plus our custom function.
    let extended_config = ResolverConfig::default().with_function(Arc::new(LocationOverlap));
    let extended = Resolver::new(extended_config).expect("valid configuration");
    let ext = extended
        .resolve(&nb.block, &supervision)
        .expect("resolution");
    let ext_metrics = MetricSet::evaluate(&ext.partition, &nb.truth);

    println!(
        "block '{}', {} documents",
        nb.block.query_name(),
        nb.block.len()
    );
    println!(
        "standard suite:  Fp {:.3}  (selected layer {})",
        base_metrics.fp,
        base.selected().map(|l| l.function).unwrap_or("-")
    );
    println!(
        "+ custom layer:  Fp {:.3}  (selected layer {})",
        ext_metrics.fp,
        ext.selected().map(|l| l.function).unwrap_or("-")
    );

    // The accuracy-estimation machinery works on the custom function too:
    // fit k-means regions to its similarity values and print per-region
    // link-existence accuracy, exactly as Figure 1 does for F3.
    let sims = weber::core::layers::similarity_graph(&nb.block, &LocationOverlap);
    let samples = supervision.labeled_values(|i, j| sims.get(i, j));
    let criterion = DecisionCriterion::RegionAccuracy(RegionScheme::kmeans(5));
    let fitted = criterion.fit(&samples);
    println!(
        "\ncustom function under region-accuracy criterion: training accuracy {:.3}",
        fitted.training_accuracy()
    );
    for value in [0.0, 0.5, 1.0] {
        println!(
            "  sim {value:.1} -> link? {}  (estimated link probability {:.3})",
            fitted.decide(value),
            fitted.link_probability(value)
        );
    }
}
