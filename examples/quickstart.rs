//! Quickstart: generate a small ambiguous-name corpus, resolve one block,
//! and score the result against ground truth.
//!
//! Run with: `cargo run --example quickstart`

use weber::core::blocking::prepare_dataset;
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{generate, presets};
use weber::eval::MetricSet;
use weber::textindex::TfIdf;

fn main() {
    // 1. A corpus of web pages about ambiguous person names, with ground
    //    truth. (In a real deployment this is your crawl; here we use the
    //    built-in synthetic generator.)
    let dataset = generate(&presets::tiny(7));
    println!(
        "generated '{}' corpus: {} names, {} documents",
        dataset.label,
        dataset.blocks.len(),
        dataset.document_count()
    );

    // 2. Run information extraction and TF-IDF preparation over every block.
    let prepared = prepare_dataset(&dataset, TfIdf::default());

    // 3. Configure the paper's full technique: all ten similarity functions,
    //    threshold + region-accuracy decision criteria, best-graph
    //    combination, transitive-closure clustering.
    let resolver = Resolver::new(ResolverConfig::default()).expect("valid configuration");

    // 4. Resolve each block and score it. The paper uses 10% supervision on
    //    100–150-document blocks; these demo blocks have only 24 documents,
    //    so we label 25% to get a comparable number of training pairs.
    for nb in &prepared.blocks {
        let supervision = Supervision::sample_from_truth(&nb.truth, 0.25, 42);
        let resolution = resolver
            .resolve(&nb.block, &supervision)
            .expect("resolution");
        let metrics = MetricSet::evaluate(&resolution.partition, &nb.truth);
        let selected = resolution
            .selected()
            .map(|l| format!("{}/{}", l.function, l.criterion))
            .unwrap_or_else(|| "-".into());
        println!(
            "name '{:9}' {} docs -> {} entities (truth {}), Fp {:.3}, F {:.3}, Rand {:.3}, best layer {}",
            nb.block.query_name(),
            nb.block.len(),
            resolution.partition.cluster_count(),
            nb.truth.cluster_count(),
            metrics.fp,
            metrics.f,
            metrics.rand,
            selected,
        );
    }
}
