//! Merge-based entity resolution (R-Swoosh) with data confidences.
//!
//! The alternative paradigm the paper's related work discusses: instead of
//! deciding all pairs and clustering, merge records as soon as they match,
//! accumulating evidence and degrading a confidence value with every
//! uncertain merge.
//!
//! Run with: `cargo run --release --example merge_based_er`

use weber::core::blocking::prepare_dataset;
use weber::core::supervision::Supervision;
use weber::core::swoosh::{r_swoosh, ProfileMatcher};
use weber::corpus::{generate, presets};
use weber::eval::MetricSet;
use weber::textindex::TfIdf;

fn main() {
    let dataset = generate(&presets::small(8));
    let prepared = prepare_dataset(&dataset, TfIdf::default());

    println!("merge-based (R-Swoosh) resolution, fitted profile matcher\n");
    for nb in &prepared.blocks {
        let supervision = Supervision::sample_from_truth(&nb.truth, 0.15, 3);
        let matcher = ProfileMatcher::fit(&nb.block, &supervision, 0.6);
        let out = r_swoosh(&nb.block, &matcher);
        let m = MetricSet::evaluate(&out.partition, &nb.truth);
        // The least confident surviving record tells you where to look.
        let least = out
            .records
            .iter()
            .min_by(|a, b| a.confidence.total_cmp(&b.confidence))
            .expect("non-empty block");
        println!(
            "name '{:9}' {} docs -> {} records after {} merges | Fp {:.3} | weights {:?}",
            nb.block.query_name(),
            nb.block.len(),
            out.records.len(),
            out.merges,
            m.fp,
            matcher.weights.map(|w| (w * 100.0).round() / 100.0),
        );
        println!(
            "    least confident record: {} pages, confidence {:.3} (review candidate)",
            least.members.len(),
            least.confidence
        );
    }
}
