//! Dataset generation, persistence and reload.
//!
//! Generates a WePS-like corpus, inspects its statistics (cluster-count
//! distribution, document lengths, feature coverage), writes it to JSON,
//! reads it back and verifies the round trip — the workflow for sharing a
//! fixed benchmark corpus between machines.
//!
//! Run with: `cargo run --release --example dataset_io`

use weber::corpus::{generate, presets, Dataset};
use weber::extract::pipeline::Extractor;

fn main() {
    let dataset = generate(&presets::weps_like(99));
    println!(
        "generated '{}' corpus (seed {}): {} names, {} documents",
        dataset.label,
        dataset.seed,
        dataset.blocks.len(),
        dataset.document_count()
    );

    // Corpus statistics.
    println!("\nper-name statistics:");
    for b in &dataset.blocks {
        let lens: Vec<usize> = b
            .documents
            .iter()
            .map(|d| d.text.split_whitespace().count())
            .collect();
        let with_url = b.documents.iter().filter(|d| d.url.is_some()).count();
        println!(
            "  {:9} {} docs, {} entities, {}-{} words, {}% with URL",
            b.query_name,
            b.len(),
            b.entity_count(),
            lens.iter().min().unwrap_or(&0),
            lens.iter().max().unwrap_or(&0),
            100 * with_url / b.len().max(1),
        );
    }

    // Feature coverage through the extraction pipeline.
    let extractor = Extractor::new(&dataset.gazetteer);
    let block = &dataset.blocks[0];
    let mut persons = 0;
    let mut orgs = 0;
    let mut concepts = 0;
    for d in &block.documents {
        let f = extractor.extract(&d.text, d.url.as_deref());
        persons += usize::from(f.most_frequent_person().is_some());
        orgs += usize::from(!f.organizations.is_empty());
        concepts += usize::from(!f.concepts.is_empty());
    }
    println!(
        "\nextraction coverage on '{}': person names {}/{}, organizations {}/{}, concepts {}/{}",
        block.query_name,
        persons,
        block.len(),
        orgs,
        block.len(),
        concepts,
        block.len()
    );

    // Persist and reload.
    let json = dataset.to_json().expect("serialisable");
    let path = std::env::temp_dir().join("weber_weps_like.json");
    std::fs::write(&path, &json).expect("writable temp dir");
    println!("\nwrote {} bytes to {}", json.len(), path.display());

    let reloaded =
        Dataset::from_json(&std::fs::read_to_string(&path).expect("readable")).expect("valid JSON");
    assert_eq!(reloaded.document_count(), dataset.document_count());
    assert_eq!(reloaded.blocks.len(), dataset.blocks.len());
    for (a, b) in reloaded.blocks.iter().zip(&dataset.blocks) {
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.truth_labels, b.truth_labels);
    }
    println!("reload verified: corpora are identical");
}
