//! Offline stub of `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal serialization framework exposing the subset of serde's API the
//! `weber` crates use: the [`Serialize`] / [`Deserialize`] traits and their
//! derive macros (named-field structs and unit-variant enums).
//!
//! Unlike real serde's visitor architecture, this stub is *value-based*:
//! serialization goes through the JSON-like [`Value`] tree. That is exactly
//! what the one consumer (`serde_json`) needs, and it keeps the hand-written
//! derive macro (no `syn`/`quote` offline) small and auditable.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like data tree — the interchange form of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number (stored as `f64`; integers beyond 2^53 lose precision).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=u64::MAX as f64).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a custom message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// What to produce when an object field of this type is absent.
    /// Errors by default; `Option<T>` overrides this to `None` (matching
    /// serde's treatment of optional fields).
    fn absent() -> Result<Self, DeError> {
        Err(DeError::custom("missing field"))
    }
}

/// Look up `key` in object entries and deserialize it (derive support).
pub fn from_field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {e}")))
        }
        None => T::absent().map_err(|_| DeError::custom(format!("missing field `{key}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom("expected boolean"))
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_f64().ok_or_else(|| DeError::custom("expected number"))?;
                Ok(n as $t)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }

    fn absent() -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::custom("expected 2-element array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_absent_is_none() {
        let obj: Vec<(String, Value)> = vec![];
        let v: Option<String> = from_field(&obj, "missing").unwrap();
        assert!(v.is_none());
        assert!(from_field::<String>(&obj, "missing").is_err());
    }

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("k".into(), Value::Number(3.0))]);
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(3));
        assert!(v.get("nope").is_none());
        assert_eq!(Value::Number(1.5).as_u64(), None);
    }

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(
            Vec::<String>::from_value(&vec!["a".to_string()].to_value()).unwrap(),
            vec!["a".to_string()]
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }
}
