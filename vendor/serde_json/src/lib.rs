//! Offline stub of `serde_json`: JSON text ⇄ the serde stub's [`Value`]
//! tree, plus the typed entry points (`to_string`, `to_string_pretty`,
//! `from_str`) the workspace uses.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// JSON (de)serialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a typed value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::new)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_value(value).map_err(Error::new)
}

// ---------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            indent,
            level,
            ('[', ']'),
            |o, item, i, l| write_value(o, item, i, l),
        ),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            level,
            ('{', '}'),
            |o, (k, val), i, l| {
                write_string(o, k);
                o.push(':');
                if i.is_some() {
                    o.push(' ');
                }
                write_value(o, val, i, l);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(out, item, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's f64 Display is shortest-roundtrip, which is valid JSON
        // except that it never emits an exponent for huge values; those are
        // beyond this stub's use cases.
        out.push_str(&format!("{n}"));
    } else {
        // Real serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"b\"\nc".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(0.25), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            assert_eq!(parse_value(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse_value(r#""aé☃ 😀 b\t""#).unwrap();
        assert_eq!(v, Value::String("aé☃ 😀 b\t".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![Some("x".to_string()), None];
        let json = to_string(&xs).unwrap();
        let back: Vec<Option<String>> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn float_display_roundtrips() {
        for x in [0.1, 1.0, 1e-7, 123456.789, -0.0, f64::MAX] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "{json}");
        }
    }
}
