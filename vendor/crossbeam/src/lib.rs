//! Offline stub of `crossbeam`.
//!
//! Provides the `channel` module (mpmc bounded/unbounded channels with
//! `try_send` backpressure semantics) and re-exports `std::thread::scope`
//! under `crossbeam::scope`'s modern name. Built on `Mutex` + `Condvar`
//! rather than lock-free queues — same semantics, adequate throughput for
//! this workspace's worker pools.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// `None` = unbounded.
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error from [`Sender::send`]: all receivers dropped. Returns the value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error from [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the value is returned.
        Full(T),
        /// All receivers dropped; the value is returned.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// True if this is the `Full` variant.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }

        /// Recover the value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

    /// Error from [`Receiver::recv`]: channel empty and all senders dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half; clone for multiple producers.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clone for multiple consumers.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake receivers blocked in recv().
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while the channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = match self.inner.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if self.inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if queue.len() >= cap => {
                        queue = match self.inner.not_full.wait(queue) {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                    }
                    _ => break,
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking; a full channel returns
        /// [`TrySendError::Full`] immediately (backpressure signal).
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut queue = match self.inner.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            match self.inner.queue.lock() {
                Ok(g) => g.len(),
                Err(p) => p.into_inner().len(),
            }
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = match self.inner.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = match self.inner.not_empty.wait(queue) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = match self.inner.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if let Some(value) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if self.inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            match self.inner.queue.lock() {
                Ok(g) => g.len(),
                Err(p) => p.into_inner().len(),
            }
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// A channel holding at most `cap` messages; `try_send` on a full
    /// channel fails fast with [`TrySendError::Full`]. A capacity of 0 is
    /// treated as capacity 1 (the stub has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    /// A channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }
}

/// `crossbeam::thread`-alike over `std::thread::scope`.
pub mod thread {
    /// Spawn scoped threads; `f` receives the [`std::thread::Scope`].
    pub fn scope<'env, F, T>(f: F) -> std::thread::Result<T>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError, TrySendError};

    #[test]
    fn bounded_backpressure() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        match tx.try_send(1) {
            Err(TrySendError::Disconnected(1)) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = bounded::<usize>(4);
        let total: usize = std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || rx.iter().sum::<usize>())
                })
                .collect();
            drop(rx);
            for chunk in 0..4 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..25 {
                        tx.send(chunk * 25 + i).unwrap();
                    }
                });
            }
            drop(tx);
            consumers.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0..100).sum::<usize>());
    }
}
