//! Offline stub of the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! a minimal, deterministic implementation of exactly the API surface the
//! `weber` crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! the [`Rng`]/[`RngExt`] method pair (`random_range`, `random_bool`), and
//! the slice helpers [`seq::SliceRandom::shuffle`] /
//! [`seq::IndexedRandom::choose`].
//!
//! The generator is `xoshiro256**` seeded via SplitMix64 — high-quality,
//! fast, and fully deterministic per seed, which is all the corpus
//! generator and sampling code require. It makes no attempt to be
//! value-compatible with the real `rand` crate.

/// A source of random 64-bit values.
pub trait Rng {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of the raw value.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`Rng`] (mirrors `rand::Rng`'s convenience
/// surface under its 0.9+ naming).
pub trait RngExt: Rng {
    /// A uniform sample from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

/// A range that can be sampled uniformly, yielding `T`. Implemented once,
/// generically over [`SampleUniform`], so integer-literal ranges leave `T`
/// as a plain inference variable that the use site resolves — the same
/// inference shape as the real crate.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range, like `rand`.
    fn sample_in<R: Rng>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampling rule over an interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_in<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

// The span is computed in the type's unsigned twin so signed intervals wider
// than the signed max still measure correctly, then widened to u64.
macro_rules! impl_int_uniform {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    // Interval covers the whole 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
    fn sample_inclusive<R: Rng>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (rng.next_f64() as f32) * (hi - lo)
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: `xoshiro256**`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// In-place shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Item;
        /// A uniformly chosen element, or `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// `amount` distinct elements sampled without replacement (fewer if
        /// the slice is shorter), in random order.
        fn sample<R: Rng>(&self, rng: &mut R, amount: usize) -> SliceSample<'_, Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }

        fn sample<R: Rng>(&self, rng: &mut R, amount: usize) -> SliceSample<'_, T> {
            // Partial Fisher–Yates over an index vector.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            let take = amount.min(self.len());
            for i in 0..take {
                let j = i + (rng.next_u64() % (self.len() - i) as u64) as usize;
                indices.swap(i, j);
            }
            indices.truncate(take);
            SliceSample {
                slice: self,
                indices: indices.into_iter(),
            }
        }
    }

    /// Iterator returned by [`IndexedRandom::sample`].
    pub struct SliceSample<'a, T> {
        slice: &'a [T],
        indices: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceSample<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.indices.next().map(|i| &self.slice[i])
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.indices.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceSample<'_, T> {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..3.5);
            assert!((-2.0..3.5).contains(&f));
            let i = rng.random_range(0u32..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn random_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose_cover_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
