//! Offline stub of `proptest`.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], the [`Strategy`] trait with
//! `prop_map`, numeric-range and regex-string strategies, tuple strategies,
//! and `collection::{vec, btree_set}`.
//!
//! Cases are generated from a deterministic per-test seed (hash of the test
//! name), so failures are reproducible. There is **no shrinking**: a failing
//! case reports its inputs via the assertion message only.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Test-case generation RNG (a seeded [`StdRng`]).
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG derived from the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Record a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ------------------------------------------------------------- regex strings

/// `&str` strategies are regex patterns (a generative subset: literals,
/// `.`, character classes, groups, and `{m}`/`{m,n}` repetition).
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = regex::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        regex::generate(&atoms, rng, &mut out);
        out
    }
}

mod regex {
    use super::TestRng;
    use rand::RngExt;

    pub enum Atom {
        Literal(char),
        /// Candidate characters of a class or of `.`.
        Class(Vec<char>),
        Group(Vec<(Atom, Repeat)>),
    }

    pub struct Repeat {
        pub min: u32,
        pub max: u32,
    }

    /// Characters `.` draws from: printable ASCII plus a few multi-byte
    /// code points so robustness tests see non-ASCII input.
    fn dot_chars() -> Vec<char> {
        let mut v: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
        v.extend(['é', 'ß', 'λ', '中', '☃']);
        v
    }

    pub fn parse(pattern: &str) -> Result<Vec<(Atom, Repeat)>, String> {
        let mut chars = pattern.chars().peekable();
        parse_seq(&mut chars, None)
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        until: Option<char>,
    ) -> Result<Vec<(Atom, Repeat)>, String> {
        let mut atoms = Vec::new();
        loop {
            let Some(&c) = chars.peek() else {
                return if until.is_none() {
                    Ok(atoms)
                } else {
                    Err("unterminated group".into())
                };
            };
            if Some(c) == until {
                chars.next();
                return Ok(atoms);
            }
            chars.next();
            let atom = match c {
                '.' => Atom::Class(dot_chars()),
                '[' => Atom::Class(parse_class(chars)?),
                '(' => Atom::Group(parse_seq(chars, Some(')'))?),
                '\\' => {
                    let esc = chars.next().ok_or("trailing backslash")?;
                    Atom::Literal(esc)
                }
                '*' | '+' | '?' | '|' => {
                    return Err(format!("unsupported regex operator `{c}`"));
                }
                c => Atom::Literal(c),
            };
            let repeat = parse_repeat(chars)?;
            atoms.push((atom, repeat));
        }
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Vec<char>, String> {
        let mut set = Vec::new();
        loop {
            let c = chars.next().ok_or("unterminated character class")?;
            match c {
                ']' => return Ok(set),
                '\\' => set.push(chars.next().ok_or("trailing backslash in class")?),
                c => {
                    if chars.peek() == Some(&'-') {
                        // Possible range; `-` before `]` is a literal.
                        chars.next();
                        match chars.peek() {
                            Some(&']') | None => {
                                set.push(c);
                                set.push('-');
                            }
                            Some(&end) => {
                                chars.next();
                                if (c as u32) > (end as u32) {
                                    return Err(format!("bad range {c}-{end}"));
                                }
                                for v in (c as u32)..=(end as u32) {
                                    if let Some(ch) = char::from_u32(v) {
                                        set.push(ch);
                                    }
                                }
                            }
                        }
                    } else {
                        set.push(c);
                    }
                }
            }
        }
    }

    fn parse_repeat(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Repeat, String> {
        if chars.peek() != Some(&'{') {
            return Ok(Repeat { min: 1, max: 1 });
        }
        chars.next();
        let mut spec = String::new();
        loop {
            match chars.next() {
                Some('}') => break,
                Some(c) => spec.push(c),
                None => return Err("unterminated repetition".into()),
            }
        }
        let parse_u32 = |s: &str| {
            s.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad repetition `{spec}`"))
        };
        match spec.split_once(',') {
            None => {
                let n = parse_u32(&spec)?;
                Ok(Repeat { min: n, max: n })
            }
            Some((lo, hi)) => Ok(Repeat {
                min: parse_u32(lo)?,
                max: parse_u32(hi)?,
            }),
        }
    }

    pub fn generate(atoms: &[(Atom, Repeat)], rng: &mut TestRng, out: &mut String) {
        for (atom, repeat) in atoms {
            let n = rng.random_range(repeat.min..=repeat.max);
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        let i = rng.random_range(0..set.len());
                        out.push(set[i]);
                    }
                    Atom::Group(inner) => generate(inner, rng, out),
                }
            }
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.min..self.max)
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; sizes are upper bounds (duplicates
    /// collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Define property tests (see crate docs for the supported forms).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let cfg = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("case {} of {}: {}", case, stringify!($name), e);
                }
            }
        }
        $crate::__proptest_fns!{ @cfg($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), a, b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn labels(n: usize) -> impl Strategy<Value = Vec<u32>> {
        collection::vec(0u32..(n as u32).max(1), n)
    }

    proptest! {
        #[test]
        fn ranges_and_maps(x in 3usize..10, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&f), "f out of range: {}", f);
        }

        #[test]
        fn regex_strings(s in "[a-c]{2,5}", t in ".{0,8}", u in "[a-z]{1,3}(\\.[a-z]{1,3}){1,2}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.chars().count() <= 8);
            prop_assert!(u.contains('.'), "{}", u);
        }

        #[test]
        fn collections(v in labels(7), set in collection::btree_set("[a-b]{1,2}", 0..8)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(set.len() <= 7);
        }

        #[test]
        fn tuples_and_prop_map(
            pairs in collection::vec((0usize..5, 0usize..5), 0..10)
                .prop_map(|ps| ps.into_iter().filter(|&(a, b)| a != b).collect::<Vec<_>>())
        ) {
            prop_assert!(pairs.iter().all(|&(a, b)| a != b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_applies(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = collection::vec(0u32..100, 5..20);
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
