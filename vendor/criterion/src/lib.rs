//! Offline stub of `criterion`.
//!
//! Same API shape (`criterion_group!`/`criterion_main!`, `bench_function`,
//! `benchmark_group` with throughput), but the measurement loop is a plain
//! wall-clock timer: each benchmark runs a warm-up pass and `sample_size`
//! timed samples, then prints mean time per iteration (and throughput when
//! configured). No statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch-size hint for [`Bencher::iter_batched`]; accepted for API
/// compatibility, ignored by the stub (inputs are always built one per
/// routine call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: criterion would batch many per allocation.
    SmallInput,
    /// Large inputs: criterion would batch few per allocation.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark driver. Collects timing samples per benchmark.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, None, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    #[doc(hidden)]
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, self.throughput, &mut f);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh inputs from `setup`; only the routine is
    /// timed, so consuming/mutating benchmarks stay repeatable.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] but passes the input by mutable
    /// reference instead of by value.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up: also calibrates iterations per sample to roughly 50ms,
    // so fast routines are timed over many iterations.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(50).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000);

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    let mut line = format!("{id:<40} {:>12}/iter", format_ns(mean_ns));
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  {:>14} elem/s", format_rate(rate)));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  {:>14} B/s", format_rate(rate)));
        }
        None => {}
    }
    println!("{line}");
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Declare a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(2);
        quick(&mut c);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_ns(12.34), "12.3 ns");
        assert!(format_ns(2_500.0).contains("µs"));
        assert!(format_rate(2.5e6).contains('M'));
    }
}
