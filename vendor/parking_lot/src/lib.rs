//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()`/`read()`/`write()` return guards directly (poison is swallowed
//! by taking the inner guard), matching parking_lot's no-poisoning design.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock; `lock()` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Shared access only if available right now.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access only if available right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        let r1 = l.read();
        let r2 = l.read();
        assert!(l.try_write().is_none());
        drop((r1, r2));
        assert!(l.try_write().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let counter = std::sync::Arc::new(Mutex::new(0u32));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let counter = std::sync::Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..100 {
                        *counter.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*counter.lock(), 400);
    }
}
