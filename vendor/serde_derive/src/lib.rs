//! Derive macros for the offline `serde` stub.
//!
//! Implemented with hand-rolled token parsing (the container has no
//! crates.io access, so `syn`/`quote` are unavailable). Supports exactly
//! the shapes the workspace derives on:
//!
//! - structs with named fields (no generics),
//! - enums whose variants are all unit variants (serialized as strings).
//!
//! Anything else produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (value-based).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize` (value-based).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
                 }}\n}}\n"
            )
        }
        (Item::Struct { name, fields }, Mode::Deserialize) => {
            let reads: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_field(obj, {f:?})?,\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{\n{reads}}})\n\
                 }}\n}}\n"
            )
        }
        (Item::Enum { name, variants }, Mode::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::String(String::from(match self {{\n{arms}}}))\n\
                 }}\n}}\n"
            )
        }
        (Item::Enum { name, variants }, Mode::Deserialize) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some({v:?}) => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match v.as_str() {{\n{arms}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    code.parse().unwrap()
}

/// Parse the derived item's shape out of its token stream.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes (`#[...]`, doc comments arrive in this form)
    // and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // Skip a `pub(...)` restriction if present.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde stub derive does not support generics on `{name}`"
            ));
        }
        other => {
            return Err(format!(
                "serde stub derive needs a braced body on `{name}`, got {other:?}"
            ));
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            fields: parse_named_fields(body, &name)?,
            name,
        }),
        "enum" => Ok(Item::Enum {
            variants: parse_unit_variants(body, &name)?,
            name,
        }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn parse_named_fields(body: TokenStream, item: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.next() else { break };
        let field = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "unsupported field shape in `{item}` (tuple struct?): {other:?}"
                ));
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}` of `{item}`, got {other:?}"
                ));
            }
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream, item: &str) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        // Skip attributes before the variant.
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tok) = tokens.next() else { break };
        let variant = match tok {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unexpected token in enum `{item}`: {other:?}")),
        };
        match tokens.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            other => {
                return Err(format!(
                    "serde stub derive supports only unit variants; \
                     `{item}::{variant}` is followed by {other:?}"
                ));
            }
        }
    }
    Ok(variants)
}
