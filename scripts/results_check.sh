#!/usr/bin/env bash
# Guard against results drift: re-run the two headline experiments and
# diff their payload against the archived results/*.txt.
#
# Manifest lines (the `#`-prefixed header and stage-timing footer the
# binaries emit) are stripped from both sides before diffing — they carry
# the git revision and wall times, which legitimately change run to run.
# The experiment payload is seeded and deterministic, so any payload diff
# means code changed behaviour without results/ being regenerated.
#
# Usage: scripts/results_check.sh
# Exits nonzero and prints the diff on drift.
set -euo pipefail
cd "$(dirname "$0")/.."

BINARIES=(fig2_www05 table2_comparison)

echo "==> building release experiment binaries"
cargo build --release -p weber-bench --bins 2>/dev/null || cargo build --release -p weber-bench --bins

strip_manifest() {
    grep -v '^#' "$1" || true
}

status=0
for bin in "${BINARIES[@]}"; do
    archive="results/${bin}.txt"
    if [[ ! -f "$archive" ]]; then
        echo "MISSING: $archive (run the binary and archive its output)"
        status=1
        continue
    fi
    echo "==> re-running $bin"
    fresh="$(mktemp)"
    "./target/release/${bin}" > "$fresh"
    if diff -u <(strip_manifest "$archive") <(strip_manifest "$fresh") > /dev/null; then
        echo "OK: $archive matches a fresh run"
    else
        echo "DRIFT: $archive no longer matches a fresh run of $bin:"
        diff -u <(strip_manifest "$archive") <(strip_manifest "$fresh") | head -60 || true
        status=1
    fi
    rm -f "$fresh"
done

if [[ $status -ne 0 ]]; then
    echo "results drift detected — regenerate results/*.txt from current main"
    echo "(cargo run --release -p weber-bench --bin <name> > results/<name>.txt)"
fi
exit $status
