#!/usr/bin/env bash
# Perf reporting: run the machine-readable perf + blocking harnesses and
# (optionally) the criterion ingest/pipeline benches.
#
#   scripts/bench.sh                 # emit BENCH_stream.json / BENCH_pipeline.json
#                                    #      / BENCH_block.json
#   scripts/bench.sh --smoke         # fast sanity run (small sizes, 1 rep)
#   scripts/bench.sh --criterion     # additionally run the criterion benches
#   scripts/bench.sh --bench-out DIR # write every BENCH_*.json into DIR
#
# If results/BENCH_stream_baseline.json / results/BENCH_pipeline_baseline.json
# exist, the reports include a speedup relative to them.
set -euo pipefail
cd "$(dirname "$0")/.."

PERF_ARGS=()
BLOCK_ARGS=()
RUN_CRITERION=0
EXPECT_DIR=0
for arg in "$@"; do
  if [ "$EXPECT_DIR" = 1 ]; then
    PERF_ARGS+=(--bench-out "$arg")
    BLOCK_ARGS+=(--bench-out "$arg")
    EXPECT_DIR=0
    continue
  fi
  case "$arg" in
    # Smoke runs use tiny sizes; route their output under target/ so they
    # never clobber the committed full-run BENCH_*.json records.
    --smoke) PERF_ARGS+=(--smoke
                         --stream-out target/BENCH_stream.smoke.json
                         --pipeline-out target/BENCH_pipeline.smoke.json)
             BLOCK_ARGS+=(--smoke --out target/BENCH_block.smoke.json) ;;
    --criterion) RUN_CRITERION=1 ;;
    --bench-out) EXPECT_DIR=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
[ "$EXPECT_DIR" = 1 ] && { echo "--bench-out needs a directory" >&2; exit 2; }

[ -f results/BENCH_stream_baseline.json ] &&
  PERF_ARGS+=(--stream-baseline results/BENCH_stream_baseline.json)
[ -f results/BENCH_pipeline_baseline.json ] &&
  PERF_ARGS+=(--pipeline-baseline results/BENCH_pipeline_baseline.json)

echo "==> cargo build --release -p weber-bench --bin perf --bin block_bench"
cargo build --release -p weber-bench --bin perf --bin block_bench

echo "==> perf harness"
target/release/perf "${PERF_ARGS[@]}"

echo "==> blocking harness"
target/release/block_bench "${BLOCK_ARGS[@]}"

if [ "$RUN_CRITERION" = 1 ]; then
  echo "==> criterion: stream + pipeline benches"
  cargo bench -p weber-bench --bench stream
  cargo bench -p weber-bench --bench pipeline
fi
