#!/usr/bin/env bash
# Perf reporting: run the machine-readable perf + blocking harnesses, the
# serve and route front-end load tests, and (optionally) the criterion
# benches.
#
#   scripts/bench.sh                 # emit BENCH_stream.json / BENCH_pipeline.json
#                                    #      / BENCH_block.json / BENCH_serve.json
#                                    #      / BENCH_route.json
#   scripts/bench.sh --smoke         # fast sanity run (small sizes, 1 rep)
#   scripts/bench.sh --criterion     # additionally run the criterion benches
#   scripts/bench.sh --bench-out DIR # write every BENCH_*.json into DIR
#
# If results/BENCH_stream_baseline.json / results/BENCH_pipeline_baseline.json
# exist, the reports include a speedup relative to them.
#
# The serve stage runs `weber loadgen` twice at the SAME arrival rate,
# each against a freshly started `weber serve` (per-name records grow as
# documents are ingested, so reusing one daemon would confound connection
# count with record size): once over 16 connections (unloaded) and once
# over many thousands of mostly-idle persistent connections (loaded).
# The two runs differ only in connection count, which isolates exactly
# what the event loop claims — holding 10k connections is close to free.
# Gates:
#   * zero protocol errors / early closes / unanswered requests in both runs;
#   * loaded ingest p99 <= MAX_P99_RATIO x unloaded ingest p99 (full runs);
#   * loaded throughput >= MIN_THROUGHPUT_FRAC x the committed baseline
#     results/BENCH_serve_baseline.json, when present (full runs).
#
# The route stage repeats the same unloaded/loaded pair against a sharded
# tier: ROUTE_BACKENDS `weber serve` daemons behind one `weber route --io
# event` router, with the loadgen pointed at the router. Same gates, with
# the throughput floor taken from results/BENCH_route_baseline.json; the
# loaded pass is what exercises the async outbound pool (every client
# connection funnels into a handful of pooled backend sockets driven by
# one outbound reactor).
set -euo pipefail
cd "$(dirname "$0")/.."

PERF_ARGS=()
BLOCK_ARGS=()
RUN_CRITERION=0
EXPECT_DIR=0
SMOKE=0
SERVE_OUT=BENCH_serve.json
ROUTE_OUT=BENCH_route.json
for arg in "$@"; do
  if [ "$EXPECT_DIR" = 1 ]; then
    PERF_ARGS+=(--bench-out "$arg")
    BLOCK_ARGS+=(--bench-out "$arg")
    SERVE_OUT="$arg/BENCH_serve.json"
    ROUTE_OUT="$arg/BENCH_route.json"
    EXPECT_DIR=0
    continue
  fi
  case "$arg" in
    # Smoke runs use tiny sizes; route their output under target/ so they
    # never clobber the committed full-run BENCH_*.json records.
    --smoke) SMOKE=1
             SERVE_OUT=target/BENCH_serve.smoke.json
             ROUTE_OUT=target/BENCH_route.smoke.json
             PERF_ARGS+=(--smoke
                         --stream-out target/BENCH_stream.smoke.json
                         --pipeline-out target/BENCH_pipeline.smoke.json)
             BLOCK_ARGS+=(--smoke --out target/BENCH_block.smoke.json) ;;
    --criterion) RUN_CRITERION=1 ;;
    --bench-out) EXPECT_DIR=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
[ "$EXPECT_DIR" = 1 ] && { echo "--bench-out needs a directory" >&2; exit 2; }

[ -f results/BENCH_stream_baseline.json ] &&
  PERF_ARGS+=(--stream-baseline results/BENCH_stream_baseline.json)
[ -f results/BENCH_pipeline_baseline.json ] &&
  PERF_ARGS+=(--pipeline-baseline results/BENCH_pipeline_baseline.json)

echo "==> cargo build --release -p weber-bench --bin perf --bin block_bench"
cargo build --release -p weber-bench --bin perf --bin block_bench

echo "==> perf harness"
target/release/perf "${PERF_ARGS[@]}"

echo "==> blocking harness"
target/release/block_bench "${BLOCK_ARGS[@]}"

# --- serve front-end load test ---------------------------------------------

# Loaded/unloaded shapes. Smoke keeps the whole stage under ~15 s; the
# full run holds thousands of mostly-idle persistent connections through
# one reactor thread, which is the regime the event loop exists for.
if [ "$SMOKE" = 1 ]; then
  LOADED_CONNS=256;  RATE=300; DURATION=2; WARMUP=1; NAMES=32
else
  LOADED_CONNS=10000; RATE=500; DURATION=10; WARMUP=2; NAMES=256
fi
UNLOADED_CONNS=16
MAX_P99_RATIO=5.0
MIN_THROUGHPUT_FRAC=0.5

echo "==> cargo build --release (weber binary)"
cargo build --release --quiet

echo "==> serve load test ($UNLOADED_CONNS vs $LOADED_CONNS connections at $RATE ops/s)"
WORK="$(mktemp -d)"
SERVE_PID=""
ROUTE_PIDS=()
serve_cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    for pid in ${ROUTE_PIDS[@]+"${ROUTE_PIDS[@]}"}; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap serve_cleanup EXIT

port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

# Start a fresh daemon, run one loadgen pass against it, shut it down.
run_pass() {
    local conns=$1 out=$2
    # Below the ephemeral range; see pick_port in the route stage.
    local port=$((20000 + RANDOM % 12000))
    while ! port_free "$port"; do port=$((port + 1)); done
    target/release/weber serve --listen "127.0.0.1:$port" --io event \
        --workers 2 --queue 1024 --max-connections $((LOADED_CONNS + 64)) \
        >>"$WORK/serve.log" 2>&1 &
    SERVE_PID=$!
    for _ in $(seq 1 100); do
        port_free "$port" || break
        sleep 0.1
    done
    port_free "$port" && { echo "serve bench: daemon never came up" >&2; cat "$WORK/serve.log" >&2; exit 1; }
    target/release/weber loadgen --connect "127.0.0.1:$port" \
        --connections "$conns" --rate "$RATE" \
        --duration "$DURATION" --warmup "$WARMUP" --names "$NAMES" \
        --out "$out" >>"$WORK/loadgen.log" 2>&1 \
        || { echo "serve bench: loadgen failed" >&2; cat "$WORK/loadgen.log" >&2; exit 1; }
    { exec 3<>"/dev/tcp/127.0.0.1/$port" &&
      printf '{"op":"shutdown"}\n' >&3 && head -n1 <&3 >/dev/null; } || true
    exec 3>&- 3<&- || true
    for _ in $(seq 1 100); do
        kill -0 "$SERVE_PID" 2>/dev/null || break
        sleep 0.1
    done
    kill "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
}

run_pass "$UNLOADED_CONNS" "$WORK/unloaded.json"
run_pass "$LOADED_CONNS"   "$WORK/loaded.json"

mkdir -p "$(dirname "$SERVE_OUT")"
jq -n --slurpfile u "$WORK/unloaded.json" --slurpfile l "$WORK/loaded.json" \
   --argjson max_ratio "$MAX_P99_RATIO" '
  ($u[0]) as $unloaded | ($l[0]) as $loaded |
  {
    config: {
      unloaded_connections: $unloaded.connections,
      unloaded_rate: $unloaded.target_rate,
      loaded_connections: $loaded.connections,
      loaded_rate: $loaded.target_rate,
      duration_s: $loaded.duration_s,
      names: $loaded.names,
      zipf_s: $loaded.zipf_s
    },
    unloaded: $unloaded,
    loaded: $loaded,
    p99_ratio_ingest: (if $unloaded.ingest.p99_us > 0
                       then $loaded.ingest.p99_us / $unloaded.ingest.p99_us
                       else null end),
    gate: { max_p99_ratio: $max_ratio }
  }' >"$SERVE_OUT"
echo "wrote $SERVE_OUT"

# Gates: correctness always; latency/throughput only on full runs (smoke
# shapes are too small for stable percentiles).
for run in unloaded loaded; do
  for field in errors setup_errors closed_early unanswered; do
    v=$(jq ".$field" "$WORK/$run.json")
    [ "$v" = "0" ] || { echo "serve bench: $run $field = $v (expected 0)" >&2; exit 1; }
  done
done

if [ "$SMOKE" = 0 ]; then
  ratio=$(jq '.p99_ratio_ingest' "$SERVE_OUT")
  ok=$(jq -n --argjson r "$ratio" --argjson max "$MAX_P99_RATIO" '$r != null and $r <= $max')
  [ "$ok" = "true" ] || {
    echo "serve bench: loaded ingest p99 is ${ratio}x unloaded (gate: <= $MAX_P99_RATIO)" >&2
    exit 1
  }
  echo "serve bench: loaded/unloaded ingest p99 ratio $ratio (gate <= $MAX_P99_RATIO)"
  if [ -f results/BENCH_serve_baseline.json ]; then
    ok=$(jq -n --slurpfile cur "$SERVE_OUT" \
               --slurpfile base results/BENCH_serve_baseline.json \
               --argjson frac "$MIN_THROUGHPUT_FRAC" '
      ($cur[0].loaded.throughput_ops_s) >= ($base[0].loaded.throughput_ops_s * $frac)')
    [ "$ok" = "true" ] || {
      echo "serve bench: loaded throughput regressed below ${MIN_THROUGHPUT_FRAC}x baseline" >&2
      jq '{now: .loaded.throughput_ops_s}' "$SERVE_OUT" >&2
      jq '{baseline: .loaded.throughput_ops_s}' results/BENCH_serve_baseline.json >&2
      exit 1
    }
    echo "serve bench: throughput within baseline gate"
  fi
fi

# --- route front-end load test ---------------------------------------------

# Same unloaded/loaded pair as the serve stage, but against a sharded
# tier: every request now crosses two hops (client -> router -> backend)
# and the loaded pass funnels thousands of client connections into the
# router's pooled backend sockets, all multiplexed by one outbound
# reactor thread.
if [ "$SMOKE" = 1 ]; then
  ROUTE_LOADED_CONNS=128
else
  ROUTE_LOADED_CONNS=2000
fi
ROUTE_BACKENDS=3
ROUTE_REPLICATION=2

# Stay below the kernel's ephemeral range (32768+): after a
# many-thousand-connection loadgen pass, ephemeral ports linger in
# TIME_WAIT and bind() fails with EADDRINUSE even though nothing is
# listening (which is all port_free can see).
pick_port() {
    local port=$((20000 + RANDOM % 12000))
    while ! port_free "$port"; do port=$((port + 1)); done
    echo "$port"
}

# Start fresh backends plus a fresh router, run one loadgen pass against
# the router, shut the whole tier down (the router's shutdown op
# broadcasts to every backend before closing).
run_route_pass() {
    local conns=$1 out=$2
    local backends=()
    local bport rport blist pid
    ROUTE_PIDS=()
    for _ in $(seq 1 "$ROUTE_BACKENDS"); do
        bport=$(pick_port)
        target/release/weber serve --listen "127.0.0.1:$bport" --io event \
            --workers 2 --queue 1024 >>"$WORK/route_backend.log" 2>&1 &
        ROUTE_PIDS+=($!)
        backends+=("127.0.0.1:$bport")
        # Wait for the bind so pick_port can't hand out this port again.
        for _ in $(seq 1 100); do
            port_free "$bport" || break
            sleep 0.1
        done
        port_free "$bport" && { echo "route bench: backend never came up" >&2; cat "$WORK/route_backend.log" >&2; exit 1; }
    done
    rport=$(pick_port)
    blist=$(IFS=,; echo "${backends[*]}")
    target/release/weber route --backends "$blist" --listen "127.0.0.1:$rport" \
        --io event --replication "$ROUTE_REPLICATION" --workers 2 --queue 1024 \
        --max-connections $((ROUTE_LOADED_CONNS + 64)) >>"$WORK/route.log" 2>&1 &
    ROUTE_PIDS+=($!)
    for _ in $(seq 1 100); do
        port_free "$rport" || break
        sleep 0.1
    done
    port_free "$rport" && { echo "route bench: router never came up" >&2; cat "$WORK/route.log" >&2; exit 1; }
    target/release/weber loadgen --connect "127.0.0.1:$rport" \
        --connections "$conns" --rate "$RATE" \
        --duration "$DURATION" --warmup "$WARMUP" --names "$NAMES" \
        --out "$out" >>"$WORK/route_loadgen.log" 2>&1 \
        || { echo "route bench: loadgen failed" >&2; cat "$WORK/route_loadgen.log" >&2; exit 1; }
    { exec 3<>"/dev/tcp/127.0.0.1/$rport" &&
      printf '{"op":"shutdown"}\n' >&3 && head -n1 <&3 >/dev/null; } || true
    exec 3>&- 3<&- || true
    for pid in "${ROUTE_PIDS[@]}"; do
        for _ in $(seq 1 100); do
            kill -0 "$pid" 2>/dev/null || break
            sleep 0.1
        done
        kill "$pid" 2>/dev/null || true
    done
    ROUTE_PIDS=()
}

echo "==> route load test ($ROUTE_BACKENDS backends, replication $ROUTE_REPLICATION, $UNLOADED_CONNS vs $ROUTE_LOADED_CONNS connections at $RATE ops/s)"
run_route_pass "$UNLOADED_CONNS"     "$WORK/route_unloaded.json"
run_route_pass "$ROUTE_LOADED_CONNS" "$WORK/route_loaded.json"

mkdir -p "$(dirname "$ROUTE_OUT")"
jq -n --slurpfile u "$WORK/route_unloaded.json" --slurpfile l "$WORK/route_loaded.json" \
   --argjson max_ratio "$MAX_P99_RATIO" \
   --argjson backends "$ROUTE_BACKENDS" --argjson replication "$ROUTE_REPLICATION" '
  ($u[0]) as $unloaded | ($l[0]) as $loaded |
  {
    config: {
      backends: $backends,
      replication: $replication,
      unloaded_connections: $unloaded.connections,
      unloaded_rate: $unloaded.target_rate,
      loaded_connections: $loaded.connections,
      loaded_rate: $loaded.target_rate,
      duration_s: $loaded.duration_s,
      names: $loaded.names,
      zipf_s: $loaded.zipf_s
    },
    unloaded: $unloaded,
    loaded: $loaded,
    p99_ratio_ingest: (if $unloaded.ingest.p99_us > 0
                       then $loaded.ingest.p99_us / $unloaded.ingest.p99_us
                       else null end),
    gate: { max_p99_ratio: $max_ratio }
  }' >"$ROUTE_OUT"
echo "wrote $ROUTE_OUT"

for run in route_unloaded route_loaded; do
  for field in errors setup_errors closed_early unanswered; do
    v=$(jq ".$field" "$WORK/$run.json")
    [ "$v" = "0" ] || { echo "route bench: $run $field = $v (expected 0)" >&2; exit 1; }
  done
done

if [ "$SMOKE" = 0 ]; then
  ratio=$(jq '.p99_ratio_ingest' "$ROUTE_OUT")
  ok=$(jq -n --argjson r "$ratio" --argjson max "$MAX_P99_RATIO" '$r != null and $r <= $max')
  [ "$ok" = "true" ] || {
    echo "route bench: loaded ingest p99 is ${ratio}x unloaded (gate: <= $MAX_P99_RATIO)" >&2
    exit 1
  }
  echo "route bench: loaded/unloaded ingest p99 ratio $ratio (gate <= $MAX_P99_RATIO)"
  if [ -f results/BENCH_route_baseline.json ]; then
    ok=$(jq -n --slurpfile cur "$ROUTE_OUT" \
               --slurpfile base results/BENCH_route_baseline.json \
               --argjson frac "$MIN_THROUGHPUT_FRAC" '
      ($cur[0].loaded.throughput_ops_s) >= ($base[0].loaded.throughput_ops_s * $frac)')
    [ "$ok" = "true" ] || {
      echo "route bench: loaded throughput regressed below ${MIN_THROUGHPUT_FRAC}x baseline" >&2
      jq '{now: .loaded.throughput_ops_s}' "$ROUTE_OUT" >&2
      jq '{baseline: .loaded.throughput_ops_s}' results/BENCH_route_baseline.json >&2
      exit 1
    }
    echo "route bench: throughput within baseline gate"
  fi
fi

if [ "$RUN_CRITERION" = 1 ]; then
  echo "==> criterion: stream + pipeline benches"
  cargo bench -p weber-bench --bench stream
  cargo bench -p weber-bench --bench pipeline
fi
