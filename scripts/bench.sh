#!/usr/bin/env bash
# Perf reporting: run the machine-readable perf harness and (optionally)
# the criterion ingest/pipeline benches.
#
#   scripts/bench.sh                 # emit BENCH_stream.json / BENCH_pipeline.json
#   scripts/bench.sh --smoke         # fast sanity run (small sizes, 1 rep)
#   scripts/bench.sh --criterion     # additionally run the criterion benches
#
# If results/BENCH_stream_baseline.json / results/BENCH_pipeline_baseline.json
# exist, the reports include a speedup relative to them.
set -euo pipefail
cd "$(dirname "$0")/.."

PERF_ARGS=()
RUN_CRITERION=0
for arg in "$@"; do
  case "$arg" in
    # Smoke runs use tiny sizes; route their output under target/ so they
    # never clobber the committed full-run BENCH_*.json records.
    --smoke) PERF_ARGS+=(--smoke
                         --stream-out target/BENCH_stream.smoke.json
                         --pipeline-out target/BENCH_pipeline.smoke.json) ;;
    --criterion) RUN_CRITERION=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

[ -f results/BENCH_stream_baseline.json ] &&
  PERF_ARGS+=(--stream-baseline results/BENCH_stream_baseline.json)
[ -f results/BENCH_pipeline_baseline.json ] &&
  PERF_ARGS+=(--pipeline-baseline results/BENCH_pipeline_baseline.json)

echo "==> cargo build --release -p weber-bench --bin perf"
cargo build --release -p weber-bench --bin perf

echo "==> perf harness"
target/release/perf "${PERF_ARGS[@]}"

if [ "$RUN_CRITERION" = 1 ]; then
  echo "==> criterion: stream + pipeline benches"
  cargo bench -p weber-bench --bench stream
  cargo bench -p weber-bench --bench pipeline
fi
