#!/usr/bin/env bash
# Canonical-entity-layer smoke: one `weber serve` daemon with a state
# directory, driven over raw NDJSON.  Exercises the whole entity surface
# an operator touches — materialize (`entities`), constraint-aware
# splitting (`constraint`), reversible merges (`same_as`) — and then
# restarts the daemon to prove the entity table (IDs, constraints) comes
# back from disk.  Used by scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

WEBER=target/release/weber
if [[ ! -x "$WEBER" ]]; then
    echo "==> building release binary for entity smoke"
    cargo build --release --quiet
fi

WORK="$(mktemp -d)"
STATE="$WORK/state"
PID=""
cleanup() {
    [[ -n "$PID" ]] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
    echo "entity smoke: $1" >&2
    cat "$WORK"/*.log >&2 2>/dev/null || true
    exit 1
}

port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

pick_port() {
    local candidate=$((20000 + RANDOM % 20000))
    while ! port_free "$candidate"; do
        candidate=$((candidate + 1))
    done
    echo "$candidate"
}

wait_up() {
    local port=$1 log=$2
    for _ in $(seq 1 100); do
        if ! port_free "$port"; then
            return 0
        fi
        sleep 0.1
    done
    fail "daemon on port $port never came up ($(cat "$log" 2>/dev/null))"
}

# Send one request line on the open fd-3 connection, echo the reply.
ask() {
    printf '%s\n' "$1" >&3
    head -n1 <&3
}

start_daemon() {
    local port=$1 log=$2
    "$WEBER" serve --listen "127.0.0.1:$port" --state-dir "$STATE" \
        >"$log" 2>&1 &
    PID=$!
    wait_up "$port" "$log"
    exec 3<>"/dev/tcp/127.0.0.1/$port"
}

stop_daemon() {
    ask '{"op":"shutdown"}' >/dev/null
    exec 3>&- 3<&-
    for _ in $(seq 1 100); do
        kill -0 "$PID" 2>/dev/null || break
        sleep 0.1
    done
    kill -0 "$PID" 2>/dev/null && fail "daemon still alive after shutdown"
    PID=""
}

SEED='{"op":"seed","name":"cohen","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}'

# --- Lifetime 1: seed, materialize, constrain, merge, persist --------------
PORT=$(pick_port)
start_daemon "$PORT" "$WORK/serve-1.log"

echo "$(ask "$SEED")" | jq -e '.ok == true' >/dev/null || fail "seed refused"

reply=$(ask '{"op":"entities","name":"cohen"}')
echo "$reply" | jq -e '.ok == true and (.entities | length) == 2' >/dev/null \
    || fail "expected 2 entities after seeding: $reply"

reply=$(ask '{"op":"constraint","name":"cohen","add":{"kind":"cannot-link","a":0,"b":1}}')
echo "$reply" | jq -e '.ok == true and .added == true' >/dev/null \
    || fail "constraint add refused: $reply"

reply=$(ask '{"op":"entities","name":"cohen"}')
echo "$reply" | jq -e '.ok == true and (.entities | length) == 3 and .constraints == 1' >/dev/null \
    || fail "cannot-link did not split the cluster: $reply"

# Merge the two gardening-side fragments?  No — merge across the split is
# vetoed; instead link the two databases fragments and watch the veto
# surface without dropping the link.
A=$(echo "$reply" | jq -r '[.entities[] | select(.mentions | index(0))][0].id')
B=$(echo "$reply" | jq -r '[.entities[] | select(.mentions | index(1))][0].id')
reply=$(ask "{\"op\":\"same_as\",\"name\":\"cohen\",\"a\":$A,\"b\":$B}")
echo "$reply" | jq -e '.ok == true and .active == true and .vetoed_links == 1' >/dev/null \
    || fail "constraint did not veto the conflicting SAME_AS union: $reply"

reply=$(ask "{\"op\":\"same_as\",\"name\":\"cohen\",\"a\":$A,\"b\":$B,\"retract\":true}")
echo "$reply" | jq -e '.ok == true and .active == false and .links == 0' >/dev/null \
    || fail "retract did not remove the link: $reply"

reply=$(ask '{"op":"same_as","name":"cohen","a":0,"b":99999}')
echo "$reply" | jq -e '.ok == false and .kind == "unknown-entity"' >/dev/null \
    || fail "unknown entity id not rejected with a stable kind: $reply"

IDS_BEFORE=$(ask '{"op":"entities","name":"cohen"}' | jq -c '[.entities[].id] | sort')
echo "$(ask '{"op":"persist"}')" | jq -e '.ok == true' >/dev/null || fail "persist refused"
stop_daemon
echo "==> entity smoke: lifetime 1 passed (entities/constraint/same_as)"

# --- Lifetime 2: restart, the table restores on first touch ----------------
PORT=$(pick_port)
start_daemon "$PORT" "$WORK/serve-2.log"

reply=$(ask '{"op":"entities","name":"cohen"}')
echo "$reply" | jq -e '.ok == true and .constraints == 1 and .fresh_ids == 0' >/dev/null \
    || fail "restart lost the entity table: $reply"
IDS_AFTER=$(echo "$reply" | jq -c '[.entities[].id] | sort')
[[ "$IDS_BEFORE" == "$IDS_AFTER" ]] \
    || fail "entity IDs changed across restart: $IDS_BEFORE -> $IDS_AFTER"

stop_daemon
echo "entity smoke passed."
