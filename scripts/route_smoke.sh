#!/usr/bin/env bash
# Multi-backend router smoke: three `weber serve` TCP backends behind a
# stdio `weber route` front end. Seeds and ingests a couple of names,
# takes a merged snapshot, and shuts the whole tier down through the
# router. Then repeats the exercise with `--replication 2` and one
# backend killed: every name must still resolve ok and the router must
# report failover reads. Finally fronts a fresh pair of backends with a
# TCP router in each io mode (--io event, the default reactor, and
# --io threads, the legacy model): health/seed/ingest/resolve must
# round-trip and the routed shutdown must stop the whole tier. Fails on
# any unexpected response line. Used by scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

WEBER=target/release/weber
if [[ ! -x "$WEBER" ]]; then
    echo "==> building release binary for route smoke"
    cargo build --release --quiet
fi

WORK="$(mktemp -d)"
PIDS=()
PIDS2=()
cleanup() {
    for pid in "${PIDS[@]:-}" "${PIDS2[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Pick three free ports by binding-and-releasing through the daemon is
# overkill; probe candidate ports with /dev/tcp instead.
port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

PORTS=()
candidate=$((20000 + RANDOM % 20000))
while [[ ${#PORTS[@]} -lt 3 ]]; do
    if port_free "$candidate"; then
        PORTS+=("$candidate")
    fi
    candidate=$((candidate + 1))
done

mkdir -p "$WORK/state"
BACKENDS=""
for port in "${PORTS[@]}"; do
    "$WEBER" serve --listen "127.0.0.1:$port" --state-dir "$WORK/state" \
        >"$WORK/serve-$port.log" 2>&1 &
    PIDS+=($!)
    BACKENDS="${BACKENDS:+$BACKENDS,}127.0.0.1:$port"
done

# Wait for every backend to accept connections.
for port in "${PORTS[@]}"; do
    for _ in $(seq 1 100); do
        if ! port_free "$port"; then
            continue 2
        fi
        sleep 0.1
    done
    echo "route smoke: backend on port $port never came up" >&2
    cat "$WORK/serve-$port.log" >&2 || true
    exit 1
done

REQUESTS="$WORK/requests.ndjson"
cat >"$REQUESTS" <<'EOF'
{"op":"health"}
{"op":"seed","name":"cohen","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"seed","name":"smith","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"seed","name":"jones","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"ingest","name":"cohen","text":"a new page about databases"}
{"op":"ingest","name":"smith","text":"roses and gardening at home"}
{"op":"flush"}
{"op":"snapshot"}
{"op":"metrics"}
{"op":"shutdown"}
EOF

OUT="$WORK/responses.ndjson"
"$WEBER" route --backends "$BACKENDS" --probe-interval 1 <"$REQUESTS" >"$OUT"

fail() {
    echo "route smoke: $1" >&2
    echo "--- responses ---" >&2
    cat "$OUT" >&2
    exit 1
}

expected=$(wc -l <"$REQUESTS")
got=$(wc -l <"$OUT")
[[ "$got" -eq "$expected" ]] || fail "expected $expected response lines, got $got"

grep -q '"ok":false' "$OUT" && fail "found a failed response"
grep -q '"degraded":true' "$OUT" && fail "healthy tier reported degraded"
grep -q '"op":"health"' "$OUT" || fail "missing health response"
[[ "$(grep -c '"op":"seed"' "$OUT")" -eq 3 ]] || fail "expected 3 seed responses"
grep '"op":"ingest"' "$OUT" | grep -vq '"shard":' && fail "ingest reply missing shard tag"
grep -q '"op":"snapshot"' "$OUT" || fail "missing snapshot response"
snapshot_names=$(grep '"op":"snapshot"' "$OUT" | grep -o '"name":"[a-z]*"' | sort -u | wc -l)
[[ "$snapshot_names" -eq 3 ]] || fail "snapshot should list 3 names, saw $snapshot_names"
grep -q 'route\.requests' "$OUT" || fail "metrics missing router counters"
grep -q 'shard0\.stream\.' "$OUT" || fail "metrics missing namespaced backend counters"
grep -q '"op":"shutdown"' "$OUT" || fail "missing shutdown ack"

# The routed shutdown must have stopped every backend.
for pid in "${PIDS[@]}"; do
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || continue 2
        sleep 0.1
    done
    fail "backend pid $pid still alive after routed shutdown"
done
PIDS=()

echo "==> route smoke phase 1 passed (backends: $BACKENDS)."

# --- Phase 2: R=2 replication with one backend down -----------------------

PORTS2=()
while [[ ${#PORTS2[@]} -lt 3 ]]; do
    if port_free "$candidate"; then
        PORTS2+=("$candidate")
    fi
    candidate=$((candidate + 1))
done

mkdir -p "$WORK/state2"
BACKENDS2=""
for port in "${PORTS2[@]}"; do
    "$WEBER" serve --listen "127.0.0.1:$port" --state-dir "$WORK/state2" \
        >"$WORK/serve2-$port.log" 2>&1 &
    PIDS2+=($!)
    BACKENDS2="${BACKENDS2:+$BACKENDS2,}127.0.0.1:$port"
done

for port in "${PORTS2[@]}"; do
    for _ in $(seq 1 100); do
        if ! port_free "$port"; then
            continue 2
        fi
        sleep 0.1
    done
    echo "route smoke: replicated backend on port $port never came up" >&2
    cat "$WORK/serve2-$port.log" >&2 || true
    exit 1
done

# Seed through an R=2 router while everyone is up; the shard tag on each
# reply tells us which backend is each name's primary.
SEED_OUT="$WORK/replicated-seeds.ndjson"
"$WEBER" route --backends "$BACKENDS2" --replication 2 --probe-interval 1 \
    >"$SEED_OUT" <<'EOF'
{"op":"seed","name":"cohen","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"seed","name":"smith","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"seed","name":"jones","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
EOF

fail2() {
    echo "route smoke (replicated): $1" >&2
    echo "--- seed responses ---" >&2
    cat "$SEED_OUT" >&2
    echo "--- responses ---" >&2
    cat "${OUT2:-/dev/null}" >&2 || true
    exit 1
}

grep -q '"ok":false' "$SEED_OUT" && fail2 "a replicated seed failed"
[[ "$(grep -c '"acked":2' "$SEED_OUT")" -eq 3 ]] \
    || fail2 "expected every seed acked by both replicas"

# Kill cohen's primary; with R=2 every name must stay readable.
primary=$(grep '"name":"cohen"' "$SEED_OUT" | grep -o '"shard":[0-9]*' | head -n1)
primary="${primary##*:}"
[[ -n "$primary" ]] || fail2 "could not find cohen's primary shard"
kill "${PIDS2[$primary]}"
wait "${PIDS2[$primary]}" 2>/dev/null || true

OUT2="$WORK/replicated-responses.ndjson"
"$WEBER" route --backends "$BACKENDS2" --replication 2 --probe-interval 1 \
    >"$OUT2" <<'EOF'
{"op":"resolve","name":"cohen"}
{"op":"resolve","name":"smith"}
{"op":"resolve","name":"jones"}
{"op":"ingest","name":"cohen","text":"a new page about databases"}
{"op":"snapshot"}
{"op":"metrics"}
{"op":"shutdown"}
EOF

[[ "$(wc -l <"$OUT2")" -eq 7 ]] || fail2 "expected 7 response lines"
[[ "$(grep -c '"op":"resolve"' "$OUT2")" -eq 3 ]] || fail2 "expected 3 resolve responses"
grep '"op":"resolve"' "$OUT2" | grep -q '"ok":false' && fail2 "a resolve failed"
grep '"op":"resolve"' "$OUT2" | grep -q 'unreachable' && fail2 "a read hit unreachable"
grep '"op":"resolve"' "$OUT2" | grep '"name":"cohen"' | grep -q '"failover":true' \
    || fail2 "cohen's resolve did not fail over to the replica"
grep '"op":"ingest"' "$OUT2" | grep -q '"ok":true' || fail2 "degraded-primary ingest failed"
grep '"op":"ingest"' "$OUT2" | grep -q '"repair_pending":true' \
    || fail2 "degraded-primary ingest did not queue a repair"
snapshot_line=$(grep '"op":"snapshot"' "$OUT2")
[[ -n "$snapshot_line" ]] || fail2 "missing snapshot response"
echo "$snapshot_line" | grep -q '"ok":true' || fail2 "snapshot failed"
echo "$snapshot_line" | grep -q '"degraded"' \
    && fail2 "one death below R degraded the snapshot"
snapshot_names=$(echo "$snapshot_line" | grep -o '"name":"[a-z]*"' | sort -u | wc -l)
[[ "$snapshot_names" -eq 3 ]] || fail2 "snapshot should list 3 names, saw $snapshot_names"
failovers=$(grep -o '"route.failover_reads":[0-9]*' "$OUT2" | head -n1)
failovers="${failovers##*:}"
[[ -n "$failovers" && "$failovers" -gt 0 ]] \
    || fail2 "route.failover_reads should be nonzero, saw '${failovers:-missing}'"
grep -q '"op":"shutdown"' "$OUT2" || fail2 "missing shutdown ack"

# The routed shutdown must have stopped the two surviving backends.
for i in 0 1 2; do
    [[ "$i" -eq "$primary" ]] && continue
    pid="${PIDS2[$i]}"
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || continue 2
        sleep 0.1
    done
    fail2 "backend pid $pid still alive after routed shutdown"
done
PIDS2=()

echo "==> route smoke phase 2 passed (replicated: $BACKENDS2)."

# --- Phase 3: TCP front end in both io modes -------------------------------

for mode in event threads; do
    MPORTS=()
    MPIDS=()
    while [[ ${#MPORTS[@]} -lt 2 ]]; do
        if port_free "$candidate"; then
            MPORTS+=("$candidate")
        fi
        candidate=$((candidate + 1))
    done
    mkdir -p "$WORK/state-$mode"
    MBACKENDS=""
    for port in "${MPORTS[@]}"; do
        "$WEBER" serve --listen "127.0.0.1:$port" --state-dir "$WORK/state-$mode" \
            >"$WORK/serve-$mode-$port.log" 2>&1 &
        MPIDS+=($!)
        PIDS+=($!)
        MBACKENDS="${MBACKENDS:+$MBACKENDS,}127.0.0.1:$port"
    done
    for port in "${MPORTS[@]}"; do
        for _ in $(seq 1 100); do
            if ! port_free "$port"; then
                continue 2
            fi
            sleep 0.1
        done
        echo "route smoke: $mode-mode backend on port $port never came up" >&2
        cat "$WORK/serve-$mode-$port.log" >&2 || true
        exit 1
    done

    while ! port_free "$candidate"; do candidate=$((candidate + 1)); done
    RPORT=$candidate
    candidate=$((candidate + 1))
    "$WEBER" route --backends "$MBACKENDS" --listen "127.0.0.1:$RPORT" \
        --io "$mode" >"$WORK/route-$mode.log" 2>&1 &
    RPID=$!
    PIDS+=("$RPID")
    for _ in $(seq 1 100); do
        if ! port_free "$RPORT"; then
            break
        fi
        sleep 0.1
    done
    if port_free "$RPORT"; then
        echo "route smoke: $mode-mode router never came up" >&2
        cat "$WORK/route-$mode.log" >&2 || true
        exit 1
    fi

    OUT3="$WORK/tcp-$mode.ndjson"
    exec 4<>"/dev/tcp/127.0.0.1/$RPORT"
    cat >&4 <<'EOF'
{"op":"health"}
{"op":"seed","name":"cohen","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"ingest","name":"cohen","text":"a new page about databases"}
{"op":"resolve","name":"cohen"}
{"op":"shutdown"}
EOF
    head -n 5 <&4 >"$OUT3" || true
    exec 4>&- 4<&-

    fail3() {
        echo "route smoke ($mode tcp): $1" >&2
        echo "--- responses ---" >&2
        cat "$OUT3" >&2 || true
        cat "$WORK/route-$mode.log" >&2 || true
        exit 1
    }

    [[ "$(wc -l <"$OUT3")" -eq 5 ]] || fail3 "expected 5 response lines"
    grep -q '"ok":false' "$OUT3" && fail3 "found a failed response"
    grep -q '"op":"health"' "$OUT3" || fail3 "missing health response"
    grep '"op":"ingest"' "$OUT3" | grep -vq '"shard":' && fail3 "ingest reply missing shard tag"
    grep '"op":"resolve"' "$OUT3" | grep -vq '"shard":' && fail3 "resolve reply missing shard tag"
    grep -q '"op":"shutdown"' "$OUT3" || fail3 "missing shutdown ack"

    for pid in "$RPID" "${MPIDS[@]}"; do
        for _ in $(seq 1 100); do
            kill -0 "$pid" 2>/dev/null || continue 2
            sleep 0.1
        done
        fail3 "pid $pid still alive after routed shutdown"
    done
    echo "==> route smoke: $mode tcp mode passed"
done
PIDS=()

echo "route smoke passed (plain: $BACKENDS; replicated: $BACKENDS2; tcp: both io modes)."
