#!/usr/bin/env bash
# Multi-backend router smoke: three `weber serve` TCP backends behind a
# stdio `weber route` front end. Seeds and ingests a couple of names,
# takes a merged snapshot, and shuts the whole tier down through the
# router. Fails on any unexpected response line. Used by scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

WEBER=target/release/weber
if [[ ! -x "$WEBER" ]]; then
    echo "==> building release binary for route smoke"
    cargo build --release --quiet
fi

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

# Pick three free ports by binding-and-releasing through the daemon is
# overkill; probe candidate ports with /dev/tcp instead.
port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

PORTS=()
candidate=$((20000 + RANDOM % 20000))
while [[ ${#PORTS[@]} -lt 3 ]]; do
    if port_free "$candidate"; then
        PORTS+=("$candidate")
    fi
    candidate=$((candidate + 1))
done

mkdir -p "$WORK/state"
BACKENDS=""
for port in "${PORTS[@]}"; do
    "$WEBER" serve --listen "127.0.0.1:$port" --state-dir "$WORK/state" \
        >"$WORK/serve-$port.log" 2>&1 &
    PIDS+=($!)
    BACKENDS="${BACKENDS:+$BACKENDS,}127.0.0.1:$port"
done

# Wait for every backend to accept connections.
for port in "${PORTS[@]}"; do
    for _ in $(seq 1 100); do
        if ! port_free "$port"; then
            continue 2
        fi
        sleep 0.1
    done
    echo "route smoke: backend on port $port never came up" >&2
    cat "$WORK/serve-$port.log" >&2 || true
    exit 1
done

REQUESTS="$WORK/requests.ndjson"
cat >"$REQUESTS" <<'EOF'
{"op":"health"}
{"op":"seed","name":"cohen","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"seed","name":"smith","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"seed","name":"jones","docs":[{"text":"databases are fun and databases are important","label":0},{"text":"databases are hard but databases pay well","label":0},{"text":"gardening tips for growing roses","label":1},{"text":"gardening advice on pruning roses","label":1}]}
{"op":"ingest","name":"cohen","text":"a new page about databases"}
{"op":"ingest","name":"smith","text":"roses and gardening at home"}
{"op":"flush"}
{"op":"snapshot"}
{"op":"metrics"}
{"op":"shutdown"}
EOF

OUT="$WORK/responses.ndjson"
"$WEBER" route --backends "$BACKENDS" --probe-interval 1 <"$REQUESTS" >"$OUT"

fail() {
    echo "route smoke: $1" >&2
    echo "--- responses ---" >&2
    cat "$OUT" >&2
    exit 1
}

expected=$(wc -l <"$REQUESTS")
got=$(wc -l <"$OUT")
[[ "$got" -eq "$expected" ]] || fail "expected $expected response lines, got $got"

grep -q '"ok":false' "$OUT" && fail "found a failed response"
grep -q '"degraded":true' "$OUT" && fail "healthy tier reported degraded"
grep -q '"op":"health"' "$OUT" || fail "missing health response"
[[ "$(grep -c '"op":"seed"' "$OUT")" -eq 3 ]] || fail "expected 3 seed responses"
grep '"op":"ingest"' "$OUT" | grep -vq '"shard":' && fail "ingest reply missing shard tag"
grep -q '"op":"snapshot"' "$OUT" || fail "missing snapshot response"
snapshot_names=$(grep '"op":"snapshot"' "$OUT" | grep -o '"name":"[a-z]*"' | sort -u | wc -l)
[[ "$snapshot_names" -eq 3 ]] || fail "snapshot should list 3 names, saw $snapshot_names"
grep -q 'route\.requests' "$OUT" || fail "metrics missing router counters"
grep -q 'shard0\.stream\.' "$OUT" || fail "metrics missing namespaced backend counters"
grep -q '"op":"shutdown"' "$OUT" || fail "missing shutdown ack"

# The routed shutdown must have stopped every backend.
for pid in "${PIDS[@]}"; do
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || continue 2
        sleep 0.1
    done
    fail "backend pid $pid still alive after routed shutdown"
done
PIDS=()

echo "route smoke passed (backends: $BACKENDS)."
