#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build/test cycle.
# Run from anywhere; operates on the repository root.
# --full additionally re-runs the headline experiments and diffs them
# against the archived results/ (scripts/results_check.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
if [[ "${1:-}" == "--full" ]]; then
    FULL=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> streaming stress: cargo test -q --release -p weber-stream"
cargo test -q --release -p weber-stream

echo "==> router smoke: scripts/route_smoke.sh"
scripts/route_smoke.sh

echo "==> serve smoke: scripts/serve_smoke.sh"
scripts/serve_smoke.sh

echo "==> blocking smoke: scripts/block_smoke.sh"
scripts/block_smoke.sh

echo "==> perf smoke: scripts/bench.sh --smoke"
scripts/bench.sh --smoke

if [[ $FULL -eq 1 ]]; then
    echo "==> results drift: scripts/results_check.sh"
    scripts/results_check.sh
fi

echo "All checks passed."
