#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build/test cycle.
# Run from anywhere; operates on the repository root.
# --full additionally re-runs the headline experiments and diffs them
# against the archived results/ (scripts/results_check.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
if [[ "${1:-}" == "--full" ]]; then
    FULL=1
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> streaming stress: cargo test -q --release -p weber-stream"
cargo test -q --release -p weber-stream

echo "==> router smoke: scripts/route_smoke.sh"
scripts/route_smoke.sh

echo "==> serve smoke: scripts/serve_smoke.sh"
scripts/serve_smoke.sh

echo "==> entity smoke: scripts/entity_smoke.sh"
scripts/entity_smoke.sh

echo "==> blocking smoke: scripts/block_smoke.sh"
scripts/block_smoke.sh

echo "==> perf smoke: scripts/bench.sh --smoke"
scripts/bench.sh --smoke

if [[ $FULL -eq 1 ]]; then
    echo "==> results drift: scripts/results_check.sh"
    scripts/results_check.sh

    # Every NDJSON example in the operator's guide must parse, and every
    # request line must name an op the protocol actually has — so the
    # runbook cannot rot silently when the wire format moves.
    echo "==> docs: NDJSON examples in docs/OPERATIONS.md"
    grep '^{' docs/OPERATIONS.md | jq -e 'type == "object"' >/dev/null \
        || { echo "docs check: an example line in docs/OPERATIONS.md is not valid JSON" >&2; exit 1; }
    known='health|seed|ingest|resolve|entities|same_as|constraint|snapshot|metrics|persist|restore|flush|shutdown|topology'
    bad=$(grep '^{' docs/OPERATIONS.md | jq -r '.op // empty' | grep -vE "^($known)$" || true)
    [[ -z "$bad" ]] || { echo "docs check: unknown op in docs/OPERATIONS.md examples: $bad" >&2; exit 1; }
    ops=$(grep '^{' docs/OPERATIONS.md | jq -r 'select(has("op") and (has("ok") | not)) | .op' | wc -l)
    [[ "$ops" -ge 3 ]] || { echo "docs check: expected at least 3 request examples, found $ops" >&2; exit 1; }
fi

echo "All checks passed."
