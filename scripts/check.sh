#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build/test cycle.
# Run from anywhere; operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> streaming stress: cargo test -q --release -p weber-stream"
cargo test -q --release -p weber-stream

echo "==> perf smoke: scripts/bench.sh --smoke"
scripts/bench.sh --smoke

echo "All checks passed."
