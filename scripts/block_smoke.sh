#!/usr/bin/env bash
# Blocking smoke: generate a small dirty corpus, run `weber block` with
# every strategy over it, and sanity-check the NDJSON output and the
# summary numbers. Fails if any strategy loses to brute force, or if
# meta/lsh miss the recall / comparison targets the PR's acceptance
# criteria pin (≥ 0.95 recall at ≤ 25% of brute-force comparisons).
# Used by scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

WEBER=target/release/weber
if [[ ! -x "$WEBER" ]]; then
    echo "==> building release binary for block smoke"
    cargo build --release --quiet
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

CORPUS="$WORK/dirty-small.json"
"$WEBER" generate --preset dirty-small --seed 20100301 --out "$CORPUS" >/dev/null

fail() {
    echo "block smoke: $1" >&2
    exit 1
}

# Pull a numeric field out of the summary line.
field() {
    grep -o "\"$2\":[0-9.]*" "$1" | head -1 | cut -d: -f2
}

for strategy in token meta lsh; do
    OUT="$WORK/blocks-$strategy.ndjson"
    "$WEBER" block --corpus "$CORPUS" --strategy "$strategy" \
        --out "$OUT" --metrics-file "$WORK/metrics-$strategy.txt" 2>/dev/null

    tail -1 "$OUT" | grep -q '"summary"' || fail "$strategy: missing summary line"
    head -1 "$OUT" | grep -q '"block":0' || fail "$strategy: missing block lines"
    grep -q 'block.candidate_pairs' "$WORK/metrics-$strategy.txt" ||
        fail "$strategy: metrics dump missing counters"

    candidate=$(field "$OUT" candidate_pairs)
    brute=$(field "$OUT" brute_force_pairs)
    recall=$(field "$OUT" pair_recall)
    frac=$(field "$OUT" comparison_frac)
    [[ "$candidate" -lt "$brute" ]] ||
        fail "$strategy: $candidate candidate pairs do not beat brute force ($brute)"

    if [[ "$strategy" != token ]]; then
        awk -v r="$recall" 'BEGIN { exit !(r >= 0.95) }' ||
            fail "$strategy: pair recall $recall < 0.95"
        awk -v f="$frac" 'BEGIN { exit !(f <= 0.25) }' ||
            fail "$strategy: comparison fraction $frac > 0.25"
    fi
    echo "  $strategy: $candidate/$brute pairs (frac $frac), recall $recall"
done

echo "block smoke passed."
