#!/usr/bin/env bash
# Event-loop front-end smoke: one `weber serve` TCP daemon driven by
# `weber loadgen` over many persistent connections, in both io modes.
#
# Phase 1 (--io event, the default): 64 open-loop connections for a
# couple of seconds — every reply must arrive, in order, with zero
# errors, zero early closes and zero unanswered requests (the loadgen
# engine attributes replies to requests FIFO per connection, so a
# single reordered reply shows up as a latency anomaly or error).
# Phase 2 (--io threads): the legacy thread-per-connection path still
# round-trips.  Used by scripts/check.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

WEBER=target/release/weber
if [[ ! -x "$WEBER" ]]; then
    echo "==> building release binary for serve smoke"
    cargo build --release --quiet
fi

WORK="$(mktemp -d)"
PID=""
cleanup() {
    [[ -n "$PID" ]] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

port_free() {
    ! (exec 3<>"/dev/tcp/127.0.0.1/$1") 2>/dev/null
}

pick_port() {
    local candidate=$((20000 + RANDOM % 20000))
    while ! port_free "$candidate"; do
        candidate=$((candidate + 1))
    done
    echo "$candidate"
}

wait_up() {
    local port=$1 log=$2
    for _ in $(seq 1 100); do
        if ! port_free "$port"; then
            return 0
        fi
        sleep 0.1
    done
    echo "serve smoke: daemon on port $port never came up" >&2
    cat "$log" >&2 || true
    exit 1
}

shutdown_daemon() {
    local port=$1
    exec 3<>"/dev/tcp/127.0.0.1/$port"
    printf '{"op":"shutdown"}\n' >&3
    head -n1 <&3 >/dev/null || true
    exec 3>&- 3<&-
}

fail() {
    echo "serve smoke: $1" >&2
    cat "$WORK"/*.log >&2 2>/dev/null || true
    [[ -f "$WORK/report.json" ]] && cat "$WORK/report.json" >&2
    exit 1
}

gate_report() {
    local report=$1
    for field in errors setup_errors closed_early unanswered; do
        local v
        v=$(jq ".$field" "$report")
        [[ "$v" == "0" ]] || fail "$field = $v (expected 0)"
    done
    local measured
    measured=$(jq ".measured" "$report")
    [[ "$measured" -gt 0 ]] || fail "no measured replies"
}

# --- Phase 1: event loop ---------------------------------------------------
PORT=$(pick_port)
"$WEBER" serve --listen "127.0.0.1:$PORT" --io event \
    --max-connections 256 >"$WORK/serve-event.log" 2>&1 &
PID=$!
wait_up "$PORT" "$WORK/serve-event.log"

"$WEBER" loadgen --connect "127.0.0.1:$PORT" --connections 64 \
    --duration 2 --warmup 1 --rate 300 --names 16 \
    --out "$WORK/report.json" >"$WORK/loadgen.log" 2>&1 \
    || fail "loadgen run failed"
gate_report "$WORK/report.json"

shutdown_daemon "$PORT"
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$PID" 2>/dev/null && fail "event daemon still alive after shutdown"
PID=""
echo "==> serve smoke: event mode passed ($(jq .throughput_ops_s "$WORK/report.json") ops/s)"

# --- Phase 2: legacy threaded mode ----------------------------------------
PORT=$(pick_port)
"$WEBER" serve --listen "127.0.0.1:$PORT" --io threads \
    --max-connections 32 >"$WORK/serve-threads.log" 2>&1 &
PID=$!
wait_up "$PORT" "$WORK/serve-threads.log"

exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf '{"op":"health"}\n' >&3
reply=$(head -n1 <&3)
exec 3>&- 3<&-
echo "$reply" | grep -q '"ok":true' || fail "threads-mode health failed: $reply"

shutdown_daemon "$PORT"
for _ in $(seq 1 100); do
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$PID" 2>/dev/null && fail "threaded daemon still alive after shutdown"
PID=""

echo "serve smoke passed."
