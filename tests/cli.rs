//! Integration tests of the `weber` command-line binary.

use std::process::Command;

fn weber() -> Command {
    Command::new(env!("CARGO_BIN_EXE_weber"))
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("weber_cli_test_{}_{name}", std::process::id()))
}

#[test]
fn help_prints_usage() {
    let out = weber().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
}

#[test]
fn long_help_flag_succeeds() {
    let out = weber().arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn version_flag_prints_version() {
    for flag in ["--version", "-V", "version"] {
        let out = weber().arg(flag).output().unwrap();
        assert!(out.status.success(), "{flag} must exit 0");
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(
            text.starts_with("weber ") && text.contains(env!("CARGO_PKG_VERSION")),
            "{flag} printed: {text}"
        );
    }
}

#[test]
fn serve_round_trips_ndjson_over_stdio() {
    use std::io::Write;
    let mut child = weber()
        .args(["serve", "--workers", "2", "--queue", "8"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let requests = concat!(
        r#"{"op":"seed","name":"cohen","docs":[{"text":"databases and systems","label":0},{"text":"databases research","label":0},{"text":"gardening and roses","label":1}]}"#,
        "\n",
        r#"{"op":"ingest","name":"cohen","text":"more databases work"}"#,
        "\n",
        r#"{"op":"snapshot"}"#,
        "\n",
        r#"{"op":"shutdown"}"#,
        "\n",
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(requests.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 4, "one response per request: {lines:?}");
    assert!(lines[0].contains(r#""ok":true"#) && lines[0].contains(r#""op":"seed""#));
    assert!(lines[1].contains(r#""op":"ingest""#) && lines[1].contains(r#""doc":3"#));
    assert!(lines[2].contains(r#""op":"snapshot""#) && lines[2].contains("cohen"));
    assert!(lines[3].contains(r#""op":"shutdown""#));
}

#[test]
fn serve_state_dir_survives_a_daemon_restart() {
    use std::io::Write;
    let dir = temp_path("state_dir");
    let _ = std::fs::remove_dir_all(&dir);
    let run = |requests: &str| {
        let mut child = weber()
            .args(["serve", "--state-dir"])
            .arg(&dir)
            .stdin(std::process::Stdio::piped())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(requests.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };
    // First lifetime: seed + ingest; state is persisted at shutdown.
    let (_, stderr) = run(concat!(
        r#"{"op":"seed","name":"cohen","docs":[{"text":"databases and systems","label":0},{"text":"databases research","label":0},{"text":"gardening and roses","label":1}]}"#,
        "\n",
        r#"{"op":"ingest","name":"cohen","text":"more databases work"}"#,
        "\n",
        r#"{"op":"shutdown"}"#,
        "\n",
    ));
    assert!(stderr.contains("persisted 1 names"), "stderr: {stderr}");
    // Second lifetime: the state is restored at startup, so the name
    // answers a snapshot with all four documents without being re-seeded.
    let (stdout, stderr) = run(concat!(
        r#"{"op":"snapshot"}"#,
        "\n",
        r#"{"op":"shutdown"}"#,
        "\n"
    ));
    assert!(stderr.contains("restored 1 names"), "stderr: {stderr}");
    let snapshot = stdout.lines().next().unwrap();
    assert!(snapshot.contains("cohen"), "{snapshot}");
    assert!(snapshot.contains(r#""docs":4"#), "{snapshot}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_metrics_op_over_tcp_reports_cache_hits() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    // Reserve an ephemeral port, free it, and hand it to the daemon. The
    // daemon reports readiness on stderr, but the simple retry loop below
    // is enough: connection refused just means it hasn't bound yet.
    let port = {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        probe.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut child = weber()
        .args(["serve", "--listen", &addr, "--workers", "1"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();

    let stream = {
        let mut attempt = 0;
        loop {
            match TcpStream::connect(&addr) {
                Ok(s) => break s,
                Err(e) => {
                    attempt += 1;
                    assert!(attempt < 100, "daemon never bound {addr}: {e}");
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }
    };
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let requests = concat!(
        r#"{"op":"seed","name":"cohen","docs":[{"text":"databases and systems","label":0},{"text":"databases research","label":0},{"text":"gardening and roses","label":1}]}"#,
        "\n",
        r#"{"op":"ingest","name":"cohen","text":"more databases work"}"#,
        "\n",
        r#"{"op":"ingest","name":"cohen","text":"more databases work"}"#,
        "\n",
        r#"{"op":"ingest","name":"cohen","text":"more databases work"}"#,
        "\n",
        r#"{"op":"metrics"}"#,
        "\n",
        r#"{"op":"shutdown"}"#,
        "\n",
    );
    writer.write_all(requests.as_bytes()).unwrap();
    let mut lines = Vec::new();
    for _ in 0..6 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        lines.push(line.trim().to_string());
    }
    let _ = child.wait();

    let metrics = serde_json::parse_value(&lines[4]).unwrap();
    assert_eq!(
        metrics.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        lines[4]
    );
    assert_eq!(metrics.get("op").unwrap().as_str(), Some("metrics"));
    let counters = metrics.get("counters").unwrap();
    // Seeding + repeated ingests of the same name exercise the block's
    // incremental similarity cache: training reads the freshly built graph
    // back (hits), each arrival grows it by a row (misses).
    let hits = counters.get("stream.cache.hits").unwrap().as_u64().unwrap();
    assert!(hits > 0, "expected nonzero cache hits: {}", lines[4]);
    assert!(
        counters
            .get("stream.cache.misses")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0,
        "expected nonzero cache misses: {}",
        lines[4]
    );
    assert_eq!(counters.get("stream.ingests").unwrap().as_u64(), Some(3));
    let ingest_us = metrics
        .get("histograms")
        .unwrap()
        .get("stream.ingest_us")
        .unwrap();
    assert_eq!(ingest_us.get("count").unwrap().as_u64(), Some(3));
}

#[test]
fn serve_metrics_file_is_dumped_at_shutdown() {
    use std::io::Write;
    let path = temp_path("metrics.txt");
    let _ = std::fs::remove_file(&path);
    let mut child = weber()
        .args(["serve", "--metrics-file"])
        .arg(&path)
        .args(["--metrics-interval", "60"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let requests = concat!(
        r#"{"op":"seed","name":"cohen","docs":[{"text":"databases and systems","label":0},{"text":"databases research","label":0},{"text":"gardening and roses","label":1}]}"#,
        "\n",
        r#"{"op":"ingest","name":"cohen","text":"more databases work"}"#,
        "\n",
        r#"{"op":"shutdown"}"#,
        "\n",
    );
    child
        .stdin
        .take()
        .unwrap()
        .write_all(requests.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("final metrics dump exists");
    assert!(text.contains("stream.ingests 1"), "dump: {text}");
    assert!(text.contains("stream.ingest_us_count 1"), "dump: {text}");
    assert!(text.contains("stream.cache.hits"), "dump: {text}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn serve_rejects_max_names_without_state_dir() {
    let out = weber()
        .args(["serve", "--max-names", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("state_dir") || err.contains("state dir"),
        "stderr: {err}"
    );
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = weber().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));
}

#[test]
fn generate_stats_resolve_roundtrip() {
    let dataset = temp_path("corpus.json");
    let labels = temp_path("labels.json");

    let out = weber()
        .args(["generate", "--preset", "tiny", "--seed", "5", "--out"])
        .arg(&dataset)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dataset.exists());

    let out = weber()
        .args(["stats", "--dataset"])
        .arg(&dataset)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 names"));
    assert!(text.contains("72 documents"));

    let out = weber()
        .args(["resolve", "--train", "0.25", "--dataset"])
        .arg(&dataset)
        .arg("--out")
        .arg(&labels)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Fp"));
    let label_json = std::fs::read_to_string(&labels).unwrap();
    assert!(label_json.contains("cheyer"));

    std::fs::remove_file(&dataset).ok();
    std::fs::remove_file(&labels).ok();
}

#[test]
fn generate_rejects_unknown_preset() {
    let out = weber()
        .args(["generate", "--preset", "bogus", "--out", "/tmp/never.json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset"));
}

#[test]
fn resolve_requires_dataset_flag() {
    let out = weber().arg("resolve").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--dataset"));
}

#[test]
fn flags_require_values() {
    let out = weber().args(["stats", "--dataset"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}

#[test]
fn out_of_range_train_fraction_is_a_clean_error() {
    let dataset = temp_path("range.json");
    let out = weber()
        .args(["generate", "--preset", "tiny", "--seed", "1", "--out"])
        .arg(&dataset)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = weber()
        .args(["resolve", "--train", "1.5", "--dataset"])
        .arg(&dataset)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--train"), "stderr: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
    std::fs::remove_file(&dataset).ok();
}
