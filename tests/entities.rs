//! Canonical-entity-layer end-to-end tests: stable IDs across a forced
//! re-partition, reversible `SAME_AS` links over the wire, constraint
//! enforcement that measurably improves Fp on the `constrained-small`
//! corpus, and entity tables surviving a daemon restart.

use weber::corpus::{cannot_link_truth, generate, one_to_one_truth, presets};
use weber::entity::Constraint;
use weber::eval::fp_measure;
use weber::extract::gazetteer::{EntityKind, Gazetteer};
use weber::graph::Partition;
use weber::stream::{SeedDocument, StreamConfig, StreamResolver};

fn gazetteer() -> Gazetteer {
    let mut g = Gazetteer::new();
    g.add_phrases(EntityKind::Concept, ["databases", "gardening"]);
    g
}

fn seed_docs() -> Vec<SeedDocument> {
    vec![
        SeedDocument {
            text: "databases are fun and databases are important".into(),
            url: None,
            label: 0,
        },
        SeedDocument {
            text: "databases are hard but databases pay well".into(),
            url: None,
            label: 0,
        },
        SeedDocument {
            text: "gardening tips for growing roses".into(),
            url: None,
            label: 1,
        },
        SeedDocument {
            text: "gardening advice on pruning roses".into(),
            url: None,
            label: 1,
        },
    ]
}

/// The entity that holds stream document `doc`, by ID.
fn entity_holding(table: &weber::stream::EntityTable, doc: usize) -> u64 {
    table
        .entities
        .iter()
        .find(|e| e.mentions.contains(&doc))
        .unwrap_or_else(|| panic!("no entity holds doc {doc}"))
        .id
}

#[test]
fn stable_ids_survive_a_forced_repartition() {
    let resolver = StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap();
    resolver.seed("cohen", &seed_docs()).unwrap();
    let before = resolver.entities("cohen").unwrap();
    assert_eq!(before.report.fresh_ids, 2, "first pass mints both IDs");
    let db_id = entity_holding(&before, 0);
    let garden_id = entity_holding(&before, 2);
    assert_ne!(db_id, garden_id);

    // The checkpoint schedule retrains at 2× the seed size: these four
    // ingests push the block from 4 to 8 documents, so the model is
    // re-fit and the whole partition rebuilt from scratch mid-loop.
    for text in [
        "databases keep the books",
        "databases index the web",
        "gardening through the winter",
        "gardening with native plants",
    ] {
        resolver.ingest("cohen", text, None).unwrap();
    }
    assert!(
        resolver.metrics().retrains.get() >= 1,
        "the re-partition this test is about never happened"
    );

    let after = resolver.entities("cohen").unwrap();
    assert_eq!(
        after.report.fresh_ids, 0,
        "re-partitioned clusters must match back to existing IDs: {:?}",
        after.report
    );
    // Maximum-overlap matching keeps each persona's ID pinned even
    // though every cluster was rebuilt and grew.
    assert_eq!(entity_holding(&after, 0), db_id);
    assert_eq!(entity_holding(&after, 2), garden_id);
    assert!(after.entities.iter().all(|e| e.mentions.len() >= 2));
}

/// Mean Fp over the constrained-small corpus, streamed, without and with
/// the corpus's ground-truth constraints: `(unconstrained, constrained,
/// blocks, blocks_whose_partition_changed)`.
fn fp_with_and_without_constraints(seed: u64) -> (f64, f64, usize, usize) {
    use weber::core::supervision::Supervision;

    let dataset = generate(&presets::constrained_small(seed));
    let resolver = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();
    let (mut fp_u, mut fp_c, mut blocks, mut changed) = (0.0, 0.0, 0usize, 0usize);
    for block in &dataset.blocks {
        let truth = block.truth();
        let sup = Supervision::sample_from_truth(&truth, 0.25, seed);
        if sup.len() < 2 || sup.len() == truth.len() {
            continue;
        }
        let seed_ids: Vec<usize> = sup.docs().to_vec();
        let labelled: Vec<SeedDocument> = seed_ids
            .iter()
            .map(|&d| SeedDocument {
                text: block.documents[d].text.clone(),
                url: block.documents[d].url.clone(),
                label: truth.label_of(d),
            })
            .collect();
        resolver.seed(&block.query_name, &labelled).unwrap();
        // `order[stream_pos] = original doc`, `stream_pos_of[original]`
        // inverts it — constraints are stated in original indices, the
        // resolver numbers documents in arrival order.
        let mut order = seed_ids.clone();
        for d in 0..block.len() {
            if !seed_ids.contains(&d) {
                let doc = &block.documents[d];
                resolver
                    .ingest(&block.query_name, &doc.text, doc.url.as_deref())
                    .unwrap();
                order.push(d);
            }
        }
        let mut stream_pos_of = vec![0usize; block.len()];
        for (pos, &original) in order.iter().enumerate() {
            stream_pos_of[original] = pos;
        }

        let partition_of = |table: &weber::stream::EntityTable| {
            let mut labels = vec![0u32; block.len()];
            for (cluster, entity) in table.entities.iter().enumerate() {
                for &m in &entity.mentions {
                    labels[order[m]] = cluster as u32;
                }
            }
            Partition::from_labels(labels)
        };

        let baseline = resolver.entities(&block.query_name).unwrap();
        let unconstrained = partition_of(&baseline);

        for c in cannot_link_truth(block, 120) {
            resolver
                .add_constraint(&block.query_name, remap(c, &stream_pos_of))
                .unwrap();
        }
        resolver
            .add_constraint(
                &block.query_name,
                remap(one_to_one_truth(block, "identity", 4), &stream_pos_of),
            )
            .unwrap();
        let constrained_table = resolver.entities(&block.query_name).unwrap();
        let constrained = partition_of(&constrained_table);

        fp_u += fp_measure(&unconstrained, &truth);
        fp_c += fp_measure(&constrained, &truth);
        blocks += 1;
        if constrained.cluster_count() != unconstrained.cluster_count() {
            changed += 1;
        }
    }
    (fp_u / blocks as f64, fp_c / blocks as f64, blocks, changed)
}

/// Restate a ground-truth constraint (original document indices) in the
/// resolver's arrival-order indices.
fn remap(c: Constraint, stream_pos_of: &[usize]) -> Constraint {
    match c {
        Constraint::CannotLink { a, b } => Constraint::CannotLink {
            a: stream_pos_of[a],
            b: stream_pos_of[b],
        },
        Constraint::OneToOne { key, values } => Constraint::OneToOne {
            key,
            values: values
                .into_iter()
                .map(|(d, v)| (stream_pos_of[d], v))
                .collect(),
        },
        Constraint::TypeBoundary { types } => Constraint::TypeBoundary {
            types: types
                .into_iter()
                .map(|(d, v)| (stream_pos_of[d], v))
                .collect(),
        },
    }
}

#[test]
fn ground_truth_constraints_change_the_answer_and_improve_fp() {
    let (unconstrained, constrained, blocks, changed) = fp_with_and_without_constraints(11);
    assert!(blocks >= 3, "the corpus must yield comparable blocks");
    assert!(
        changed >= 1,
        "constraints never changed any block's assignment"
    );
    // The headline acceptance: on a corpus built to over-merge, enforcing
    // true cannot-link / one-to-one knowledge must raise Fp outright.
    assert!(
        constrained > unconstrained,
        "constrained Fp {constrained:.4} did not improve on unconstrained {unconstrained:.4}"
    );
    // Recorded in EXPERIMENTS.md; keep the print so a rerun can refresh
    // the table.
    eprintln!(
        "constrained-small seed 11: Fp unconstrained {unconstrained:.4}, \
         constrained {constrained:.4}, {changed}/{blocks} blocks changed"
    );
}

mod tcp {
    //! The entity ops over a real daemon socket, and their persistence
    //! across a restart.

    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    use serde_json::Value;
    use weber::stream::{serve_listener, StreamConfig, StreamResolver, TcpOptions};

    fn start_server(config: StreamConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<u64>) {
        let resolver = Arc::new(StreamResolver::new(config, &super::gazetteer()).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            serve_listener(resolver, listener, &TcpOptions::default()).unwrap()
        });
        (addr, handle)
    }

    fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    fn round_trip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Value {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        serde_json::parse_value(response.trim())
            .unwrap_or_else(|e| panic!("bad JSON {response}: {e}"))
    }

    fn seed_line(name: &str) -> String {
        format!(
            concat!(
                r#"{{"op":"seed","name":"{}","docs":["#,
                r#"{{"text":"databases are fun and databases are important","label":0}},"#,
                r#"{{"text":"databases are hard but databases pay well","label":0}},"#,
                r#"{{"text":"gardening tips for growing roses","label":1}},"#,
                r#"{{"text":"gardening advice on pruning roses","label":1}}]}}"#
            ),
            name
        )
    }

    /// IDs in an `entities` reply, keyed by the doc each entity holds.
    fn id_holding(reply: &Value, doc: u64) -> u64 {
        let entities = reply.get("entities").unwrap().as_array().unwrap();
        entities
            .iter()
            .find(|e| {
                e.get("mentions")
                    .unwrap()
                    .as_array()
                    .unwrap()
                    .iter()
                    .any(|m| m.as_u64() == Some(doc))
            })
            .unwrap_or_else(|| panic!("no entity holds doc {doc} in {reply:?}"))
            .get("id")
            .unwrap()
            .as_u64()
            .unwrap()
    }

    #[test]
    fn same_as_asserts_and_retracts_over_the_wire() {
        let (addr, server) = start_server(StreamConfig::default());
        let (mut w, mut r) = connect(addr);
        round_trip(&mut w, &mut r, &seed_line("cohen"));
        // An off-topic document lands in a cluster of its own.
        round_trip(
            &mut w,
            &mut r,
            r#"{"op":"ingest","name":"cohen","text":"quantum chess tournament in reykjavik"}"#,
        );
        let before = round_trip(&mut w, &mut r, r#"{"op":"entities","name":"cohen"}"#);
        assert_eq!(before.get("ok").unwrap().as_bool(), Some(true));
        let entities = before.get("entities").unwrap().as_array().unwrap();
        assert_eq!(entities.len(), 3, "{before:?}");
        let db = id_holding(&before, 0);
        let stray = id_holding(&before, 4);

        // Assert: the stray document is that databases persona after all.
        let merged = round_trip(
            &mut w,
            &mut r,
            &format!(r#"{{"op":"same_as","name":"cohen","a":{db},"b":{stray}}}"#),
        );
        assert_eq!(merged.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(merged.get("active").unwrap().as_bool(), Some(true));
        assert_eq!(merged.get("entities").unwrap().as_u64(), Some(2));
        let table = round_trip(&mut w, &mut r, r#"{"op":"entities","name":"cohen"}"#);
        assert_eq!(id_holding(&table, 4), id_holding(&table, 0));
        // Provenance says doc 4 is here *because of the link*, not the
        // partition.
        let merged_entity = table
            .get("entities")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.get("id").unwrap().as_u64() == Some(id_holding(&table, 4)))
            .unwrap();
        let via_doc4 = merged_entity
            .get("provenance")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|p| p.get("doc").unwrap().as_u64() == Some(4))
            .unwrap();
        assert_eq!(via_doc4.get("via").unwrap().as_str(), Some("same-as"));

        // Retract: the merge reverses and the absorbed entity gets its
        // old ID back.
        let split = round_trip(
            &mut w,
            &mut r,
            &format!(r#"{{"op":"same_as","name":"cohen","a":{db},"b":{stray},"retract":true}}"#),
        );
        assert_eq!(split.get("active").unwrap().as_bool(), Some(false));
        assert_eq!(split.get("entities").unwrap().as_u64(), Some(3));
        let after = round_trip(&mut w, &mut r, r#"{"op":"entities","name":"cohen"}"#);
        assert_eq!(id_holding(&after, 4), stray);
        assert_eq!(id_holding(&after, 0), db);
        // Unknown IDs come back with the stable error kind.
        let bad = round_trip(
            &mut w,
            &mut r,
            r#"{"op":"same_as","name":"cohen","a":0,"b":99}"#,
        );
        assert_eq!(bad.get("kind").unwrap().as_str(), Some("unknown-entity"));
        round_trip(&mut w, &mut r, r#"{"op":"shutdown"}"#);
        server.join().unwrap();
    }

    #[test]
    fn entity_tables_survive_a_daemon_restart() {
        let dir = std::env::temp_dir().join(format!("weber_entities_e2e_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StreamConfig::default().with_state_dir(&dir);

        // First lifetime: seed, constrain (splitting the databases
        // cluster), link, persist.
        let (addr, server) = start_server(config.clone());
        let (mut w, mut r) = connect(addr);
        round_trip(&mut w, &mut r, &seed_line("cohen"));
        let constrained = round_trip(
            &mut w,
            &mut r,
            r#"{"op":"constraint","name":"cohen","add":{"kind":"cannot-link","a":0,"b":1}}"#,
        );
        assert_eq!(constrained.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(constrained.get("added").unwrap().as_bool(), Some(true));
        let before = round_trip(&mut w, &mut r, r#"{"op":"entities","name":"cohen"}"#);
        let entities = before.get("entities").unwrap().as_array().unwrap();
        assert_eq!(entities.len(), 3, "the cannot-link splits: {before:?}");
        let mut ids_before: Vec<u64> = entities
            .iter()
            .map(|e| e.get("id").unwrap().as_u64().unwrap())
            .collect();
        ids_before.sort_unstable();
        let persisted = round_trip(&mut w, &mut r, r#"{"op":"persist"}"#);
        assert_eq!(persisted.get("ok").unwrap().as_bool(), Some(true));
        round_trip(&mut w, &mut r, r#"{"op":"shutdown"}"#);
        server.join().unwrap();

        // Second lifetime shares nothing in memory: the first entity
        // touch restores both the clustering state and the entity table.
        let (addr, server) = start_server(config);
        let (mut w, mut r) = connect(addr);
        let after = round_trip(&mut w, &mut r, r#"{"op":"entities","name":"cohen"}"#);
        assert_eq!(after.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            after.get("constraints").unwrap().as_u64(),
            Some(1),
            "the constraint set persists: {after:?}"
        );
        let mut ids_after: Vec<u64> = after
            .get("entities")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|e| e.get("id").unwrap().as_u64().unwrap())
            .collect();
        ids_after.sort_unstable();
        assert_eq!(ids_before, ids_after, "IDs are stable across restarts");
        assert_eq!(after.get("fresh_ids").unwrap().as_u64(), Some(0));
        round_trip(&mut w, &mut r, r#"{"op":"shutdown"}"#);
        server.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
