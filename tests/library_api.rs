//! Integration tests of the public library API: the facade re-exports,
//! custom similarity functions, generic blocking, and dataset persistence.

use std::sync::Arc;

use weber::core::blocking::{key_blocks, prepare_dataset};
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{generate, presets, Dataset};
use weber::simfun::block::PreparedBlock;
use weber::simfun::functions::SimilarityFunction;
use weber::textindex::TfIdf;

#[test]
fn facade_reexports_every_subsystem() {
    // Touch one item from each re-exported crate so the facade is honest.
    let _ = weber::textindex::porter_stem("testing");
    let _ = weber::extract::url::UrlFeatures::parse("http://example.com/x");
    let _ = weber::simfun::jaro_winkler("a", "b");
    let _ = weber::graph::Partition::singletons(3);
    let _ = weber::ml::threshold::optimal_threshold(&[]);
    let _ = weber::eval::MetricSet::default();
    let _ = weber::corpus::presets::tiny(0);
    let _ = weber::core::resolver::ResolverConfig::default();
}

/// A trivially constant custom function, to prove arbitrary trait objects
/// flow through the whole resolver.
#[derive(Debug)]
struct Constant(f64);

impl SimilarityFunction for Constant {
    fn name(&self) -> &'static str {
        "constant"
    }
    fn description(&self) -> &'static str {
        "constant similarity (test helper)"
    }
    fn compare(&self, _block: &PreparedBlock, _i: usize, _j: usize) -> f64 {
        self.0
    }
}

#[test]
fn custom_functions_flow_through_the_resolver() {
    let prepared = prepare_dataset(&generate(&presets::tiny(31)), TfIdf::default());
    let nb = &prepared.blocks[0];
    let sup = Supervision::sample_from_truth(&nb.truth, 0.3, 1);
    let cfg = ResolverConfig::default().with_function(Arc::new(Constant(0.5)));
    let resolver = Resolver::new(cfg).unwrap();
    let r = resolver.resolve(&nb.block, &sup).unwrap();
    // 10 standard functions + 1 custom, times 3 criteria.
    assert_eq!(r.layers.len(), 33);
    assert!(r.layers.iter().any(|l| l.function == "constant"));
    assert_eq!(r.partition.len(), nb.block.len());
}

#[test]
fn custom_only_resolver_works() {
    let prepared = prepare_dataset(&generate(&presets::tiny(32)), TfIdf::default());
    let nb = &prepared.blocks[0];
    let cfg = ResolverConfig {
        functions: vec![Arc::new(Constant(0.0))],
        ..ResolverConfig::default()
    };
    let resolver = Resolver::new(cfg).unwrap();
    let r = resolver
        .resolve(
            &nb.block,
            &Supervision::sample_from_truth(&nb.truth, 0.3, 1),
        )
        .unwrap();
    // Constant-zero similarity asserts nothing: everything is a singleton.
    assert_eq!(r.partition.cluster_count(), nb.block.len());
}

#[test]
fn key_blocking_groups_arbitrary_items() {
    let docs = [
        ("cohen", "page 1"),
        ("ng", "page 2"),
        ("cohen", "page 3"),
        ("voss", "page 4"),
        ("ng", "page 5"),
    ];
    let blocks = key_blocks(&docs, |d| d.0);
    assert_eq!(blocks.len(), 3);
    // BTreeMap ordering: cohen, ng, voss.
    assert_eq!(blocks[0], vec![0, 2]);
    assert_eq!(blocks[1], vec![1, 4]);
    assert_eq!(blocks[2], vec![3]);
}

#[test]
fn datasets_round_trip_through_json_files() {
    let dataset = generate(&presets::tiny(64));
    let json = dataset.to_json().unwrap();
    let path = std::env::temp_dir().join("weber_api_test.json");
    std::fs::write(&path, &json).unwrap();
    let reloaded = Dataset::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.label, dataset.label);
    assert_eq!(reloaded.document_count(), dataset.document_count());
    // A reloaded dataset must prepare and resolve identically.
    let a = prepare_dataset(&dataset, TfIdf::default());
    let b = prepare_dataset(&reloaded, TfIdf::default());
    let resolver = Resolver::new(ResolverConfig::default()).unwrap();
    for (x, y) in a.blocks.iter().zip(&b.blocks) {
        let sup = Supervision::sample_from_truth(&x.truth, 0.25, 5);
        let rx = resolver.resolve(&x.block, &sup).unwrap();
        let ry = resolver.resolve(&y.block, &sup).unwrap();
        assert_eq!(rx.partition, ry.partition);
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    use weber::core::error::CoreError;
    let cfg = ResolverConfig {
        functions: vec![],
        ..ResolverConfig::default()
    };
    match Resolver::new(cfg) {
        Err(CoreError::NoFunctions) => {}
        other => panic!("expected NoFunctions, got {other:?}"),
    }
}

/// A hostile custom function returning NaN and out-of-range values.
#[derive(Debug)]
struct Hostile;

impl SimilarityFunction for Hostile {
    fn name(&self) -> &'static str {
        "hostile"
    }
    fn description(&self) -> &'static str {
        "returns NaN and out-of-range values (test helper)"
    }
    fn compare(&self, _block: &PreparedBlock, i: usize, j: usize) -> f64 {
        match (i + j) % 3 {
            0 => f64::NAN,
            1 => -7.0,
            _ => 42.0,
        }
    }
}

#[test]
fn hostile_custom_functions_are_sanitised() {
    let prepared = prepare_dataset(&generate(&presets::tiny(35)), TfIdf::default());
    let nb = &prepared.blocks[0];
    let cfg = ResolverConfig {
        functions: vec![Arc::new(Hostile)],
        ..ResolverConfig::default()
    };
    let resolver = Resolver::new(cfg).unwrap();
    let sup = Supervision::sample_from_truth(&nb.truth, 0.25, 1);
    let r = resolver.resolve(&nb.block, &sup).unwrap();
    // No panics, a valid partition, and finite diagnostics.
    assert_eq!(r.partition.len(), nb.block.len());
    for l in &r.layers {
        assert!(l.accuracy.is_finite());
        assert!((0.0..=1.0).contains(&l.accuracy));
    }
}
