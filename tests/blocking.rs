//! Blocking-tier integration tests: dirty corpus → `weber-block`
//! candidate generation → (for meta) the full resolver over the emitted
//! blocks, plus determinism and CLI round-trip checks.

use weber::block::{Blocker, BlockingConfig, DocRecord, Strategy};
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{dirty_small, generate_dirty, DirtyConfig, DirtyCorpus};
use weber::extract::features::PageFeatures;
use weber::extract::pipeline::Extractor;
use weber::graph::Partition;
use weber::simfun::block::{PreparedBlock, WordVectorScheme};

fn corpus() -> DirtyCorpus {
    generate_dirty(&dirty_small(20100301))
}

fn doc_records(corpus: &DirtyCorpus) -> Vec<DocRecord<'_>> {
    corpus
        .documents
        .iter()
        .map(|d| DocRecord {
            text: &d.text,
            url: d.url.as_deref(),
        })
        .collect()
}

#[test]
fn every_strategy_beats_brute_force() {
    let corpus = corpus();
    let docs = doc_records(&corpus);
    let truth = corpus.truth_pairs();
    for strategy in [Strategy::Token, Strategy::Meta, Strategy::Lsh] {
        let out = Blocker::new(BlockingConfig::default().with_strategy(strategy)).block(&docs);
        assert!(
            out.stats.candidate_pairs < out.stats.brute_force_pairs,
            "{strategy:?} must compare fewer pairs than brute force: {} vs {}",
            out.stats.candidate_pairs,
            out.stats.brute_force_pairs
        );
        // Even plain token blocking keeps essentially all true pairs.
        let recall = out.pair_recall(&truth);
        assert!(
            recall >= 0.9,
            "{strategy:?} recall {recall:.4} below the floor"
        );
    }
}

#[test]
fn meta_and_lsh_hit_the_acceptance_numbers() {
    // The PR's acceptance criterion: ≥ 0.95 pair recall at ≤ 25% of the
    // brute-force comparisons, on the dirty preset, for meta-blocking and
    // LSH under default knobs.
    let corpus = corpus();
    let docs = doc_records(&corpus);
    let truth = corpus.truth_pairs();
    for strategy in [Strategy::Meta, Strategy::Lsh] {
        let out = Blocker::new(BlockingConfig::default().with_strategy(strategy)).block(&docs);
        let recall = out.pair_recall(&truth);
        let frac = out.stats.comparison_frac();
        assert!(
            recall >= 0.95,
            "{strategy:?} pair recall {recall:.4} < 0.95"
        );
        assert!(
            frac <= 0.25,
            "{strategy:?} uses {:.1}% of brute-force comparisons (> 25%)",
            frac * 100.0
        );
    }
}

#[test]
fn blocking_is_deterministic_under_parallelism() {
    // Block-graph construction merges per-worker partial maps; pruning and
    // component assembly must come out bit-identical whatever the split.
    let corpus = corpus();
    let docs = doc_records(&corpus);
    for strategy in [Strategy::Token, Strategy::Meta, Strategy::Lsh] {
        let run = |threads: usize| {
            let config = BlockingConfig {
                threads,
                ..BlockingConfig::default()
            }
            .with_strategy(strategy);
            Blocker::new(config).block(&docs)
        };
        let one = run(1);
        let four = run(4);
        let nine = run(9);
        assert_eq!(one.pairs, four.pairs, "{strategy:?} pairs differ");
        assert_eq!(four.pairs, nine.pairs, "{strategy:?} pairs differ");
        assert_eq!(one.blocks, four.blocks, "{strategy:?} blocks differ");
        assert_eq!(one.stats, nine.stats, "{strategy:?} stats differ");
    }
}

#[test]
fn blocks_feed_the_resolver_end_to_end() {
    // A small dirty pile → meta-blocking → full resolver per emitted
    // block. The final global partition (resolver clusters within blocks,
    // singletons elsewhere) must recover most true co-referent pairs.
    let mut config = dirty_small(42);
    config.base.names = 3;
    config.base.docs_per_name = 16;
    let corpus = generate_dirty(&config);
    let docs = doc_records(&corpus);
    let out = Blocker::new(BlockingConfig::default()).block(&docs);
    assert!(!out.blocks.is_empty());

    let extractor = Extractor::new(&corpus.gazetteer);
    let resolver = Resolver::new(ResolverConfig::default()).unwrap();
    // Global labels: one cluster id space across blocks, singletons for
    // documents no block covers.
    let mut global = vec![u32::MAX; corpus.len()];
    let mut next = 0u32;
    for (k, members) in out.blocks.iter().enumerate() {
        let features: Vec<PageFeatures> = members
            .iter()
            .map(|&d| {
                let doc = &corpus.documents[d as usize];
                extractor.extract(&doc.text, doc.url.as_deref())
            })
            .collect();
        let block =
            PreparedBlock::with_scheme(format!("block{k}"), features, WordVectorScheme::default());
        let truth = Partition::from_labels(
            members
                .iter()
                .map(|&d| corpus.documents[d as usize].entity)
                .collect(),
        );
        let sup = Supervision::sample_from_truth(&truth, 0.3, 7);
        let r = resolver.resolve(&block, &sup).unwrap();
        for (slot, &d) in members.iter().enumerate() {
            global[d as usize] = next + r.partition.label_of(slot);
        }
        next += r.partition.cluster_count() as u32;
    }
    for g in &mut global {
        if *g == u32::MAX {
            *g = next;
            next += 1;
        }
    }

    let resolved = Partition::from_labels(global);
    let truth_pairs = corpus.truth_pairs();
    let hits = truth_pairs
        .iter()
        .filter(|&&(i, j)| resolved.label_of(i) == resolved.label_of(j))
        .count();
    let recall = hits as f64 / truth_pairs.len() as f64;
    assert!(
        recall >= 0.5,
        "resolver over candidate blocks recovers only {recall:.3} of true pairs"
    );
}

#[test]
fn cli_block_roundtrip() {
    // generate --preset dirty-small → block --strategy lsh → NDJSON out.
    let dir = std::env::temp_dir().join("weber_blocking_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let corpus_path = dir.join("dirty.json");
    let blocks_path = dir.join("blocks.ndjson");
    let metrics_path = dir.join("metrics.txt");
    let weber = env!("CARGO_BIN_EXE_weber");

    let status = std::process::Command::new(weber)
        .args([
            "generate",
            "--preset",
            "dirty-small",
            "--seed",
            "5",
            "--out",
            corpus_path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());

    let status = std::process::Command::new(weber)
        .args([
            "block",
            "--corpus",
            corpus_path.to_str().unwrap(),
            "--strategy",
            "lsh",
            "--out",
            blocks_path.to_str().unwrap(),
            "--metrics-file",
            metrics_path.to_str().unwrap(),
        ])
        .status()
        .unwrap();
    assert!(status.success());

    let ndjson = std::fs::read_to_string(&blocks_path).unwrap();
    let lines: Vec<&str> = ndjson.lines().collect();
    assert!(lines.len() >= 2, "expected blocks plus a summary line");
    for line in &lines[..lines.len() - 1] {
        assert!(
            line.starts_with("{\"block\":"),
            "unexpected block line: {line}"
        );
    }
    let summary = lines.last().unwrap();
    assert!(
        summary.starts_with("{\"summary\":"),
        "bad summary: {summary}"
    );
    assert!(
        summary.contains("\"strategy\":\"lsh\""),
        "bad summary: {summary}"
    );
    assert!(
        summary.contains("\"pair_recall\":"),
        "bad summary: {summary}"
    );

    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    assert!(
        metrics.contains("block.candidate_pairs"),
        "metrics dump missing counters: {metrics}"
    );
    assert!(
        metrics.contains("block.stage.total_us_count"),
        "metrics dump missing histograms"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dirty_preset_generation_is_reproducible_via_config() {
    let a = generate_dirty(&dirty_small(9));
    let b = generate_dirty(&DirtyConfig {
        base: dirty_small(9).base,
        variant_prob: dirty_small(9).variant_prob,
    });
    assert_eq!(a.documents, b.documents);
}
