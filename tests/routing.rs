//! Routing-tier end-to-end tests: a `weber route` ring over real `weber
//! serve` backends must be indistinguishable from one big daemon when all
//! backends are up, and degrade by exactly the dead shards when they are
//! not.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use serde_json::Value;
use weber::extract::gazetteer::{EntityKind, Gazetteer};
use weber::shard::{route_listener, Router, RouterOptions};
use weber::stream::{serve_listener, StreamConfig, StreamResolver, TcpOptions};

fn gazetteer() -> Gazetteer {
    let mut g = Gazetteer::new();
    g.add_phrases(EntityKind::Concept, ["databases", "gardening"]);
    g
}

struct Backend {
    addr: SocketAddr,
    handle: std::thread::JoinHandle<u64>,
}

fn start_backend(config: StreamConfig) -> Backend {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    start_backend_on(config, listener)
}

fn start_backend_on(config: StreamConfig, listener: TcpListener) -> Backend {
    let resolver = Arc::new(StreamResolver::new(config, &gazetteer()).unwrap());
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        serve_listener(resolver, listener, &TcpOptions::default()).unwrap()
    });
    Backend { addr, handle }
}

/// Stop a backend directly (not through the router) and wait for it to
/// release its port.
fn kill_backend(backend: Backend) {
    let stream = TcpStream::connect(backend.addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    backend.handle.join().unwrap();
}

/// A port with nothing listening on it (bound once, then dropped).
fn dead_addr() -> SocketAddr {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
}

/// Fast-failing router options so dead-backend tests don't crawl.
fn fast_options() -> RouterOptions {
    RouterOptions {
        retries: 2,
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_secs(10),
        probe_interval: Duration::from_millis(100),
        ..RouterOptions::default()
    }
}

fn router_over(addrs: &[SocketAddr]) -> Router {
    Router::new(
        addrs.iter().map(|a| a.to_string()).collect(),
        fast_options(),
    )
    .unwrap()
}

fn seed_line(name: &str) -> String {
    format!(
        concat!(
            r#"{{"op":"seed","name":"{}","docs":["#,
            r#"{{"text":"databases are fun and databases are important","label":0}},"#,
            r#"{{"text":"databases are hard but databases pay well","label":0}},"#,
            r#"{{"text":"gardening tips for growing roses","label":1}},"#,
            r#"{{"text":"gardening advice on pruning roses","label":1}}]}}"#
        ),
        name
    )
}

fn ingest_line(name: &str, text: &str) -> String {
    format!(r#"{{"op":"ingest","name":"{name}","text":"{text}"}}"#)
}

fn parse(line: &str) -> Value {
    serde_json::parse_value(line).unwrap_or_else(|e| panic!("bad JSON {line}: {e}"))
}

/// Drop the router's shard tags so responses can be compared with a
/// single daemon's.
fn sans_shard(line: &str) -> String {
    let mut v = parse(line);
    if let Value::Object(entries) = &mut v {
        entries.retain(|(k, _)| k != "shard");
    }
    serde_json::to_string(&v).unwrap()
}

/// One name per shard, found by asking the ring.
fn names_covering_owners(router: &Router, shards: usize) -> Vec<String> {
    let mut by_owner: Vec<Option<String>> = vec![None; shards];
    for i in 0..10_000 {
        let name = format!("name{i}");
        let (idx, _) = router.owner(&name);
        if by_owner[idx].is_none() {
            by_owner[idx] = Some(name);
        }
        if by_owner.iter().all(Option::is_some) {
            break;
        }
    }
    by_owner
        .into_iter()
        .map(|n| n.expect("every shard owns some name"))
        .collect()
}

/// Send one line, read one response line.
fn round_trip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim().to_string()
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// Sort a snapshot's names array by name (the router sorts; a single
/// daemon reports insertion order) and strip shard tags for comparison.
fn normalized_snapshot(line: &str) -> Vec<String> {
    let v = parse(line);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{line}");
    let mut entries: Vec<String> = v
        .get("names")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| sans_shard(&serde_json::to_string(e).unwrap()))
        .collect();
    entries.sort();
    entries
}

#[test]
fn a_three_backend_ring_answers_like_a_single_daemon() {
    // The same request stream goes to one standalone daemon and to a
    // 3-backend routed tier, both over real sockets; every response must
    // match modulo the router's shard tags.
    let single = start_backend(StreamConfig::default());
    let backends: Vec<Backend> = (0..3)
        .map(|_| start_backend(StreamConfig::default()))
        .collect();
    let router = Arc::new(router_over(
        &backends.iter().map(|b| b.addr).collect::<Vec<_>>(),
    ));
    let names = names_covering_owners(&router, 3);

    let front = TcpListener::bind("127.0.0.1:0").unwrap();
    let front_addr = front.local_addr().unwrap();
    let router_thread = {
        let router = Arc::clone(&router);
        std::thread::spawn(move || route_listener(router, front, 16).unwrap())
    };

    let (mut s_writer, mut s_reader) = connect(single.addr);
    let (mut r_writer, mut r_reader) = connect(front_addr);

    let mut script = Vec::new();
    for name in &names {
        script.push(seed_line(name));
        script.push(ingest_line(name, "databases keep growing"));
        script.push(ingest_line(name, "gardening in the rain"));
    }
    script.push(r#"{"op":"flush"}"#.to_string());

    for line in &script {
        let from_single = round_trip(&mut s_writer, &mut s_reader, line);
        let from_router = round_trip(&mut r_writer, &mut r_reader, line);
        assert_eq!(
            sans_shard(&from_single),
            sans_shard(&from_router),
            "responses diverge on {line}"
        );
    }

    // Snapshots agree once shard tags are dropped and order is fixed.
    let s_snap = round_trip(&mut s_writer, &mut s_reader, r#"{"op":"snapshot"}"#);
    let r_snap = round_trip(&mut r_writer, &mut r_reader, r#"{"op":"snapshot"}"#);
    assert!(parse(&r_snap).get("degraded").is_none(), "{r_snap}");
    assert_eq!(normalized_snapshot(&s_snap), normalized_snapshot(&r_snap));

    // Metrics merge: the router reports its own counters plus every
    // backend's, namespaced by shard.
    let metrics = round_trip(&mut r_writer, &mut r_reader, r#"{"op":"metrics"}"#);
    let v = parse(&metrics);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    let counters = v.get("counters").unwrap();
    assert!(counters.get("route.requests").unwrap().as_u64().unwrap() > 0);
    for shard in 0..3 {
        let key = format!("shard{shard}.stream.ingests");
        assert!(
            counters.get(&key).and_then(Value::as_u64).unwrap_or(0) > 0,
            "no ingests recorded under {key}: {metrics}"
        );
    }

    // Shutdown through the router reaches every backend and matches the
    // single daemon's acknowledgement.
    let s_bye = round_trip(&mut s_writer, &mut s_reader, r#"{"op":"shutdown"}"#);
    let r_bye = round_trip(&mut r_writer, &mut r_reader, r#"{"op":"shutdown"}"#);
    assert_eq!(sans_shard(&s_bye), sans_shard(&r_bye));
    single.handle.join().unwrap();
    for backend in backends {
        backend.handle.join().unwrap();
    }
    router_thread.join().unwrap();
}

#[test]
fn killing_one_backend_degrades_only_its_shard() {
    let backends: Vec<Backend> = (0..3)
        .map(|_| start_backend(StreamConfig::default()))
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.addr).collect();
    let router = router_over(&addrs);
    let names = names_covering_owners(&router, 3);
    for name in &names {
        let out = router.process_line(&seed_line(name));
        assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    }

    // Kill the backend owning names[1].
    let (dead_shard, _) = router.owner(&names[1]);
    let mut backends: Vec<Option<Backend>> = backends.into_iter().map(Some).collect();
    kill_backend(backends[dead_shard].take().unwrap());

    // Its name is now unreachable — reported, not rerouted (the state
    // lives on the dead shard and nowhere else).
    let out = router.process_line(&ingest_line(&names[1], "databases after the crash"));
    let v = parse(&out.response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(v.get("kind").unwrap().as_str(), Some("unreachable"));
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(dead_shard as u64));
    assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));

    // Names owned by the surviving shards are served as before.
    for name in [&names[0], &names[2]] {
        let out = router.process_line(&ingest_line(name, "gardening goes on"));
        assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    }

    // The snapshot carries the survivors' names and flags exactly the
    // dead shard.
    let out = router.process_line(r#"{"op":"snapshot"}"#);
    let v = parse(&out.response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
    let unreachable = v.get("unreachable").unwrap().as_array().unwrap();
    assert_eq!(unreachable.len(), 1);
    assert_eq!(
        unreachable[0].get("shard").unwrap().as_u64(),
        Some(dead_shard as u64)
    );
    let snap_names = v.get("names").unwrap().as_array().unwrap();
    assert_eq!(snap_names.len(), 2);

    // After a probe pass the router's health view shows one shard down.
    router.probe_once();
    let out = router.process_line(r#"{"op":"health"}"#);
    let v = parse(&out.response);
    assert_eq!(v.get("backends").unwrap().as_u64(), Some(3));
    assert_eq!(v.get("healthy").unwrap().as_u64(), Some(2));

    for backend in backends.into_iter().flatten() {
        kill_backend(backend);
    }
}

#[test]
fn a_backend_down_at_startup_is_degraded_from_the_first_request() {
    let live = start_backend(StreamConfig::default());
    let router = router_over(&[live.addr, dead_addr()]);
    let names = names_covering_owners(&router, 2);

    // The live shard's name works immediately.
    let out = router.process_line(&seed_line(&names[0]));
    assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    // The dead shard's name fails with routing context.
    let out = router.process_line(&seed_line(&names[1]));
    let v = parse(&out.response);
    assert_eq!(v.get("kind").unwrap().as_str(), Some("unreachable"));
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(1));
    // Fan-out degrades to the live half.
    let out = router.process_line(r#"{"op":"snapshot"}"#);
    let v = parse(&out.response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("names").unwrap().as_array().unwrap().len(), 1);

    kill_backend(live);
}

#[test]
fn all_backends_down_still_answers_with_a_degraded_snapshot() {
    let router = Router::new(
        vec![dead_addr().to_string(), dead_addr().to_string()],
        RouterOptions {
            retries: 0,
            ..fast_options()
        },
    )
    .unwrap();
    let out = router.process_line(r#"{"op":"snapshot"}"#);
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        out.response
    );
    assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("names").unwrap().as_array().unwrap().len(), 0);
    assert_eq!(v.get("unreachable").unwrap().as_array().unwrap().len(), 2);
    // The router's own health still answers too.
    router.probe_once();
    let out = router.process_line(r#"{"op":"health"}"#);
    let v = parse(&out.response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("healthy").unwrap().as_u64(), Some(0));
}

#[test]
fn a_backend_restart_is_invisible_to_the_next_write() {
    let backends: Vec<Backend> = (0..3)
        .map(|_| start_backend(StreamConfig::default()))
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.addr).collect();
    let router = router_over(&addrs);
    let names = names_covering_owners(&router, 3);
    let (owner, _) = router.owner(&names[0]);

    // Warm the pool towards the owner, then restart that backend on the
    // same address: every pooled connection is now stale.
    let out = router.process_line(&seed_line(&names[0]));
    assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    let mut backends: Vec<Option<Backend>> = backends.into_iter().map(Some).collect();
    kill_backend(backends[owner].take().unwrap());
    let listener = TcpListener::bind(addrs[owner]).unwrap();
    backends[owner] = Some(start_backend_on(StreamConfig::default(), listener));

    // Either way the restart is invisible: the outbound reactor usually
    // sees the dead backend's FIN the moment it happens and reaps the
    // stale connection (so the re-seed dials fresh, first try), and if
    // the re-seed wins the race onto the stale socket it fails
    // mid-exchange and the bounded retry reconnects. The client sees a
    // plain ack from the same (restarted) shard and no error in either
    // interleaving.
    let out = router.process_line(&seed_line(&names[0]));
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        out.response
    );
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(owner as u64));
    let errors = router
        .registry()
        .snapshot()
        .counter("route.errors")
        .unwrap_or(0);
    assert_eq!(errors, 0, "a restart must not surface as a routed error");

    for backend in backends.into_iter().flatten() {
        kill_backend(backend);
    }
}

#[test]
fn overloaded_replies_are_relayed_verbatim_not_retried() {
    // A fake backend that answers every line with the daemon's overloaded
    // error: the router must relay it (it is a valid reply) and must not
    // burn retry attempts on it.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        // One connection is enough for the single routed request.
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            writer
                .write_all(b"{\"ok\":false,\"error\":\"overloaded\",\"kind\":\"overloaded\"}\n")
                .unwrap();
            line.clear();
        }
    });
    let router = router_over(&[addr]);
    let out = router.process_line(&ingest_line("cohen", "databases at capacity"));
    let v = parse(&out.response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(v.get("kind").unwrap().as_str(), Some("overloaded"));
    // The reply still gets the router's shard tag, and no retries fired.
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(0));
    let retries = router
        .registry()
        .snapshot()
        .counter("route.retries")
        .unwrap_or(0);
    assert_eq!(retries, 0, "overloaded is a reply, not a transport failure");
    drop(router); // closes the pooled connection; the fake backend exits
    fake.join().unwrap();
}

fn replicated_router_over(addrs: &[SocketAddr], replication: usize) -> Router {
    Router::new(
        addrs.iter().map(|a| a.to_string()).collect(),
        RouterOptions {
            replication,
            ..fast_options()
        },
    )
    .unwrap()
}

fn resolve_line(name: &str) -> String {
    format!(r#"{{"op":"resolve","name":"{name}"}}"#)
}

fn counter(router: &Router, name: &str) -> u64 {
    router.registry().snapshot().counter(name).unwrap_or(0)
}

#[test]
fn replication_is_clamped_and_reported_in_health() {
    // Nothing listens on these ports; health answers locally.
    let router = Router::new(
        vec![dead_addr().to_string(), dead_addr().to_string()],
        RouterOptions {
            replication: 5,
            retries: 0,
            ..fast_options()
        },
    )
    .unwrap();
    let v = parse(&router.process_line(r#"{"op":"health"}"#).response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(
        v.get("replication").unwrap().as_u64(),
        Some(2),
        "replication clamps to the backend count"
    );
    assert_eq!(v.get("vnodes").unwrap().as_u64(), Some(64));
}

#[test]
fn with_replication_two_a_dead_backend_leaves_every_name_readable() {
    // The acceptance scenario: R=2 over three backends, one backend
    // killed. Every name must still answer `resolve` with ok:true, the
    // snapshot must stay complete and non-degraded, and the router must
    // count failover reads.
    let backends: Vec<Backend> = (0..3)
        .map(|_| start_backend(StreamConfig::default()))
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.addr).collect();
    let router = replicated_router_over(&addrs, 2);
    let names = names_covering_owners(&router, 3);
    for name in &names {
        let v = parse(&router.process_line(&seed_line(name)).response);
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("replication").unwrap().as_u64(), Some(2));
        assert_eq!(
            v.get("acked").unwrap().as_u64(),
            Some(2),
            "both replicas ack while everyone is up"
        );
        assert!(v.get("degraded").is_none(), "{}", names.len());
    }

    // Kill the backend that is primary for names[1].
    let (dead_shard, _) = router.owner(&names[1]);
    let mut backends: Vec<Option<Backend>> = backends.into_iter().map(Some).collect();
    kill_backend(backends[dead_shard].take().unwrap());

    // Every name resolves ok — the dead primary's names from a replica.
    for name in &names {
        let v = parse(&router.process_line(&resolve_line(name)).response);
        assert_eq!(
            v.get("ok").unwrap().as_bool(),
            Some(true),
            "name {name} must stay readable"
        );
        assert_eq!(v.get("op").unwrap().as_str(), Some("resolve"));
        assert_eq!(v.get("docs").unwrap().as_u64(), Some(4));
        assert!(v.get("unreachable").is_none());
        let shard = v.get("shard").unwrap().as_u64().unwrap();
        assert_ne!(shard, dead_shard as u64, "a dead shard cannot answer");
    }
    let v = parse(&router.process_line(&resolve_line(&names[1])).response);
    assert_eq!(v.get("failover").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("primary").unwrap().as_u64(), Some(dead_shard as u64));
    assert!(
        counter(&router, "route.failover_reads") > 0,
        "failover reads must be counted"
    );

    // The snapshot still covers every name exactly once, and one dead
    // backend out of R=2 does not degrade it.
    let v = parse(&router.process_line(r#"{"op":"snapshot"}"#).response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert!(v.get("degraded").is_none(), "one death < R: {v:?}");
    assert!(v.get("unreachable").is_none());
    let mut snap_names: Vec<String> = v
        .get("names")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e.get("name").unwrap().as_str().unwrap().to_string())
        .collect();
    snap_names.sort();
    let mut expected = names.clone();
    expected.sort();
    assert_eq!(snap_names, expected, "every name exactly once");

    // A write to the dead primary's name still lands (on the replica),
    // marked degraded with a pending repair.
    let v = parse(
        &router
            .process_line(&ingest_line(&names[1], "databases after the crash"))
            .response,
    );
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("acked").unwrap().as_u64(), Some(1));
    assert_eq!(v.get("degraded").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("repair_pending").unwrap().as_bool(), Some(true));
    assert!(counter(&router, "route.replica_writes") > 0);

    for backend in backends.into_iter().flatten() {
        kill_backend(backend);
    }
}

#[test]
fn a_restarted_primary_is_repaired_with_the_writes_it_missed() {
    // R=2 over a shared state directory. The primary of names[0] dies,
    // an ingest lands on the replica (and is buffered for the primary),
    // the primary restarts, and the router's probe replays the missed
    // write — after which the primary alone serves the full 5-doc state.
    let dir = std::env::temp_dir().join(format!("weber_routing_repair_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StreamConfig::default().with_state_dir(&dir);
    let backends: Vec<Backend> = (0..3).map(|_| start_backend(config.clone())).collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.addr).collect();
    let router = replicated_router_over(&addrs, 2);
    let names = names_covering_owners(&router, 3);
    for name in &names {
        let out = router.process_line(&seed_line(name));
        assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    }
    // Put every name's seed-era record on disk, so a restarted backend
    // can restore it before replaying buffered writes.
    let out = router.process_line(r#"{"op":"persist"}"#);
    assert!(out.response.contains("\"ok\":true"), "{}", out.response);

    let replica_set = router.replica_set(&names[0]);
    let (primary, replica) = (replica_set[0], replica_set[1]);
    let mut backends: Vec<Option<Backend>> = backends.into_iter().map(Some).collect();
    kill_backend(backends[primary].take().unwrap());

    // The write is acked by the replica and buffered for the primary.
    let v = parse(
        &router
            .process_line(&ingest_line(&names[0], "databases after the crash"))
            .response,
    );
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{v:?}");
    assert_eq!(v.get("acked").unwrap().as_u64(), Some(1));
    assert_eq!(v.get("repair_pending").unwrap().as_bool(), Some(true));
    let health = parse(&router.process_line(r#"{"op":"health"}"#).response);
    let shard_entry = &health.get("shards").unwrap().as_array().unwrap()[primary];
    assert_eq!(
        shard_entry.get("repair_backlog").unwrap().as_u64(),
        Some(1),
        "the missed write is queued: {health:?}"
    );

    // Restart the primary on its old address and let probes find it and
    // drain the repair queue.
    let listener = TcpListener::bind(addrs[primary]).unwrap();
    backends[primary] = Some(start_backend_on(config.clone(), listener));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while counter(&router, "route.replica_lag_repairs") == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "repair never drained; health: {}",
            router.process_line(r#"{"op":"health"}"#).response
        );
        router.probe_once();
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(counter(&router, "route.replica_lag_repairs") >= 1);

    // Kill the replica: only the repaired primary can answer now, and it
    // must have the seed batch (4 docs, via the shared state dir) plus
    // the replayed ingest.
    kill_backend(backends[replica].take().unwrap());
    let v = parse(&router.process_line(&resolve_line(&names[0])).response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{v:?}");
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(primary as u64));
    assert!(v.get("failover").is_none(), "the primary itself answers");
    assert_eq!(
        v.get("docs").unwrap().as_u64(),
        Some(5),
        "restored seed + repaired ingest: {v:?}"
    );

    for backend in backends.into_iter().flatten() {
        kill_backend(backend);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn topology_change_migrates_names_through_shared_state() {
    // Three backends over one shared state directory. Shrinking the ring
    // to two persists every name first; the new owner of a reassigned
    // name restores it from disk on the next touch.
    let dir = std::env::temp_dir().join(format!("weber_routing_topology_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StreamConfig::default().with_state_dir(&dir);
    let backends: Vec<Backend> = (0..3).map(|_| start_backend(config.clone())).collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.addr).collect();
    let router = router_over(&addrs);
    let names = names_covering_owners(&router, 3);
    for name in &names {
        let out = router.process_line(&seed_line(name));
        assert!(out.response.contains("\"ok\":true"), "{}", out.response);
    }

    // Shrink to the first two backends. The third shard's name must end
    // up owned by a survivor.
    let migrating = &names[2];
    let keep = vec![addrs[0].to_string(), addrs[1].to_string()];
    let out = router.process_line(&format!(
        r#"{{"op":"topology","backends":["{}","{}"]}}"#,
        keep[0], keep[1]
    ));
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        out.response
    );
    assert!(v.get("persisted").unwrap().as_u64().unwrap() >= 3);
    assert_eq!(router.backends(), keep);
    let (new_owner, _) = router.owner(migrating);
    assert!(new_owner < 2);

    // The next touch restores the migrated name on its new owner: the
    // seed batch had 4 documents, so the restored state ingests doc 4.
    let out = router.process_line(&ingest_line(migrating, "databases after migration"));
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        out.response
    );
    assert_eq!(v.get("doc").unwrap().as_u64(), Some(4));
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(new_owner as u64));

    for backend in backends {
        kill_backend(backend);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A fake backend that accepts, reads each request line, and answers
/// only after `delay` (forever, for `None`). Returns its address.
fn start_stalling_backend(delay: Option<Duration>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                    match delay {
                        Some(delay) => {
                            std::thread::sleep(delay);
                            if writeln!(writer, r#"{{"ok":true,"op":"ingest","doc":1}}"#).is_err() {
                                return;
                            }
                            let _ = writer.flush();
                        }
                        // Never reply; hold the connection open so the
                        // exchange can only end by timing out.
                        None => std::thread::sleep(Duration::from_secs(3600)),
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn a_slow_backend_does_not_stall_healthy_shards_in_event_mode() {
    use weber::shard::FrontOptions;

    // One deliberately slow backend among two real ones, behind the
    // event front end with a SINGLE worker: if any thread parked on the
    // slow round trip, the healthy-shard request on the other connection
    // would be stuck behind it. The async outbound pool must keep it
    // flowing.
    let slow_delay = Duration::from_millis(2500);
    let slow_addr = start_stalling_backend(Some(slow_delay));
    let real: Vec<Backend> = (0..2)
        .map(|_| start_backend(StreamConfig::default()))
        .collect();
    let mut addrs = vec![slow_addr];
    addrs.extend(real.iter().map(|b| b.addr));
    let router = Arc::new(router_over(&addrs));
    let names = names_covering_owners(&router, 3);
    let slow_name = &names[0];
    let fast_name = &names[1];

    let front = TcpListener::bind("127.0.0.1:0").unwrap();
    let front_addr = front.local_addr().unwrap();
    let router_thread = {
        let router = Arc::clone(&router);
        let options = FrontOptions {
            workers: 1,
            ..FrontOptions::default()
        };
        std::thread::spawn(move || {
            weber::shard::route_listener_with(router, front, &options).unwrap()
        })
    };

    // Connection 1 fires a request for the slow shard's name and does
    // NOT wait for the reply.
    let (mut slow_writer, mut slow_reader) = connect(front_addr);
    writeln!(
        slow_writer,
        "{}",
        ingest_line(slow_name, "stuck behind molasses")
    )
    .unwrap();
    slow_writer.flush().unwrap();

    // Connection 2's request for a healthy shard's name must answer well
    // before the slow backend's delay elapses.
    let (mut fast_writer, mut fast_reader) = connect(front_addr);
    let started = std::time::Instant::now();
    let reply = round_trip(&mut fast_writer, &mut fast_reader, &seed_line(fast_name));
    let elapsed = started.elapsed();
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(
        elapsed < Duration::from_millis(2000),
        "healthy-shard request took {elapsed:?} — stalled behind the slow backend"
    );

    // The slow request still completes (delayed, not lost).
    let mut slow_reply = String::new();
    slow_reader.read_line(&mut slow_reply).unwrap();
    let v = parse(slow_reply.trim());
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{slow_reply}");
    assert_eq!(v.get("shard").unwrap().as_u64(), Some(0));

    // Shut the tier down through the front end (the slow backend echoes
    // the broadcast late; the merge tolerates it).
    let bye = round_trip(&mut fast_writer, &mut fast_reader, r#"{"op":"shutdown"}"#);
    assert!(
        parse(&bye).get("ok").unwrap().as_bool() == Some(true),
        "{bye}"
    );
    for backend in real {
        backend.handle.join().unwrap();
    }
    router_thread.join().unwrap();
}

#[test]
fn a_stalled_exchange_times_out_as_unreachable_not_a_hang() {
    // A backend that accepts and never answers: the outbound pool's
    // timeout sweep must expire the exchange and surface the standard
    // unreachable error, bounded by the configured io timeout.
    let addr = start_stalling_backend(None);
    let router = Router::new(
        vec![addr.to_string()],
        RouterOptions {
            retries: 0,
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(600),
            ..RouterOptions::default()
        },
    )
    .unwrap();

    let started = std::time::Instant::now();
    let out = router.process_line(&ingest_line("anyname", "going nowhere"));
    let elapsed = started.elapsed();
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(false),
        "{}",
        out.response
    );
    assert_eq!(v.get("kind").unwrap().as_str(), Some("unreachable"));
    assert!(
        elapsed < Duration::from_secs(5),
        "stalled exchange took {elapsed:?} — the timeout sweep did not fire"
    );
}

#[test]
fn entity_ops_relay_through_a_replicated_ring() {
    // Two backends, R=2: every name lives on both, so entity-table
    // mutations must fan out like writes, named reads must carry shard
    // tags, and the name-less fan-out must list each name exactly once.
    let backends: Vec<Backend> = (0..2)
        .map(|_| start_backend(StreamConfig::default()))
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(|b| b.addr).collect();
    let options = RouterOptions {
        replication: 2,
        ..fast_options()
    };
    let router = Router::new(addrs.iter().map(|a| a.to_string()).collect(), options).unwrap();

    let out = router.process_line(&seed_line("cohen"));
    let v = parse(&out.response);
    assert_eq!(
        v.get("acked").unwrap().as_u64(),
        Some(2),
        "{}",
        out.response
    );

    // A named `entities` is a per-name read: answered by one replica,
    // tagged with the shard that served it.
    let out = router.process_line(r#"{"op":"entities","name":"cohen"}"#);
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        out.response
    );
    assert!(v.get("shard").is_some(), "{}", out.response);
    let entities = v.get("entities").unwrap().as_array().unwrap();
    assert_eq!(entities.len(), 2);

    // `constraint` takes the replicated write path: both replicas apply
    // it, so whichever replica answers later reads, the split holds.
    let out = router.process_line(
        r#"{"op":"constraint","name":"cohen","add":{"kind":"cannot-link","a":0,"b":1}}"#,
    );
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        out.response
    );
    assert_eq!(
        v.get("acked").unwrap().as_u64(),
        Some(2),
        "{}",
        out.response
    );
    for _ in 0..4 {
        let out = router.process_line(r#"{"op":"entities","name":"cohen"}"#);
        let v = parse(&out.response);
        let entities = v.get("entities").unwrap().as_array().unwrap();
        assert_eq!(entities.len(), 3, "both replicas hold the constraint");
    }

    // `same_as` errors relay verbatim from the backend, stable kind
    // included.
    let out = router.process_line(r#"{"op":"same_as","name":"cohen","a":0,"b":99}"#);
    let v = parse(&out.response);
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(v.get("kind").unwrap().as_str(), Some("unknown-entity"));

    // The name-less fan-out merges both replicas' tables into one entry
    // per name — R copies of `cohen` must not appear twice.
    let out = router.process_line(r#"{"op":"entities"}"#);
    let v = parse(&out.response);
    assert_eq!(
        v.get("ok").unwrap().as_bool(),
        Some(true),
        "{}",
        out.response
    );
    assert_eq!(v.get("op").unwrap().as_str(), Some("entities"));
    assert!(v.get("degraded").is_none(), "{}", out.response);
    let names = v.get("names").unwrap().as_array().unwrap();
    assert_eq!(names.len(), 1, "{}", out.response);
    assert_eq!(names[0].get("name").unwrap().as_str(), Some("cohen"));
    assert!(names[0].get("shard").is_some());

    for backend in backends {
        kill_backend(backend);
    }
}
