//! End-to-end integration tests: corpus generation → extraction →
//! similarity → accuracy estimation → combination → clustering →
//! evaluation, across all crates through the `weber` facade.

use weber::core::blocking::prepare_dataset;
use weber::core::experiment::{run_experiment, ExperimentConfig};
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{generate, presets};
use weber::eval::MetricSet;
use weber::graph::Partition;
use weber::simfun::functions::{subset_i10, FunctionId};
use weber::textindex::TfIdf;

fn protocol() -> ExperimentConfig {
    ExperimentConfig {
        train_fraction: 0.2,
        runs: 3,
        base_seed: 11,
    }
}

#[test]
fn full_pipeline_beats_trivial_baselines() {
    let prepared = prepare_dataset(&generate(&presets::tiny(101)), TfIdf::default());
    let combined = run_experiment(
        &prepared,
        &ResolverConfig::accuracy_suite(subset_i10()),
        &protocol(),
    )
    .unwrap()
    .mean;
    // Trivial baselines: all singletons, one big cluster.
    let mut singles = 0.0;
    let mut lump = 0.0;
    for nb in &prepared.blocks {
        singles += MetricSet::evaluate(&Partition::singletons(nb.truth.len()), &nb.truth).fp;
        lump += MetricSet::evaluate(&Partition::single_cluster(nb.truth.len()), &nb.truth).fp;
    }
    singles /= prepared.blocks.len() as f64;
    lump /= prepared.blocks.len() as f64;
    assert!(
        combined.fp > singles && combined.fp > lump,
        "combined {:.3} must beat singletons {:.3} and single-cluster {:.3}",
        combined.fp,
        singles,
        lump
    );
}

#[test]
fn accuracy_criteria_beat_threshold_only_on_average() {
    // The paper's central claim (C columns >= I columns), on three tiny
    // corpora to smooth out seed noise.
    let mut c_total = 0.0;
    let mut i_total = 0.0;
    for seed in [7, 19, 23] {
        let prepared = prepare_dataset(&generate(&presets::small(seed)), TfIdf::default());
        c_total += run_experiment(
            &prepared,
            &ResolverConfig::accuracy_suite(subset_i10()),
            &protocol(),
        )
        .unwrap()
        .mean
        .fp;
        i_total += run_experiment(
            &prepared,
            &ResolverConfig::threshold_suite(subset_i10()),
            &protocol(),
        )
        .unwrap()
        .mean
        .fp;
    }
    assert!(
        c_total >= i_total - 0.02,
        "accuracy-estimation suite ({c_total:.3}) must not lose to threshold-only ({i_total:.3})"
    );
}

#[test]
fn combined_technique_is_at_least_best_individual_on_average() {
    let prepared = prepare_dataset(&generate(&presets::tiny(303)), TfIdf::default());
    let combined = run_experiment(
        &prepared,
        &ResolverConfig::accuracy_suite(subset_i10()),
        &protocol(),
    )
    .unwrap()
    .mean
    .fp;
    let mut best_individual: f64 = 0.0;
    for id in FunctionId::ALL {
        let fp = run_experiment(
            &prepared,
            &ResolverConfig::individual(id, weber::core::decision::DecisionCriterion::Threshold),
            &protocol(),
        )
        .unwrap()
        .mean
        .fp;
        best_individual = best_individual.max(fp);
    }
    assert!(
        combined >= best_individual - 0.05,
        "combined {combined:.3} fell more than noise below best individual {best_individual:.3}"
    );
}

#[test]
fn experiments_are_reproducible() {
    let prepared = prepare_dataset(&generate(&presets::tiny(77)), TfIdf::default());
    let cfg = ResolverConfig::accuracy_suite(subset_i10());
    let a = run_experiment(&prepared, &cfg, &protocol()).unwrap();
    let b = run_experiment(&prepared, &cfg, &protocol()).unwrap();
    assert_eq!(a.mean, b.mean);
    for ((na, ma), (nb, mb)) in a.per_name.iter().zip(&b.per_name) {
        assert_eq!(na, nb);
        assert_eq!(ma, mb);
    }
}

#[test]
fn supervision_improves_with_more_labels() {
    // More supervision should help (or at least not hurt much) — averaged
    // over seeds to damp noise.
    let prepared = prepare_dataset(&generate(&presets::tiny(55)), TfIdf::default());
    let run = |frac: f64| {
        run_experiment(
            &prepared,
            &ResolverConfig::accuracy_suite(subset_i10()),
            &ExperimentConfig {
                train_fraction: frac,
                runs: 4,
                base_seed: 3,
            },
        )
        .unwrap()
        .mean
        .fp
    };
    let low = run(0.05);
    let high = run(0.5);
    assert!(
        high >= low - 0.02,
        "more supervision should not hurt: 5% -> {low:.3}, 50% -> {high:.3}"
    );
}

#[test]
fn resolver_handles_single_document_blocks() {
    // A degenerate block with one document must resolve to one singleton.
    let dataset = generate(&presets::tiny(1));
    let extractor = weber::extract::pipeline::Extractor::new(&dataset.gazetteer);
    let doc = &dataset.blocks[0].documents[0];
    let features = vec![extractor.extract(&doc.text, doc.url.as_deref())];
    let block = weber::simfun::block::PreparedBlock::new("solo", features, TfIdf::default());
    let resolver = Resolver::new(ResolverConfig::default()).unwrap();
    let r = resolver.resolve(&block, &Supervision::empty()).unwrap();
    assert_eq!(r.partition.len(), 1);
    assert_eq!(r.partition.cluster_count(), 1);
}

#[test]
fn clustering_backends_agree_on_easy_blocks() {
    use weber::core::clustering::ClusteringMethod;
    use weber::graph::correlation::CorrelationConfig;
    // On an easy corpus with generous supervision, transitive closure and
    // correlation clustering should produce similar-quality resolutions.
    let prepared = prepare_dataset(&generate(&presets::tiny(13)), TfIdf::default());
    let nb = &prepared.blocks[0];
    let sup = Supervision::sample_from_truth(&nb.truth, 0.4, 2);
    let closure = Resolver::new(ResolverConfig::accuracy_suite(subset_i10()))
        .unwrap()
        .resolve(&nb.block, &sup)
        .unwrap();
    let corr_cfg = ResolverConfig {
        clustering: ClusteringMethod::Correlation(CorrelationConfig::default()),
        ..ResolverConfig::accuracy_suite(subset_i10())
    };
    let correlation = Resolver::new(corr_cfg)
        .unwrap()
        .resolve(&nb.block, &sup)
        .unwrap();
    let fp_closure = MetricSet::evaluate(&closure.partition, &nb.truth).fp;
    let fp_corr = MetricSet::evaluate(&correlation.partition, &nb.truth).fp;
    assert!(
        (fp_closure - fp_corr).abs() < 0.35,
        "back-ends diverged wildly: closure {fp_closure:.3} vs correlation {fp_corr:.3}"
    );
}
