//! Integration tests for the event-loop front end (`weber-net` under
//! `weber serve`): incremental framing against slow clients, idle-timeout
//! eviction, connection-cap refusal, and connection-count soaks.
//!
//! Everything here drives a real `serve_listener` over real sockets in
//! the default event `IoMode`; the soak tests also exercise the loadgen
//! engine, whose closed-loop bookkeeping doubles as a correctness check
//! (every reply must match a request on the same connection, in order).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use weber::extract::gazetteer::{EntityKind, Gazetteer};
use weber::loadgen::{self, LoadgenOptions};
use weber::stream::{serve_listener, StreamConfig, StreamResolver, TcpOptions};

fn gazetteer() -> Gazetteer {
    let mut g = Gazetteer::new();
    g.add_phrases(EntityKind::Concept, ["databases", "gardening"]);
    g
}

fn start_server(options: TcpOptions) -> (std::net::SocketAddr, std::thread::JoinHandle<u64>) {
    let resolver = Arc::new(StreamResolver::new(StreamConfig::default(), &gazetteer()).unwrap());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || serve_listener(resolver, listener, &options).unwrap());
    (addr, handle)
}

/// Ask the server to shut down, retrying if the shutdown connection
/// itself gets refused (e.g. the connection cap is still held by
/// recently-dropped clients the reactor has not reaped yet).
fn shutdown(addr: std::net::SocketAddr) {
    for _ in 0..100 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        let _ = reader.read_line(&mut reply);
        if reply.contains("\"ok\":true") {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("server at {addr} refused every shutdown attempt");
}

/// A request delivered one byte at a time, with pauses, must still frame
/// into exactly one request and one reply — the reactor's `LineFramer`
/// holds partial lines across arbitrarily many read events.
#[test]
fn slow_client_byte_at_a_time_still_frames_one_request() {
    let (addr, server) = start_server(TcpOptions::default());
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let line = r#"{"op":"health"}"#.to_string() + "\n";
    for chunk in line.as_bytes().chunks(1) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");
    // A second fragmented request on the same connection works too.
    for chunk in line.as_bytes().chunks(3) {
        stream.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    reply.clear();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(reader);
    drop(stream);
    shutdown(addr);
    assert_eq!(server.join().unwrap(), 3); // 2 health + 1 shutdown
}

/// With `idle_timeout` set, a silent connection is evicted while an
/// active one on the same server keeps working.
#[test]
fn idle_connections_are_evicted_but_active_ones_survive() {
    let (addr, server) = start_server(TcpOptions {
        idle_timeout: Some(Duration::from_millis(300)),
        ..TcpOptions::default()
    });
    let idle = TcpStream::connect(addr).unwrap();
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut active = TcpStream::connect(addr).unwrap();
    active
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut active_reader = BufReader::new(active.try_clone().unwrap());
    // Keep the active connection chatty past the idle deadline.
    for _ in 0..6 {
        writeln!(active, r#"{{"op":"health"}}"#).unwrap();
        let mut reply = String::new();
        active_reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("\"ok\":true"), "{reply}");
        std::thread::sleep(Duration::from_millis(100));
    }
    // The idle connection has been closed by now: reads see EOF.
    let mut reader = BufReader::new(idle);
    let mut buf = String::new();
    let n = reader.read_line(&mut buf).unwrap();
    assert_eq!(n, 0, "idle connection should see EOF, got {buf:?}");
    drop(active_reader);
    drop(active);
    shutdown(addr);
    server.join().unwrap();
}

/// Connections past `max_connections` get exactly one `overloaded` error
/// line and a close, while admitted connections are unaffected.
#[test]
fn connections_past_the_cap_are_refused_with_an_error_line() {
    let (addr, server) = start_server(TcpOptions {
        max_connections: 2,
        ..TcpOptions::default()
    });
    let keep1 = TcpStream::connect(addr).unwrap();
    let keep2 = TcpStream::connect(addr).unwrap();
    // Give the reactor time to admit both before the third arrives.
    std::thread::sleep(Duration::from_millis(100));
    let refused = TcpStream::connect(addr).unwrap();
    refused
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(refused);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"error\""), "{line}");
    assert!(line.contains("overloaded"), "{line}");
    let mut rest = String::new();
    assert_eq!(reader.read_to_string(&mut rest).unwrap(), 0);
    // An admitted connection still round-trips.
    let mut stream = keep1;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    writeln!(stream, r#"{{"op":"health"}}"#).unwrap();
    let mut keep_reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    keep_reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");
    drop(keep_reader);
    drop(stream);
    drop(keep2);
    shutdown(addr);
    server.join().unwrap();
}

fn soak(connections: usize, rate: u64, duration: Duration) {
    let (addr, server) = start_server(TcpOptions {
        max_connections: connections + 8,
        workers: 2,
        queue_capacity: 512,
        ..TcpOptions::default()
    });
    let report = loadgen::run(
        &addr.to_string(),
        &LoadgenOptions {
            connections,
            duration,
            warmup: Duration::from_millis(500),
            rate: Some(rate),
            names: 16,
            ..LoadgenOptions::default()
        },
    )
    .unwrap();
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(report.setup_errors, 0, "{report:?}");
    assert_eq!(report.closed_early, 0, "{report:?}");
    assert_eq!(report.unanswered, 0, "{report:?}");
    assert!(
        report.measured > 0 && report.completed >= report.measured,
        "{report:?}"
    );
    shutdown(addr);
    server.join().unwrap();
}

/// Tier-1 soak: one reactor holds 128 persistent connections while an
/// open-loop trickle keeps them all occasionally active.
#[test]
fn soak_128_connections_open_loop() {
    soak(128, 300, Duration::from_secs(2));
}

/// Full soak: 1000 mostly-idle persistent connections through one
/// reactor thread. Ignored in tier-1 (several seconds, many fds); run
/// with `cargo test --test net -- --ignored`.
#[test]
#[ignore = "slow: 1000-connection soak"]
fn soak_1000_connections_open_loop() {
    soak(1000, 500, Duration::from_secs(5));
}
