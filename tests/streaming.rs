//! Streaming-vs-batch equivalence: feeding a corpus document-by-document
//! through the streaming resolver must track the batch resolver's quality.
//!
//! Protocol per block: sample supervision from the ground truth (the same
//! labelled subset both paths see), resolve the whole block in batch, then
//! seed a streaming resolver with only the labelled documents and ingest
//! the rest one at a time. The streamed partition — reassembled in original
//! document order — is scored with B-Cubed F against the ground truth and
//! must come within a fixed tolerance of the batch score. The streamed
//! model is trained on the seed subset's block-local statistics (it has not
//! seen the unlabelled documents at fit time), so exact equality is not
//! expected; staying close is the point of the subsystem.

use proptest::prelude::*;

use weber::core::blocking::prepare_dataset;
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{generate, presets, CorpusConfig};
use weber::eval::bcubed;
use weber::graph::Partition;
use weber::stream::{SeedDocument, StreamConfig, StreamResolver};
use weber::textindex::TfIdf;

/// Mean B-Cubed F of both paths over a dataset's blocks:
/// `(batch, stream, blocks_compared)`.
fn stream_vs_batch(config: &CorpusConfig, fraction: f64, seed: u64) -> (f64, f64, usize) {
    let dataset = generate(config);
    let prepared = prepare_dataset(&dataset, TfIdf::default());
    let batch = Resolver::new(ResolverConfig::default()).unwrap();
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();

    let (mut batch_sum, mut stream_sum, mut compared) = (0.0, 0.0, 0usize);
    for (nb, raw) in prepared.blocks.iter().zip(&dataset.blocks) {
        let truth = &nb.truth;
        let sup = Supervision::sample_from_truth(truth, fraction, seed);
        if sup.len() < 2 || sup.len() == truth.len() {
            continue; // nothing to train on, or nothing left to stream
        }

        let resolution = batch.resolve(&nb.block, &sup).unwrap();
        let batch_f = bcubed(&resolution.partition, truth).f_measure();

        let seed_docs: Vec<usize> = sup.docs().to_vec();
        let batch_docs: Vec<SeedDocument> = seed_docs
            .iter()
            .map(|&d| SeedDocument {
                text: raw.documents[d].text.clone(),
                url: raw.documents[d].url.clone(),
                label: truth.label_of(d),
            })
            .collect();
        stream.seed(&raw.query_name, &batch_docs).unwrap();

        // Ingest every unlabelled document, one at a time, in order.
        let mut order = seed_docs.clone();
        for d in 0..truth.len() {
            if !seed_docs.contains(&d) {
                let doc = &raw.documents[d];
                stream
                    .ingest(&raw.query_name, &doc.text, doc.url.as_deref())
                    .unwrap();
                order.push(d);
            }
        }

        // Reassemble the streamed partition in original document order.
        let streamed = stream.partition(&raw.query_name).unwrap();
        let mut labels = vec![0u32; truth.len()];
        for (pos, &original) in order.iter().enumerate() {
            labels[original] = streamed.label_of(pos);
        }
        let stream_f = bcubed(&Partition::from_labels(labels), truth).f_measure();

        batch_sum += batch_f;
        stream_sum += stream_f;
        compared += 1;
    }
    (batch_sum, stream_sum, compared)
}

/// Fixed tolerance on the mean B-Cubed F gap between the two paths.
const TOLERANCE: f64 = 0.15;

fn assert_equivalent(config: &CorpusConfig, fraction: f64, seed: u64) {
    let (batch_sum, stream_sum, compared) = stream_vs_batch(config, fraction, seed);
    assert!(compared > 0, "no block had a usable training sample");
    let batch_mean = batch_sum / compared as f64;
    let stream_mean = stream_sum / compared as f64;
    assert!(
        stream_mean >= batch_mean - TOLERANCE,
        "streaming fell behind batch: stream {stream_mean:.4} vs batch {batch_mean:.4} \
         over {compared} blocks (tolerance {TOLERANCE})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn streaming_tracks_batch_on_tiny_corpora(seed in 1u64..1000) {
        assert_equivalent(&presets::tiny(seed), 0.3, seed);
    }
}

#[test]
fn streaming_tracks_batch_on_small_corpus() {
    assert_equivalent(&presets::small(77), 0.25, 77);
}

mod tcp {
    //! Daemon-level behaviour over real sockets: concurrent clients,
    //! crash isolation, and persistence across "restarts".

    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;

    use weber::extract::gazetteer::{EntityKind, Gazetteer};
    use weber::stream::{serve_listener, StreamConfig, StreamResolver, TcpOptions};

    fn gazetteer() -> Gazetteer {
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Concept, ["databases", "gardening"]);
        g
    }

    fn start_server(config: StreamConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<u64>) {
        let resolver = Arc::new(StreamResolver::new(config, &gazetteer()).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            serve_listener(resolver, listener, &TcpOptions::default()).unwrap()
        });
        (addr, handle)
    }

    fn seed_line(name: &str) -> String {
        format!(
            concat!(
                r#"{{"op":"seed","name":"{}","docs":["#,
                r#"{{"text":"databases are fun and databases are important","label":0}},"#,
                r#"{{"text":"databases are hard but databases pay well","label":0}},"#,
                r#"{{"text":"gardening tips for growing roses","label":1}},"#,
                r#"{{"text":"gardening advice on pruning roses","label":1}}]}}"#
            ),
            name
        )
    }

    /// Send one line, read one response line.
    fn round_trip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim().to_string()
    }

    fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn two_simultaneous_clients_are_both_served() {
        let (addr, server) = start_server(StreamConfig::default());
        // Client A connects, seeds, and stays connected — under the old
        // sequential accept loop this would block client B forever.
        let (mut a_writer, mut a_reader) = connect(addr);
        let seeded = round_trip(&mut a_writer, &mut a_reader, &seed_line("cohen"));
        assert!(seeded.contains("\"ok\":true"), "{seeded}");
        // Client B completes a full exchange while A's connection is open.
        let (mut b_writer, mut b_reader) = connect(addr);
        let seeded = round_trip(&mut b_writer, &mut b_reader, &seed_line("smith"));
        assert!(seeded.contains("\"ok\":true"), "{seeded}");
        let ingested = round_trip(
            &mut b_writer,
            &mut b_reader,
            r#"{"op":"ingest","name":"smith","text":"gardening again"}"#,
        );
        assert!(ingested.contains("\"ok\":true"), "{ingested}");
        // A is still alive too, and both names exist in the shared state.
        let snap = round_trip(&mut a_writer, &mut a_reader, r#"{"op":"snapshot"}"#);
        assert!(snap.contains("cohen") && snap.contains("smith"), "{snap}");
        drop((b_writer, b_reader));
        let bye = round_trip(&mut a_writer, &mut a_reader, r#"{"op":"shutdown"}"#);
        assert!(bye.contains("shutdown"), "{bye}");
        let admitted = server.join().unwrap();
        assert_eq!(admitted, 5);
    }

    #[test]
    fn n_parallel_clients_ingest_disjoint_names() {
        let (addr, server) = start_server(StreamConfig::default());
        let clients = 4;
        let ingests_per_client = 5;
        std::thread::scope(|scope| {
            for c in 0..clients {
                scope.spawn(move || {
                    let (mut writer, mut reader) = connect(addr);
                    let name = format!("name{c}");
                    let seeded = round_trip(&mut writer, &mut reader, &seed_line(&name));
                    assert!(seeded.contains("\"ok\":true"), "{seeded}");
                    for i in 0..ingests_per_client {
                        let response = round_trip(
                            &mut writer,
                            &mut reader,
                            &format!(
                                r#"{{"op":"ingest","name":"{name}","text":"databases item {i}"}}"#
                            ),
                        );
                        assert!(response.contains("\"ok\":true"), "{response}");
                    }
                });
            }
        });
        // After the burst, snapshot totals must account for every client's
        // documents: clients × (4 seed docs + 5 ingested).
        let (mut writer, mut reader) = connect(addr);
        let snap = round_trip(&mut writer, &mut reader, r#"{"op":"snapshot"}"#);
        let value = serde_json::parse_value(&snap).unwrap();
        let names = value.get("names").unwrap().as_array().unwrap();
        assert_eq!(names.len(), clients);
        let total_docs: u64 = names
            .iter()
            .map(|n| n.get("docs").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(total_docs, (clients as u64) * (4 + ingests_per_client));
        round_trip(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
        server.join().unwrap();
    }

    #[test]
    fn a_client_dying_mid_stream_does_not_kill_the_daemon() {
        let (addr, server) = start_server(StreamConfig::default());
        // Victim client seeds, then fires a burst of ingests without ever
        // reading a response, and vanishes. The server's writes land on a
        // closed socket (RST once the unread data is discarded), which the
        // old implementation propagated out of the accept loop.
        {
            let (mut writer, mut reader) = connect(addr);
            let seeded = round_trip(&mut writer, &mut reader, &seed_line("victim"));
            assert!(seeded.contains("\"ok\":true"), "{seeded}");
            for i in 0..64 {
                writeln!(
                    writer,
                    r#"{{"op":"ingest","name":"victim","text":"databases burst {i}"}}"#
                )
                .unwrap();
            }
            writer.flush().unwrap();
            // Reset on close (unread responses in the receive buffer turn
            // the close into an abortive RST on most stacks); at minimum
            // the peer disappears mid-conversation.
            drop(reader);
            drop(writer);
        }
        // Give the server a moment to trip over the dead socket.
        std::thread::sleep(std::time::Duration::from_millis(300));
        // A second client must still get served.
        let (mut writer, mut reader) = connect(addr);
        let seeded = round_trip(&mut writer, &mut reader, &seed_line("survivor"));
        assert!(seeded.contains("\"ok\":true"), "{seeded}");
        let bye = round_trip(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
        assert!(bye.contains("shutdown"), "{bye}");
        server.join().unwrap();
    }

    #[test]
    fn health_probes_answer_with_uptime_and_names() {
        let (addr, server) = start_server(StreamConfig::default());
        let (mut writer, mut reader) = connect(addr);
        // A fresh daemon answers probes before anything is seeded.
        let probe = round_trip(&mut writer, &mut reader, r#"{"op":"health"}"#);
        let v = serde_json::parse_value(&probe).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("op").unwrap().as_str(), Some("health"));
        assert_eq!(v.get("names").unwrap().as_u64(), Some(0));
        assert!(v.get("uptime_s").unwrap().as_f64().unwrap() >= 0.0);
        assert!(v.get("queue_capacity").unwrap().as_u64().unwrap() > 0);
        // After a seed the live-name count moves.
        round_trip(&mut writer, &mut reader, &seed_line("cohen"));
        let probe = round_trip(&mut writer, &mut reader, r#"{"op":"health"}"#);
        let v = serde_json::parse_value(&probe).unwrap();
        assert_eq!(v.get("names").unwrap().as_u64(), Some(1));
        round_trip(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
        server.join().unwrap();
    }

    #[test]
    fn malformed_lines_are_answered_and_the_connection_survives() {
        let (addr, server) = start_server(StreamConfig::default());
        let (mut writer, mut reader) = connect(addr);
        // Broken JSON gets a parse error with a stable kind token…
        let parse_err = round_trip(&mut writer, &mut reader, "{not json");
        let v = serde_json::parse_value(&parse_err).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("parse"));
        // …and the connection keeps serving.
        let seeded = round_trip(&mut writer, &mut reader, &seed_line("cohen"));
        assert!(seeded.contains("\"ok\":true"), "{seeded}");
        round_trip(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
        server.join().unwrap();
    }

    #[test]
    fn persist_restart_restore_reproduces_the_partition() {
        let dir =
            std::env::temp_dir().join(format!("weber_streaming_persist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StreamConfig::default().with_state_dir(&dir);

        // First daemon lifetime: seed, ingest, persist over the wire.
        let (addr, server) = start_server(config.clone());
        let (mut writer, mut reader) = connect(addr);
        round_trip(&mut writer, &mut reader, &seed_line("cohen"));
        round_trip(&mut writer, &mut reader, &seed_line("smith"));
        for i in 0..3 {
            round_trip(
                &mut writer,
                &mut reader,
                &format!(r#"{{"op":"ingest","name":"cohen","text":"databases live {i}"}}"#),
            );
        }
        let persisted = round_trip(&mut writer, &mut reader, r#"{"op":"persist"}"#);
        assert!(persisted.contains("\"names\":2"), "{persisted}");
        let snap_before = round_trip(&mut writer, &mut reader, r#"{"op":"snapshot"}"#);
        round_trip(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
        server.join().unwrap();

        // The "restarted" daemon shares nothing in memory with the first.
        let (addr, server) = start_server(config);
        let (mut writer, mut reader) = connect(addr);
        let restored = round_trip(&mut writer, &mut reader, r#"{"op":"restore"}"#);
        assert!(restored.contains("\"names\":2"), "{restored}");
        let snap_after = round_trip(&mut writer, &mut reader, r#"{"op":"snapshot"}"#);
        // Same names, same document counts, same cluster structure.
        assert_eq!(snap_before, snap_after);
        // And the restored state keeps serving ingests.
        let response = round_trip(
            &mut writer,
            &mut reader,
            r#"{"op":"ingest","name":"cohen","text":"databases after restart"}"#,
        );
        assert!(response.contains("\"doc\":7"), "{response}");
        round_trip(&mut writer, &mut reader, r#"{"op":"shutdown"}"#);
        server.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn incremental_similarities_match_a_batch_build() {
    // The streaming engine's whole correctness contract: a block grown one
    // document at a time — deferred vector syncs, cached similarity rows,
    // incremental TF-IDF — must score every pair exactly as a block built
    // in one shot from the same documents.
    use weber::extract::pipeline::Extractor;
    use weber::simfun::block::PreparedBlock;
    use weber::simfun::functions::standard_suite;

    let dataset = generate(&presets::tiny(13));
    let extractor = Extractor::new(&dataset.gazetteer);
    let raw = &dataset.blocks[0];
    let features: Vec<_> = raw
        .documents
        .iter()
        .map(|d| extractor.extract(&d.text, d.url.as_deref()))
        .collect();

    let batch = PreparedBlock::new(raw.query_name.clone(), features.clone(), TfIdf::default());
    let seed = 3.min(features.len());
    let mut streamed = PreparedBlock::new(
        raw.query_name.clone(),
        features[..seed].to_vec(),
        TfIdf::default(),
    );
    for f in &features[seed..] {
        // The deferred path is the one the stream daemon takes.
        streamed.push_deferred(f.clone());
    }
    streamed.ensure_vectors();

    for i in 0..batch.len() {
        assert_eq!(batch.tfidf(i), streamed.tfidf(i), "vector of doc {i}");
    }
    for f in standard_suite() {
        let b = batch.similarity_graph_with(f.as_ref(), None);
        let s = streamed.similarity_graph_with(f.as_ref(), None);
        for (i, j, w) in b.edges() {
            assert!(
                (w - s.get(i, j)).abs() < 1e-12,
                "{} differs on pair ({i}, {j}): batch {w} vs streamed {}",
                f.name(),
                s.get(i, j)
            );
        }
    }
}

#[test]
fn streamed_model_scores_match_direct_recomputation() {
    // The cached-row scoring path used per arrival must agree with the
    // trained model's direct pairwise evaluation on the grown block.
    let dataset = generate(&presets::tiny(9));
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();
    let raw = &dataset.blocks[0];
    let truth = raw.truth();
    let seed_count = (raw.documents.len() / 2).max(2);
    let docs: Vec<SeedDocument> = raw.documents[..seed_count]
        .iter()
        .zip(0..)
        .map(|(d, i)| SeedDocument {
            text: d.text.clone(),
            url: d.url.clone(),
            label: truth.label_of(i),
        })
        .collect();
    stream.seed(&raw.query_name, &docs).unwrap();
    for d in &raw.documents[seed_count..] {
        stream
            .ingest(&raw.query_name, &d.text, d.url.as_deref())
            .unwrap();
    }
    stream
        .with_state(&raw.query_name, |state| {
            let block = state.block();
            let model = state.model();
            for doc in 1..block.len() {
                let row = model.similarity_row(block, doc);
                assert_eq!(row.len(), doc);
                for (j, &cached) in row.iter().enumerate() {
                    let direct = model.similarity(block, j, doc);
                    assert!(
                        (cached - direct).abs() < 1e-12,
                        "cached row differs at ({j}, {doc}): {cached} vs {direct}"
                    );
                }
            }
        })
        .unwrap();
}

#[test]
fn streaming_handles_every_block_of_a_dataset() {
    // Coverage sanity: on a tiny corpus with generous supervision, every
    // block either trains or is skipped for a principled reason, and the
    // streamed state answers for each trained name.
    let dataset = generate(&presets::tiny(5));
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();
    let mut seeded = 0;
    for block in &dataset.blocks {
        let truth = block.truth();
        let docs: Vec<SeedDocument> = block
            .documents
            .iter()
            .zip(0..)
            .map(|(d, i)| SeedDocument {
                text: d.text.clone(),
                url: d.url.clone(),
                label: truth.label_of(i),
            })
            .collect();
        stream.seed(&block.query_name, &docs).unwrap();
        seeded += 1;
    }
    assert_eq!(seeded, dataset.blocks.len());
    assert_eq!(stream.snapshot().names.len(), dataset.blocks.len());
}
