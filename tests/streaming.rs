//! Streaming-vs-batch equivalence: feeding a corpus document-by-document
//! through the streaming resolver must track the batch resolver's quality.
//!
//! Protocol per block: sample supervision from the ground truth (the same
//! labelled subset both paths see), resolve the whole block in batch, then
//! seed a streaming resolver with only the labelled documents and ingest
//! the rest one at a time. The streamed partition — reassembled in original
//! document order — is scored with B-Cubed F against the ground truth and
//! must come within a fixed tolerance of the batch score. The streamed
//! model is trained on the seed subset's block-local statistics (it has not
//! seen the unlabelled documents at fit time), so exact equality is not
//! expected; staying close is the point of the subsystem.

use proptest::prelude::*;

use weber::core::blocking::prepare_dataset;
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{generate, presets, CorpusConfig};
use weber::eval::bcubed;
use weber::graph::Partition;
use weber::stream::{SeedDocument, StreamConfig, StreamResolver};
use weber::textindex::TfIdf;

/// Mean B-Cubed F of both paths over a dataset's blocks:
/// `(batch, stream, blocks_compared)`.
fn stream_vs_batch(config: &CorpusConfig, fraction: f64, seed: u64) -> (f64, f64, usize) {
    let dataset = generate(config);
    let prepared = prepare_dataset(&dataset, TfIdf::default());
    let batch = Resolver::new(ResolverConfig::default()).unwrap();
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();

    let (mut batch_sum, mut stream_sum, mut compared) = (0.0, 0.0, 0usize);
    for (nb, raw) in prepared.blocks.iter().zip(&dataset.blocks) {
        let truth = &nb.truth;
        let sup = Supervision::sample_from_truth(truth, fraction, seed);
        if sup.len() < 2 || sup.len() == truth.len() {
            continue; // nothing to train on, or nothing left to stream
        }

        let resolution = batch.resolve(&nb.block, &sup).unwrap();
        let batch_f = bcubed(&resolution.partition, truth).f_measure();

        let seed_docs: Vec<usize> = sup.docs().to_vec();
        let batch_docs: Vec<SeedDocument> = seed_docs
            .iter()
            .map(|&d| SeedDocument {
                text: raw.documents[d].text.clone(),
                url: raw.documents[d].url.clone(),
                label: truth.label_of(d),
            })
            .collect();
        stream.seed(&raw.query_name, &batch_docs).unwrap();

        // Ingest every unlabelled document, one at a time, in order.
        let mut order = seed_docs.clone();
        for d in 0..truth.len() {
            if !seed_docs.contains(&d) {
                let doc = &raw.documents[d];
                stream
                    .ingest(&raw.query_name, &doc.text, doc.url.as_deref())
                    .unwrap();
                order.push(d);
            }
        }

        // Reassemble the streamed partition in original document order.
        let streamed = stream.partition(&raw.query_name).unwrap();
        let mut labels = vec![0u32; truth.len()];
        for (pos, &original) in order.iter().enumerate() {
            labels[original] = streamed.label_of(pos);
        }
        let stream_f = bcubed(&Partition::from_labels(labels), truth).f_measure();

        batch_sum += batch_f;
        stream_sum += stream_f;
        compared += 1;
    }
    (batch_sum, stream_sum, compared)
}

/// Fixed tolerance on the mean B-Cubed F gap between the two paths.
const TOLERANCE: f64 = 0.15;

fn assert_equivalent(config: &CorpusConfig, fraction: f64, seed: u64) {
    let (batch_sum, stream_sum, compared) = stream_vs_batch(config, fraction, seed);
    assert!(compared > 0, "no block had a usable training sample");
    let batch_mean = batch_sum / compared as f64;
    let stream_mean = stream_sum / compared as f64;
    assert!(
        stream_mean >= batch_mean - TOLERANCE,
        "streaming fell behind batch: stream {stream_mean:.4} vs batch {batch_mean:.4} \
         over {compared} blocks (tolerance {TOLERANCE})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn streaming_tracks_batch_on_tiny_corpora(seed in 1u64..1000) {
        assert_equivalent(&presets::tiny(seed), 0.3, seed);
    }
}

#[test]
fn streaming_tracks_batch_on_small_corpus() {
    assert_equivalent(&presets::small(77), 0.25, 77);
}

#[test]
fn streaming_handles_every_block_of_a_dataset() {
    // Coverage sanity: on a tiny corpus with generous supervision, every
    // block either trains or is skipped for a principled reason, and the
    // streamed state answers for each trained name.
    let dataset = generate(&presets::tiny(5));
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();
    let mut seeded = 0;
    for block in &dataset.blocks {
        let truth = block.truth();
        let docs: Vec<SeedDocument> = block
            .documents
            .iter()
            .zip(0..)
            .map(|(d, i)| SeedDocument {
                text: d.text.clone(),
                url: d.url.clone(),
                label: truth.label_of(i),
            })
            .collect();
        stream.seed(&block.query_name, &docs).unwrap();
        seeded += 1;
    }
    assert_eq!(seeded, dataset.blocks.len());
    assert_eq!(stream.snapshot().names.len(), dataset.blocks.len());
}
