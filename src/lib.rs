#![warn(missing_docs)]

//! # weber — Web Entity Resolution
//!
//! A reproduction of *"Towards better entity resolution techniques for Web
//! document collections"* (Yerva, Miklós, Aberer; ICDE 2010) as a Rust
//! workspace. This facade crate re-exports every subsystem:
//!
//! - [`textindex`] — tokenizer, Porter stemmer, TF-IDF document vectors
//!   (the Lucene substitute).
//! - [`extract`] — dictionary NER, concept tagging, URL features (the
//!   AlchemyAPI/GATE/OpenCalais/SemanticHacker substitute).
//! - [`simfun`] — string/set/vector similarity measures and the paper's
//!   similarity-function suite F1–F10 (Table I).
//! - [`graph`] — weighted pairwise graphs, decision graphs, transitive
//!   closure, correlation clustering, entity-graph invariants.
//! - [`ml`] — region partitioning of the similarity value space
//!   (equal-width / 1-D k-means), per-region accuracy estimation,
//!   threshold optimisation, train/test sampling.
//! - [`eval`] — purity/inverse-purity/Fp, pairwise P/R/F, Rand index,
//!   B-Cubed.
//! - [`corpus`] — synthetic web-people-search corpus generation
//!   (`www05_like`, `weps_like` presets) with ground truth.
//! - [`core`] — the entity-resolution framework tying it all together
//!   (Algorithm 1 of the paper).
//! - [`stream`] — streaming resolution: per-name decision models trained
//!   on seed batches, incremental ingestion, and the `weber serve` NDJSON
//!   daemon.
//! - [`entity`] — the canonical entity layer above partitioning: stable
//!   entity IDs that survive re-partitioning, reversible `SAME_AS` links,
//!   per-mention provenance, and declarative global constraints enforced
//!   at materialization (`entities`/`same_as`/`constraint` ops).
//! - [`shard`] — the sharded routing tier: a consistent-hash ring over
//!   many `weber serve` backends behind one `weber route` front end, with
//!   pooled connections, health probes, bounded retries and degraded-mode
//!   fan-out merges.
//! - [`block`] — the corpus-scale blocking tier: token blocking,
//!   meta-blocking (block graph + weight-edge pruning) and MinHash/LSH
//!   candidate generation over flat dirty corpora, behind the
//!   `weber block` subcommand.
//! - [`loadgen`] — the load generator behind `weber loadgen`: open/
//!   closed-loop NDJSON traffic with Zipf name skew over thousands of
//!   persistent connections, reporting latency percentiles.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the reproduced
//! tables/figures.

pub mod loadgen;

pub use weber_block as block;
pub use weber_core as core;
pub use weber_corpus as corpus;
pub use weber_entity as entity;
pub use weber_eval as eval;
pub use weber_extract as extract;
pub use weber_graph as graph;
pub use weber_ml as ml;
pub use weber_shard as shard;
pub use weber_simfun as simfun;
pub use weber_stream as stream;
pub use weber_textindex as textindex;
