//! Load generator for the NDJSON front ends (`weber serve` / `weber route`).
//!
//! One reactor thread drives every client connection through the same
//! non-blocking primitives the servers use ([`weber_net::Poller`],
//! [`weber_net::LineFramer`], [`weber_net::WriteBuffer`]), so a single
//! `weber loadgen` process can hold 10k+ persistent connections against
//! one front end — the scenario the event-loop servers exist for.
//!
//! Two arrival models:
//!
//! - **open loop** (`rate: Some(r)`): requests are released on a fixed
//!   schedule of `r` ops/s spread round-robin across the connections,
//!   regardless of how fast replies come back. Latency therefore includes
//!   any queueing delay the server builds up — the honest model for
//!   tail-latency claims (no coordinated omission).
//! - **closed loop** (`rate: None`): every connection keeps `pipeline`
//!   requests in flight and issues the next one the moment a reply lands,
//!   measuring the server's saturation throughput.
//!
//! Names are drawn Zipf(`zipf_s`)-skewed from a fixed universe that is
//! seeded through a setup connection before measurement starts; the op mix
//! is `ingest_weight : resolve_weight`. Latencies are recorded into
//! fine-grained [`weber_obs::Histogram`]s (one per op plus an overall one)
//! only after the warmup window, and the report quotes p50/p95/p99 via
//! [`weber_obs::HistogramSnapshot::quantile`].
//!
//! Per-connection reply ordering is guaranteed by the servers (see
//! `PROTOCOL.md`), so each connection's in-flight send timestamps form a
//! FIFO queue: reply `k` on a connection always answers request `k`, and a
//! `VecDeque<Instant>` per connection is enough to attribute latencies.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use serde::Serialize;
use weber_net::{raise_nofile_limit, Event, Interest, LineFramer, Poller, WriteBuffer};
use weber_obs::{Histogram, HistogramSnapshot};

/// Fine-grained latency bucket bounds (µs) for load-test percentiles:
/// 50µs to 10s with enough resolution that interpolated p99s are
/// meaningful, unlike the coarse server-side default bounds.
pub const LOADGEN_BOUNDS_US: &[u64] = &[
    50, 100, 150, 200, 300, 400, 500, 700, 1_000, 1_500, 2_000, 3_000, 4_000, 5_000, 7_500, 10_000,
    15_000, 20_000, 30_000, 50_000, 75_000, 100_000, 150_000, 250_000, 500_000, 750_000, 1_000_000,
    2_500_000, 5_000_000, 10_000_000,
];

/// Longest NDJSON reply line the client will buffer (metrics/snapshot
/// replies from large servers can run long).
const MAX_REPLY_LINE: usize = 4 * 1024 * 1024;

/// How long after the measurement deadline to wait for straggler replies.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// What the load generator should do.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Concurrent persistent connections to hold open.
    pub connections: usize,
    /// Measured window (excludes warmup).
    pub duration: Duration,
    /// Ramp-in window: traffic flows but latencies are not recorded.
    pub warmup: Duration,
    /// `Some(r)`: open-loop arrival at `r` ops/s total across all
    /// connections. `None`: closed loop (see [`LoadgenOptions::pipeline`]).
    pub rate: Option<u64>,
    /// Closed-loop in-flight requests per connection.
    pub pipeline: usize,
    /// Distinct names in the universe (seeded before measurement).
    pub names: usize,
    /// Zipf skew exponent for name popularity; 0 = uniform.
    pub zipf_s: f64,
    /// Relative weight of `ingest` in the op mix.
    pub ingest_weight: u32,
    /// Relative weight of `resolve` in the op mix.
    pub resolve_weight: u32,
    /// RNG seed — runs are deterministic per seed.
    pub seed: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            connections: 100,
            duration: Duration::from_secs(10),
            warmup: Duration::from_secs(1),
            rate: Some(1_000),
            pipeline: 1,
            names: 64,
            zipf_s: 1.0,
            ingest_weight: 8,
            resolve_weight: 2,
            seed: 1,
        }
    }
}

/// Latency summary for one op class, quoted in microseconds.
#[derive(Debug, Clone, Serialize)]
pub struct OpStats {
    /// Replies measured (post-warmup).
    pub count: u64,
    /// Mean latency.
    pub mean_us: f64,
    /// Median latency.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Slowest measured reply.
    pub max_us: u64,
}

impl OpStats {
    fn from_snapshot(s: &HistogramSnapshot) -> Self {
        Self {
            count: s.count,
            mean_us: s.mean(),
            p50_us: s.quantile(0.50),
            p95_us: s.quantile(0.95),
            p99_us: s.quantile(0.99),
            max_us: s.max,
        }
    }
}

/// Everything one load-generation run observed.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Connections actually held open.
    pub connections: usize,
    /// `"open"` or `"closed"`.
    pub mode: String,
    /// Open-loop target rate (ops/s); 0 in closed-loop mode.
    pub target_rate: u64,
    /// Closed-loop in-flight per connection.
    pub pipeline: usize,
    /// Name-universe size.
    pub names: usize,
    /// Zipf exponent used for name skew.
    pub zipf_s: f64,
    /// Warmup seconds (unmeasured).
    pub warmup_s: f64,
    /// Measured seconds.
    pub duration_s: f64,
    /// Requests written to sockets (warmup included).
    pub sent: u64,
    /// Replies received (warmup included).
    pub completed: u64,
    /// Replies measured (post-warmup only).
    pub measured: u64,
    /// Measured replies carrying an `"error"` field.
    pub errors: u64,
    /// Seed replies during setup that carried an `"error"` field.
    pub setup_errors: u64,
    /// Connections the server closed before the run finished.
    pub closed_early: u64,
    /// Requests still unanswered when the drain grace expired.
    pub unanswered: u64,
    /// Measured replies per second over the measured window.
    pub throughput_ops_s: f64,
    /// Latency over all measured ops.
    pub overall: OpStats,
    /// Latency for `ingest` ops.
    pub ingest: OpStats,
    /// Latency for `resolve` ops.
    pub resolve: OpStats,
}

/// Zipf-distributed index sampler over `0..n` via inverse-CDF lookup.
///
/// Index 0 is the most popular; popularity of index `k` is proportional to
/// `1/(k+1)^s`. `s = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the cumulative table for `n` indices with exponent `s`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf sampler needs a non-empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 1..=n {
            total += 1.0 / (k as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Draw one index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // First index whose cumulative probability covers u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Ingest,
    Resolve,
}

fn name_for(i: usize) -> String {
    format!("load{i:05}")
}

fn seed_line(name: &str) -> String {
    format!(
        concat!(
            r#"{{"op":"seed","name":"{}","docs":["#,
            r#"{{"text":"databases are fun and databases are important","label":0}},"#,
            r#"{{"text":"databases are hard but databases pay well","label":0}},"#,
            r#"{{"text":"gardening tips for growing roses","label":1}},"#,
            r#"{{"text":"gardening advice on pruning roses","label":1}}]}}"#
        ),
        name
    )
}

fn request_line(op: Op, name: &str, k: u64) -> String {
    match op {
        Op::Ingest => format!(
            r#"{{"op":"ingest","name":"{name}","text":"databases and gardening field note {k}"}}"#
        ),
        Op::Resolve => format!(r#"{{"op":"resolve","name":"{name}"}}"#),
    }
}

/// Seed the whole name universe through one pipelined setup connection.
/// Replies carrying `"error"` are counted, not fatal — a name may already
/// be seeded from a previous run against the same server.
fn seed_names(addr: &str, names: usize) -> io::Result<u64> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut errors = 0u64;
    const BATCH: usize = 64;
    let mut i = 0;
    while i < names {
        let n = BATCH.min(names - i);
        let mut batch = String::new();
        for j in i..i + n {
            batch.push_str(&seed_line(&name_for(j)));
            batch.push('\n');
        }
        writer.write_all(batch.as_bytes())?;
        let mut reply = String::new();
        for _ in 0..n {
            reply.clear();
            if reader.read_line(&mut reply)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the seed connection",
                ));
            }
            if reply.contains("\"error\"") {
                errors += 1;
            }
        }
        i += n;
    }
    Ok(errors)
}

struct ClientConn {
    stream: TcpStream,
    framer: LineFramer,
    out: WriteBuffer,
    /// Send-time + op for each in-flight request, FIFO (the servers
    /// guarantee per-connection reply ordering).
    pending: VecDeque<(Instant, Op)>,
    writable_interest: bool,
    closed: bool,
}

impl ClientConn {
    fn connect(addr: &str) -> io::Result<Self> {
        // Blocking connect (localhost handshakes are microseconds), then
        // flip to non-blocking for the reactor.
        let mut last_err = None;
        for _ in 0..50 {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_nonblocking(true)?;
                    return Ok(Self {
                        stream,
                        framer: LineFramer::new(MAX_REPLY_LINE),
                        out: WriteBuffer::new(),
                        pending: VecDeque::new(),
                        writable_interest: false,
                        closed: true, // flipped to false once registered
                    });
                }
                Err(e) => {
                    // Listen backlogs and ephemeral-port churn produce
                    // transient refusals under mass connect; back off.
                    last_err = Some(e);
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        Err(last_err.expect("retry loop always records an error"))
    }
}

struct Engine<'a> {
    opts: &'a LoadgenOptions,
    conns: Vec<ClientConn>,
    poller: Poller,
    rng: StdRng,
    zipf: ZipfSampler,
    sent: u64,
    completed: u64,
    measured: u64,
    errors: u64,
    closed_early: u64,
    ingest_hist: Histogram,
    resolve_hist: Histogram,
    overall_hist: Histogram,
}

impl Engine<'_> {
    fn pick_op(&mut self) -> Op {
        let total = self.opts.ingest_weight + self.opts.resolve_weight;
        if total == 0 || self.rng.random_range(0..total) < self.opts.ingest_weight {
            Op::Ingest
        } else {
            Op::Resolve
        }
    }

    /// Queue one request on connection `idx` and push it toward the socket.
    fn enqueue(&mut self, idx: usize) {
        let op = self.pick_op();
        let name_idx = self.zipf.sample(&mut self.rng);
        let line = request_line(op, &name_for(name_idx), self.sent);
        let conn = &mut self.conns[idx];
        conn.out.push_line(&line);
        conn.pending.push_back((Instant::now(), op));
        self.sent += 1;
        self.flush(idx);
    }

    fn flush(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.closed {
            return;
        }
        match conn.out.try_flush(&mut conn.stream) {
            Ok(_) => {}
            Err(_) => {
                self.close(idx);
                return;
            }
        }
        self.update_interest(idx);
    }

    fn update_interest(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.closed {
            return;
        }
        let want_writable = !conn.out.is_empty();
        if want_writable != conn.writable_interest {
            let interest = Interest {
                readable: true,
                writable: want_writable,
            };
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), idx as u64, interest)
                .is_err()
            {
                self.close(idx);
                return;
            }
            self.conns[idx].writable_interest = want_writable;
        }
    }

    fn close(&mut self, idx: usize) {
        let conn = &mut self.conns[idx];
        if conn.closed {
            return;
        }
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        conn.closed = true;
        self.closed_early += 1;
    }

    /// Drain readable bytes and account completed replies. Returns the
    /// number of replies completed in this call.
    fn read_replies(&mut self, idx: usize, warmup_end: Instant) -> usize {
        let mut buf = [0u8; 16 * 1024];
        let mut done = 0;
        loop {
            let conn = &mut self.conns[idx];
            if conn.closed {
                return done;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    self.close(idx);
                    return done;
                }
                Ok(n) => conn.framer.push(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return done;
                }
            }
        }
        loop {
            let conn = &mut self.conns[idx];
            let Some(line) = conn.framer.next_line() else {
                break;
            };
            let Some((sent_at, op)) = conn.pending.pop_front() else {
                // A reply with no matching request (server violation);
                // count it as an error and move on.
                self.errors += 1;
                continue;
            };
            let now = Instant::now();
            self.completed += 1;
            done += 1;
            if now >= warmup_end {
                self.measured += 1;
                let us = u64::try_from(now.duration_since(sent_at).as_micros()).unwrap_or(u64::MAX);
                self.overall_hist.record(us);
                match op {
                    Op::Ingest => self.ingest_hist.record(us),
                    Op::Resolve => self.resolve_hist.record(us),
                }
                if line.windows(8).any(|w| w == b"\"error\"") {
                    self.errors += 1;
                }
            }
        }
        done
    }

    fn in_flight(&self) -> u64 {
        self.conns.iter().map(|c| c.pending.len() as u64).sum()
    }
}

/// Run one load-generation pass against `addr` and report what happened.
///
/// Seeds the name universe, opens `connections` persistent sockets, drives
/// the configured arrival process until `warmup + duration` has elapsed,
/// drains stragglers, and summarises latencies from the post-warmup window.
pub fn run(addr: &str, opts: &LoadgenOptions) -> io::Result<LoadgenReport> {
    assert!(opts.connections > 0, "need at least one connection");
    assert!(opts.pipeline > 0, "closed loop needs pipeline >= 1");
    let _ = raise_nofile_limit();

    let setup_errors = seed_names(addr, opts.names)?;

    let mut engine = Engine {
        opts,
        conns: Vec::with_capacity(opts.connections),
        poller: Poller::new(opts.connections.clamp(64, 4096))?,
        rng: StdRng::seed_from_u64(opts.seed),
        zipf: ZipfSampler::new(opts.names, opts.zipf_s),
        sent: 0,
        completed: 0,
        measured: 0,
        errors: 0,
        closed_early: 0,
        ingest_hist: Histogram::with_bounds(LOADGEN_BOUNDS_US),
        resolve_hist: Histogram::with_bounds(LOADGEN_BOUNDS_US),
        overall_hist: Histogram::with_bounds(LOADGEN_BOUNDS_US),
    };

    for i in 0..opts.connections {
        let conn = ClientConn::connect(addr)?;
        engine
            .poller
            .add(conn.stream.as_raw_fd(), i as u64, Interest::READ)?;
        engine.conns.push(conn);
        engine.conns[i].closed = false;
    }

    let start = Instant::now();
    let warmup_end = start + opts.warmup;
    let deadline = warmup_end + opts.duration;

    // Open loop: fixed arrival schedule. Closed loop: prime the windows.
    let interval = opts
        .rate
        .map(|r| Duration::from_nanos(1_000_000_000 / r.max(1)));
    let mut next_send = start;
    let mut cursor = 0usize; // round-robin connection cursor
    if interval.is_none() {
        for i in 0..engine.conns.len() {
            for _ in 0..opts.pipeline {
                engine.enqueue(i);
            }
        }
    }

    let mut events: Vec<Event> = Vec::new();
    loop {
        let now = Instant::now();
        if now >= deadline && engine.in_flight() == 0 {
            break;
        }
        if now >= deadline + DRAIN_GRACE {
            break;
        }

        let timeout = match interval {
            Some(_) if now < deadline => next_send
                .saturating_duration_since(now)
                .min(Duration::from_millis(50)),
            _ => Duration::from_millis(50),
        };
        engine.poller.wait(&mut events, Some(timeout))?;

        for ev in std::mem::take(&mut events) {
            let idx = ev.token as usize;
            if idx >= engine.conns.len() || engine.conns[idx].closed {
                continue;
            }
            if ev.readable || ev.hangup {
                let done = engine.read_replies(idx, warmup_end);
                // Closed loop: refill the window as replies land.
                if interval.is_none() && Instant::now() < deadline {
                    for _ in 0..done {
                        if !engine.conns[idx].closed {
                            engine.enqueue(idx);
                        }
                    }
                }
            }
            if ev.hangup
                && !engine.conns[idx].closed
                && engine.conns[idx].framer.pending_bytes() == 0
            {
                engine.close(idx);
            }
            if ev.writable {
                engine.flush(idx);
            }
        }

        // Open loop: release everything the schedule owes us.
        if let Some(step) = interval {
            let now = Instant::now();
            while next_send <= now {
                if now >= deadline {
                    break;
                }
                // Skip closed connections; give up if all are gone.
                let mut tries = 0;
                while engine.conns[cursor].closed && tries < engine.conns.len() {
                    cursor = (cursor + 1) % engine.conns.len();
                    tries += 1;
                }
                if engine.conns[cursor].closed {
                    break;
                }
                engine.enqueue(cursor);
                cursor = (cursor + 1) % engine.conns.len();
                next_send += step;
            }
        }
    }

    let unanswered = engine.in_flight();
    let measured_window = opts.duration.as_secs_f64();
    let overall = engine.overall_hist.snapshot("overall");
    let report = LoadgenReport {
        connections: opts.connections,
        mode: if interval.is_some() { "open" } else { "closed" }.to_string(),
        target_rate: opts.rate.unwrap_or(0),
        pipeline: opts.pipeline,
        names: opts.names,
        zipf_s: opts.zipf_s,
        warmup_s: opts.warmup.as_secs_f64(),
        duration_s: measured_window,
        sent: engine.sent,
        completed: engine.completed,
        measured: engine.measured,
        errors: engine.errors,
        setup_errors,
        closed_early: engine.closed_early,
        unanswered,
        throughput_ops_s: if measured_window > 0.0 {
            engine.measured as f64 / measured_window
        } else {
            0.0
        },
        overall: OpStats::from_snapshot(&overall),
        ingest: OpStats::from_snapshot(&engine.ingest_hist.snapshot("ingest")),
        resolve: OpStats::from_snapshot(&engine.resolve_hist.snapshot("resolve")),
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_skews_toward_low_indices() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 100];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] && counts[0] > counts[99]);
        // Harmonic(100) ≈ 5.19, so index 0 should take ~19% of the mass.
        assert!(counts[0] > 1_000, "index 0 drew only {}", counts[0]);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "index {i} drew {c}");
        }
    }

    #[test]
    fn request_lines_are_valid_json() {
        for op in [Op::Ingest, Op::Resolve] {
            let line = request_line(op, &name_for(3), 9);
            serde_json::parse_value(&line).expect("request line parses");
        }
        serde_json::parse_value(&seed_line("load00000")).expect("seed line parses");
    }

    #[test]
    fn op_stats_quote_quantiles_from_the_histogram() {
        let h = Histogram::with_bounds(LOADGEN_BOUNDS_US);
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(9_000);
        }
        let stats = OpStats::from_snapshot(&h.snapshot("t"));
        assert_eq!(stats.count, 100);
        assert!(stats.p50_us <= 150.0);
        assert!(stats.p99_us > 150.0, "p99 = {}", stats.p99_us);
        assert_eq!(stats.max_us, 9_000);
    }
}
