//! `weber` — command-line front end for the entity-resolution library.
//!
//! ```text
//! weber generate --preset www05|weps|small|constrained-small|tiny|
//!                dirty|dirty-small [--seed N] --out FILE
//! weber stats    --dataset FILE
//! weber resolve  --dataset FILE [--train FRAC] [--seed N] [--out FILE]
//! weber experiment --dataset FILE [--train FRAC] [--runs N]
//! weber block    (--corpus FILE | --preset dirty|dirty-small [--seed N])
//!                [--strategy token|meta|lsh] [--out FILE] [--min-df N]
//!                [--max-df FRAC] [--weight cbs|js] [--prune-factor F]
//!                [--hashes N] [--bands N] [--lsh-threshold F] [--threads N]
//!                [--metrics-file FILE]
//! weber serve    [--listen ADDR] [--workers N] [--queue N] [--dataset FILE]
//!                [--max-connections N] [--io event|threads]
//!                [--idle-timeout SECS] [--max-pipeline N]
//!                [--state-dir DIR] [--max-names N]
//!                [--metrics-file FILE] [--metrics-interval SECS]
//! weber route    --backends ADDR,ADDR,... [--listen ADDR] [--replication R]
//!                [--vnodes N] [--retries N] [--pool N]
//!                [--probe-interval SECS] [--max-connections N]
//!                [--workers N] [--queue N] [--io event|threads]
//!                [--idle-timeout SECS] [--max-pipeline N]
//! weber loadgen  --connect ADDR [--connections N] [--duration SECS]
//!                [--warmup SECS] [--mode open|closed] [--rate OPS]
//!                [--pipeline N] [--names N] [--zipf S] [--ingest-weight W]
//!                [--resolve-weight W] [--seed N] [--out FILE]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use weber::block::{Blocker, BlockingConfig, DocRecord, LshConfig, Strategy, WeightScheme};
use weber::core::blocking::prepare_dataset;
use weber::core::experiment::{run_experiment, ExperimentConfig};
use weber::core::resolver::{Resolver, ResolverConfig};
use weber::core::supervision::Supervision;
use weber::corpus::{
    dirty, dirty_small, generate, generate_dirty, presets, CorpusConfig, Dataset, DirtyConfig,
    DirtyCorpus,
};
use weber::eval::MetricSet;
use weber::shard::{
    route_stdio, route_tcp_with, spawn_prober, FrontOptions, Router, RouterOptions,
};
use weber::simfun::functions::subset_i10;
use weber::stream::{serve_stdio, serve_tcp, IoMode, StreamConfig, StreamResolver, TcpOptions};
use weber::textindex::TfIdf;

const USAGE: &str = "\
weber — entity resolution for web document collections

USAGE:
  weber generate  --preset <www05|weps|small|constrained-small|tiny
                  |dirty|dirty-small> [--seed N] --out FILE
  weber stats     --dataset FILE
  weber resolve   --dataset FILE [--train FRAC] [--seed N] [--out FILE]
  weber experiment --dataset FILE [--train FRAC] [--runs N]
  weber block     (--corpus FILE | --preset dirty|dirty-small [--seed N])
                  [--strategy token|meta|lsh] [--out FILE] [--min-df N]
                  [--max-df FRAC] [--weight cbs|js] [--prune-factor F]
                  [--hashes N] [--bands N] [--lsh-threshold F] [--threads N]
                  [--metrics-file FILE]
  weber serve     [--listen ADDR] [--workers N] [--queue N] [--dataset FILE]
                  [--max-connections N] [--io event|threads]
                  [--idle-timeout SECS] [--max-pipeline N]
                  [--state-dir DIR] [--max-names N]
                  [--metrics-file FILE] [--metrics-interval SECS]
  weber route     --backends ADDR,ADDR,... [--listen ADDR] [--replication R]
                  [--vnodes N] [--retries N] [--pool N]
                  [--probe-interval SECS] [--max-connections N]
                  [--workers N] [--queue N] [--io event|threads]
                  [--idle-timeout SECS] [--max-pipeline N]
  weber loadgen   --connect ADDR [--connections N] [--duration SECS]
                  [--warmup SECS] [--mode open|closed] [--rate OPS]
                  [--pipeline N] [--names N] [--zipf S] [--ingest-weight W]
                  [--resolve-weight W] [--seed N] [--out FILE]
  weber --version | --help

The resolve/experiment commands use the paper's full technique (functions
F1–F10, threshold + region-accuracy criteria, best-graph combination,
transitive closure).

The dirty / dirty-small presets generate a *flat* shuffled web corpus
(documents about all names in one pile, a fraction of surname mentions
misspelled) with global entity ground truth — the input of weber block.

The block command turns such a corpus into candidate blocks: token
blocking over normalized text+URL terms (--strategy token), meta-blocking
over the block graph with CBS or Jaccard edge weights pruned at
--prune-factor × the mean weight (--strategy meta, the default), or
MinHash/LSH banding (--strategy lsh, tuned by --hashes, --bands and the
verification --lsh-threshold). It writes NDJSON to --out (default
stdout): one {\"block\":K,\"docs\":[...]} line per candidate block, then
one {\"summary\":{...}} line with pair/recall accounting; --metrics-file
dumps the stage counters and latency histograms as text.

The serve command runs a streaming resolution daemon speaking NDJSON, one
request per line, over stdin/stdout (default) or a TCP socket (--listen).
Seed a name with a labelled batch, then ingest documents one at a time;
resolve reads back one name's current summary:
  {\"op\":\"seed\",\"name\":\"cohen\",\"docs\":[{\"text\":\"…\",\"label\":0},…]}
  {\"op\":\"ingest\",\"name\":\"cohen\",\"text\":\"…\"}
  {\"op\":\"resolve\",\"name\":\"cohen\"}
Above the partition sits the canonical entity layer (see PROTOCOL.md):
{\"op\":\"entities\",\"name\":...} materializes stable-ID entities with
per-mention provenance, {\"op\":\"same_as\",...} asserts or retracts
reversible merge links, and {\"op\":\"constraint\",...} adds global
cannot-link / one-to-one / type rules enforced at materialization.
--dataset seeds the gazetteer from a generated corpus file; --workers and
--queue size the worker pool and per-worker admission queue. With --listen
the daemon serves clients concurrently, up to --max-connections at once
(default 64). By default one epoll reactor thread multiplexes every
connection (--io event), which holds 10k+ mostly-idle persistent
connections; --io threads restores the thread-per-connection model.
--idle-timeout SECS evicts silent connections (0 = never, the default);
--max-pipeline N caps in-flight pipelined requests per connection
(default 256) — past it the reactor stops reading that socket until
replies drain. --state-dir DIR persists per-name state: existing records
are restored at startup, the whole state is written back at shutdown, and
the protocol gains explicit persist/restore ops. --max-names N (requires
--state-dir) bounds live names, evicting the least-recently-touched to
disk and restoring it transparently on its next touch. The daemon keeps
counters, gauges and latency histograms (ingest latency, queue depth,
similarity-cache hits/misses, evictions, retrains); read them over the
wire with {\"op\":\"metrics\"} or dump them periodically as text with
--metrics-file FILE (every --metrics-interval seconds, default 10; a
final dump is written at shutdown).

The route command runs a sharded routing tier over several serve
backends: it speaks the same NDJSON protocol and consistent-hashes each
request's name onto the backend ring, so a client cannot tell it from a
single (much larger) daemon. With --replication R (default 1) every name
lives on the R distinct backends clockwise from its ring position:
writes (seed/ingest/same_as/constraint) fan out to all R — a replica
that misses a write gets the line buffered and replayed when it
recovers — and the per-name reads ({\"op\":\"resolve\",\"name\":...},
{\"op\":\"entities\",\"name\":...}) fail over across the set, so any
R-1 dead backends leave every name readable. Per-name ops use bounded
retries (--retries, default 2) over an asynchronous outbound pool: one
epoll reactor multiplexes every pooled backend socket (--pool per
backend, default 2), so a stalled backend ties up zero router threads —
its exchanges time out and answer \"unreachable\" while healthy shards
keep serving; snapshot, name-less entities, metrics, persist, restore,
flush and shutdown fan out to every backend and merge, degrading (\"degraded\":true plus the
unreachable shard list) instead of failing when backends are down.
--vnodes N (default 64) sets the ring's virtual nodes per backend (the
old --replicas alias is gone — it never set the replication factor).
{\"op\":\"health\"} reports the router's own probe-driven view of the
tier; {\"op\":\"topology\",\"backends\":[...]} re-shards at runtime,
persisting the old ring first so names migrate through a shared
--state-dir. Backends are probed every --probe-interval seconds
(default 1) with exponential backoff while down. The front end takes the
same --io / --idle-timeout / --max-pipeline / --workers / --queue
tuning as serve.

The loadgen command drives either front end with NDJSON traffic from one
reactor thread holding --connections persistent sockets (default 100):
--mode open (default) releases --rate ops/s on a fixed schedule so
latency includes queueing delay; --mode closed keeps --pipeline requests
in flight per connection and measures saturation throughput. Requests
draw names Zipf(--zipf)-skewed from --names seeded names with an
--ingest-weight : --resolve-weight op mix, and the JSON report (stdout
or --out) quotes throughput plus p50/p95/p99 latency measured after
--warmup seconds.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Parse `--key value` flags after the subcommand.
fn flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("unexpected argument '{key}'"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn parse<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value '{v}' for --{name}")),
    }
}

fn load_dataset(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = flags
        .get("dataset")
        .ok_or("missing required flag --dataset")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Dataset::from_json(&json).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("no command given".into());
    };
    let flags = flags(&args[1..])?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "stats" => cmd_stats(&flags),
        "resolve" => cmd_resolve(&flags),
        "experiment" => cmd_experiment(&flags),
        "block" => cmd_block(&flags),
        "serve" => cmd_serve(&flags),
        "route" => cmd_route(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        "version" | "--version" | "-V" => {
            println!("weber {}", env!("CARGO_PKG_VERSION"));
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn preset_by_name(name: &str, seed: u64) -> Result<CorpusConfig, String> {
    match name {
        "www05" => Ok(presets::www05_like(seed)),
        "weps" => Ok(presets::weps_like(seed)),
        "small" => Ok(presets::small(seed)),
        "constrained-small" => Ok(presets::constrained_small(seed)),
        "tiny" => Ok(presets::tiny(seed)),
        other => Err(format!("unknown preset '{other}'")),
    }
}

fn dirty_preset_by_name(name: &str, seed: u64) -> Option<DirtyConfig> {
    match name {
        "dirty" => Some(dirty(seed)),
        "dirty-small" => Some(dirty_small(seed)),
        _ => None,
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let preset = flags
        .get("preset")
        .ok_or("missing required flag --preset")?;
    let seed: u64 = parse(flags, "seed", 0)?;
    let out = flags.get("out").ok_or("missing required flag --out")?;
    if let Some(config) = dirty_preset_by_name(preset, seed) {
        let corpus = generate_dirty(&config);
        let json = corpus.to_json().map_err(|e| e.to_string())?;
        std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!(
            "wrote '{}' dirty corpus: {} documents, {} entities, {} bytes -> {}",
            corpus.label,
            corpus.len(),
            corpus.entities,
            json.len(),
            out
        );
        return Ok(());
    }
    let dataset = generate(&preset_by_name(preset, seed)?);
    let json = dataset.to_json().map_err(|e| e.to_string())?;
    std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote '{}' corpus: {} names, {} documents, {} bytes -> {}",
        dataset.label,
        dataset.blocks.len(),
        dataset.document_count(),
        json.len(),
        out
    );
    Ok(())
}

fn cmd_block(flags: &HashMap<String, String>) -> Result<(), String> {
    let corpus = match (flags.get("corpus"), flags.get("preset")) {
        (Some(_), Some(_)) => return Err("--corpus and --preset are mutually exclusive".into()),
        (Some(path), None) => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            DirtyCorpus::from_json(&json).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
        (None, Some(preset)) => {
            let seed: u64 = parse(flags, "seed", 0)?;
            let config = dirty_preset_by_name(preset, seed)
                .ok_or_else(|| format!("unknown dirty preset '{preset}' (dirty|dirty-small)"))?;
            generate_dirty(&config)
        }
        (None, None) => return Err("missing required flag --corpus or --preset".into()),
    };

    let strategy: Strategy = parse(flags, "strategy", Strategy::Meta)?;
    let weight: WeightScheme = parse(flags, "weight", WeightScheme::Cbs)?;
    let config = BlockingConfig {
        strategy,
        min_df: parse(flags, "min-df", 2)?,
        max_df_frac: parse(flags, "max-df", 0.2)?,
        weight,
        prune_factor: parse(
            flags,
            "prune-factor",
            BlockingConfig::default().prune_factor,
        )?,
        lsh: LshConfig {
            hashes: parse(flags, "hashes", LshConfig::default().hashes)?,
            bands: parse(flags, "bands", LshConfig::default().bands)?,
            threshold: parse(flags, "lsh-threshold", LshConfig::default().threshold)?,
            ..LshConfig::default()
        },
        threads: parse(flags, "threads", 0)?,
    };

    let blocker = Blocker::new(config);
    let docs: Vec<DocRecord> = corpus
        .documents
        .iter()
        .map(|d| DocRecord {
            text: &d.text,
            url: d.url.as_deref(),
        })
        .collect();
    let outcome = blocker.block(&docs);
    let recall = outcome.pair_recall(&corpus.truth_pairs());

    let mut ndjson = String::new();
    for (k, members) in outcome.blocks.iter().enumerate() {
        ndjson.push_str(&format!(
            "{{\"block\":{k},\"docs\":{}}}\n",
            format_u32_list(members)
        ));
    }
    let stats = &outcome.stats;
    ndjson.push_str(&format!(
        "{{\"summary\":{{\"strategy\":\"{}\",\"docs\":{},\"token_blocks\":{},\
         \"blocks\":{},\"candidate_pairs\":{},\"brute_force_pairs\":{},\
         \"comparison_frac\":{:.6},\"pair_recall\":{:.6}}}}}\n",
        outcome.strategy.name(),
        stats.docs,
        stats.token_blocks,
        stats.blocks_built,
        stats.candidate_pairs,
        stats.brute_force_pairs,
        stats.comparison_frac(),
        recall,
    ));
    match flags.get("out") {
        Some(out) => {
            std::fs::write(out, &ndjson).map_err(|e| format!("cannot write {out}: {e}"))?
        }
        None => print!("{ndjson}"),
    }
    if let Some(path) = flags.get("metrics-file") {
        std::fs::write(path, blocker.metrics().render_text())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    eprintln!(
        "blocked '{}' with {}: {} docs -> {} blocks, {} candidate pairs \
         ({:.1}% of brute force), pair recall {:.4}",
        corpus.label,
        outcome.strategy.name(),
        stats.docs,
        stats.blocks_built,
        stats.candidate_pairs,
        stats.comparison_frac() * 100.0,
        recall,
    );
    Ok(())
}

fn format_u32_list(values: &[u32]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let stats = weber::corpus::DatasetStats::compute(&dataset);
    println!(
        "dataset '{}' (seed {}): {} names, {} documents, gazetteer {} entries",
        dataset.label,
        dataset.seed,
        stats.blocks.len(),
        stats.document_count(),
        dataset.gazetteer.len(),
    );
    for b in &stats.blocks {
        println!(
            "  {:12} {:4} docs  {:3} entities (largest {:3})  {:3.0}% with URL  {:3}-{:3} words",
            b.query_name,
            b.documents,
            b.entities,
            b.dominant_size,
            b.url_rate * 100.0,
            b.doc_len.0,
            b.doc_len.2,
        );
    }
    println!(
        "means: {:.1} entities per name, {:.0}% URL coverage",
        stats.mean_entities(),
        stats.mean_url_rate() * 100.0
    );
    Ok(())
}

fn cmd_resolve(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let train: f64 = parse(flags, "train", 0.1)?;
    if !(0.0..=1.0).contains(&train) {
        return Err(format!("--train must be in [0, 1], got {train}"));
    }
    let seed: u64 = parse(flags, "seed", 1)?;
    let prepared = prepare_dataset(&dataset, TfIdf::default());
    let resolver = Resolver::new(ResolverConfig::default()).map_err(|e| e.to_string())?;
    let mut output: Vec<(String, Vec<u32>)> = Vec::new();
    println!(
        "resolving with {:.0}% supervision (seed {seed})",
        train * 100.0
    );
    for nb in &prepared.blocks {
        let sup = Supervision::sample_from_truth(&nb.truth, train, seed);
        let r = resolver
            .resolve(&nb.block, &sup)
            .map_err(|e| e.to_string())?;
        let m = MetricSet::evaluate(&r.partition, &nb.truth);
        println!(
            "  {:12} {:3} entities (truth {:3})  Fp {:.4}  F {:.4}  Rand {:.4}",
            nb.block.query_name(),
            r.partition.cluster_count(),
            nb.truth.cluster_count(),
            m.fp,
            m.f,
            m.rand,
        );
        output.push((
            nb.block.query_name().to_string(),
            r.partition.labels().to_vec(),
        ));
    }
    if let Some(out) = flags.get("out") {
        let json = serde_json_out(&output);
        std::fs::write(out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("wrote resolution labels to {out}");
    }
    Ok(())
}

/// Hand-rolled JSON for the label map (avoids a serde derive on CLI-only
/// output types).
fn serde_json_out(blocks: &[(String, Vec<u32>)]) -> String {
    let mut s = String::from("{\n");
    for (i, (name, labels)) in blocks.iter().enumerate() {
        s.push_str(&format!(
            "  \"{name}\": {:?}{}\n",
            labels,
            if i + 1 < blocks.len() { "," } else { "" }
        ));
    }
    s.push('}');
    s
}

fn cmd_experiment(flags: &HashMap<String, String>) -> Result<(), String> {
    let dataset = load_dataset(flags)?;
    let train: f64 = parse(flags, "train", 0.1)?;
    if !(0.0..=1.0).contains(&train) {
        return Err(format!("--train must be in [0, 1], got {train}"));
    }
    let runs: u64 = parse(flags, "runs", 5)?;
    let prepared = prepare_dataset(&dataset, TfIdf::default());
    let protocol = ExperimentConfig {
        train_fraction: train,
        runs,
        base_seed: 1,
    };
    println!(
        "protocol: {:.0}% training, {} runs averaged",
        train * 100.0,
        runs
    );
    for (label, cfg) in [
        (
            "I10 (threshold only)",
            ResolverConfig::threshold_suite(subset_i10()),
        ),
        (
            "C10 (region accuracy)",
            ResolverConfig::accuracy_suite(subset_i10()),
        ),
        (
            "W (weighted average)",
            ResolverConfig::weighted_average(subset_i10()),
        ),
    ] {
        let out = run_experiment(&prepared, &cfg, &protocol).map_err(|e| e.to_string())?;
        println!(
            "  {:22} Fp {:.4}  F {:.4}  Rand {:.4}",
            label, out.mean.fp, out.mean.f, out.mean.rand
        );
    }
    Ok(())
}

/// Parse the shared front-end tuning flags: `--io`, `--idle-timeout`
/// (seconds, 0 = never) and `--max-pipeline`.
fn front_tuning(
    flags: &HashMap<String, String>,
) -> Result<(IoMode, Option<std::time::Duration>, usize), String> {
    let io: IoMode = match flags.get("io") {
        None => IoMode::Event,
        Some(v) => v.parse()?,
    };
    let idle_secs: u64 = parse(flags, "idle-timeout", 0)?;
    let idle_timeout = (idle_secs > 0).then(|| std::time::Duration::from_secs(idle_secs));
    let max_pipeline: usize = parse(flags, "max-pipeline", 256)?;
    if max_pipeline == 0 {
        return Err("--max-pipeline must be at least 1".into());
    }
    Ok((io, idle_timeout, max_pipeline))
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let workers: usize = parse(flags, "workers", 2)?;
    let queue: usize = parse(flags, "queue", 64)?;
    let max_connections: usize = parse(flags, "max-connections", 64)?;
    let (io, idle_timeout, max_pipeline) = front_tuning(flags)?;
    let gazetteer = match flags.get("dataset") {
        Some(_) => load_dataset(flags)?.gazetteer,
        None => weber::extract::gazetteer::Gazetteer::new(),
    };
    let mut config = StreamConfig::default()
        .with_workers(workers)
        .with_queue_capacity(queue);
    if let Some(dir) = flags.get("state-dir") {
        config = config.with_state_dir(dir);
    }
    if flags.contains_key("max-names") {
        config = config.with_max_names(parse(flags, "max-names", 1024)?);
    }
    let resolver =
        std::sync::Arc::new(StreamResolver::new(config, &gazetteer).map_err(|e| e.to_string())?);
    if let Some(dir) = flags.get("state-dir") {
        let restored = resolver.restore_all().map_err(|e| e.to_string())?;
        if restored > 0 {
            eprintln!("restored {restored} names from {dir}");
        }
    }
    let dumper = match flags.get("metrics-file") {
        Some(path) => {
            let interval: u64 = parse(flags, "metrics-interval", 10)?;
            if interval == 0 {
                return Err("--metrics-interval must be at least 1 second".into());
            }
            Some(spawn_metrics_dumper(
                resolver.clone(),
                path.clone(),
                std::time::Duration::from_secs(interval),
            ))
        }
        None => None,
    };
    let admitted = match flags.get("listen") {
        Some(addr) => {
            eprintln!(
                "serving NDJSON on {addr} ({workers} workers, queue {queue}, \
                 up to {max_connections} connections)"
            );
            let options = TcpOptions {
                workers,
                queue_capacity: queue,
                max_connections,
                io,
                idle_timeout,
                max_pipeline,
            };
            serve_tcp(resolver.clone(), addr, &options).map_err(|e| e.to_string())?
        }
        None => {
            eprintln!("serving NDJSON on stdin/stdout ({workers} workers, queue {queue})");
            serve_stdio(resolver.clone(), workers, queue).map_err(|e| e.to_string())?
        }
    };
    if let Some(dir) = flags.get("state-dir") {
        let written = resolver.persist_all().map_err(|e| e.to_string())?;
        eprintln!("persisted {written} names to {dir}");
    }
    if let Some((stop, handle, path)) = dumper {
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        let _ = handle.join();
        // One final dump so the file reflects the complete run.
        if let Err(e) = dump_metrics(&resolver, &path) {
            eprintln!("warning: final metrics dump failed: {e}");
        } else {
            eprintln!("wrote metrics to {path}");
        }
    }
    eprintln!("served {admitted} requests");
    Ok(())
}

fn cmd_loadgen(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = flags
        .get("connect")
        .ok_or("missing required flag --connect")?;
    let mode = flags.get("mode").map(String::as_str).unwrap_or("open");
    let rate = match mode {
        "open" => Some(parse(flags, "rate", 1_000u64)?),
        "closed" => None,
        other => {
            return Err(format!(
                "invalid --mode '{other}' (expected open or closed)"
            ))
        }
    };
    let opts = weber::loadgen::LoadgenOptions {
        connections: parse(flags, "connections", 100)?,
        duration: std::time::Duration::from_secs(parse(flags, "duration", 10)?),
        warmup: std::time::Duration::from_secs(parse(flags, "warmup", 1)?),
        rate,
        pipeline: parse(flags, "pipeline", 1)?,
        names: parse(flags, "names", 64)?,
        zipf_s: parse(flags, "zipf", 1.0)?,
        ingest_weight: parse(flags, "ingest-weight", 8)?,
        resolve_weight: parse(flags, "resolve-weight", 2)?,
        seed: parse(flags, "seed", 1)?,
    };
    if opts.connections == 0 {
        return Err("--connections must be at least 1".into());
    }
    if opts.pipeline == 0 {
        return Err("--pipeline must be at least 1".into());
    }
    match &rate {
        Some(r) => eprintln!(
            "loadgen: {} connections against {addr}, open loop at {r} ops/s, \
             {} names (zipf {}), {}s warmup + {}s measured",
            opts.connections,
            opts.names,
            opts.zipf_s,
            opts.warmup.as_secs(),
            opts.duration.as_secs()
        ),
        None => eprintln!(
            "loadgen: {} connections against {addr}, closed loop ({} in flight each), \
             {} names (zipf {}), {}s warmup + {}s measured",
            opts.connections,
            opts.pipeline,
            opts.names,
            opts.zipf_s,
            opts.warmup.as_secs(),
            opts.duration.as_secs()
        ),
    }
    let report = weber::loadgen::run(addr, &opts).map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, format!("{json}\n"))
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote report to {path}");
        }
        None => println!("{json}"),
    }
    eprintln!(
        "loadgen: {:.0} ops/s, p50 {:.0}us p95 {:.0}us p99 {:.0}us, \
         {} errors, {} connections closed early, {} unanswered",
        report.throughput_ops_s,
        report.overall.p50_us,
        report.overall.p95_us,
        report.overall.p99_us,
        report.errors,
        report.closed_early,
        report.unanswered
    );
    Ok(())
}

fn cmd_route(flags: &HashMap<String, String>) -> Result<(), String> {
    let backends: Vec<String> = flags
        .get("backends")
        .ok_or("missing required flag --backends")?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let max_connections: usize = parse(flags, "max-connections", 64)?;
    let probe_secs: u64 = parse(flags, "probe-interval", 1)?;
    if probe_secs == 0 {
        return Err("--probe-interval must be at least 1 second".into());
    }
    if flags.contains_key("replicas") {
        return Err(
            "--replicas has been removed: it set virtual nodes per backend, not the \
             replication factor. Use --vnodes N for ring virtual nodes (what --replicas \
             actually did), or --replication R for copies per name."
                .into(),
        );
    }
    let vnodes = parse(flags, "vnodes", 64)?;
    let replication: usize = parse(flags, "replication", 1)?;
    if replication == 0 {
        return Err("--replication must be at least 1".into());
    }
    if replication > backends.len() {
        eprintln!(
            "warning: --replication {replication} exceeds the {} configured backends; \
             every name will be on every backend",
            backends.len()
        );
    }
    let options = RouterOptions {
        vnodes,
        replication,
        retries: parse(flags, "retries", 2)?,
        pool_capacity: parse(flags, "pool", 2)?,
        probe_interval: std::time::Duration::from_secs(probe_secs),
        ..RouterOptions::default()
    };
    let (io, idle_timeout, max_pipeline) = front_tuning(flags)?;
    let front = FrontOptions {
        workers: parse(flags, "workers", 4)?,
        queue_capacity: parse(flags, "queue", 256)?,
        max_connections,
        io,
        idle_timeout,
        max_pipeline,
    };
    let router =
        std::sync::Arc::new(Router::new(backends.clone(), options).map_err(|e| e.to_string())?);
    let prober = spawn_prober(router.clone());
    let handled = match flags.get("listen") {
        Some(addr) => {
            eprintln!(
                "routing NDJSON on {addr} over {} backends ({}), up to {max_connections} connections",
                backends.len(),
                backends.join(", ")
            );
            route_tcp_with(router.clone(), addr, &front).map_err(|e| e.to_string())?
        }
        None => {
            eprintln!(
                "routing NDJSON on stdin/stdout over {} backends ({})",
                backends.len(),
                backends.join(", ")
            );
            route_stdio(&router).map_err(|e| e.to_string())?
        }
    };
    prober.stop();
    eprintln!("routed {handled} requests");
    Ok(())
}

type DumperHandle = (
    std::sync::Arc<std::sync::atomic::AtomicBool>,
    std::thread::JoinHandle<()>,
    String,
);

/// Periodically render the resolver's metrics as text into `path`. The
/// write is atomic (temp file + rename) so readers never see a torn dump.
fn spawn_metrics_dumper(
    resolver: std::sync::Arc<StreamResolver>,
    path: String,
    interval: std::time::Duration,
) -> DumperHandle {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop_flag = stop.clone();
    let thread_path = path.clone();
    let handle = std::thread::spawn(move || {
        let tick = std::time::Duration::from_millis(250);
        let mut elapsed = std::time::Duration::ZERO;
        while !stop_flag.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::sleep(tick.min(interval));
            elapsed += tick;
            if elapsed >= interval {
                elapsed = std::time::Duration::ZERO;
                if let Err(e) = dump_metrics(&resolver, &thread_path) {
                    eprintln!("warning: metrics dump failed: {e}");
                }
            }
        }
    });
    (stop, handle, path)
}

fn dump_metrics(resolver: &StreamResolver, path: &str) -> Result<(), String> {
    let text = resolver.metrics().merged_snapshot().render_text();
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("cannot write {tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot rename {tmp} -> {path}: {e}"))
}
