//! The per-name canonical entity table and its materialization rules.

use crate::constraint::{Constraint, ConstraintSet};

/// How a mention entered the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MentionOrigin {
    /// Part of the labelled seed batch, with its seed label.
    Seed {
        /// The label the operator assigned in the seed batch.
        label: u32,
    },
    /// Streamed in through `ingest`.
    Ingest,
}

/// Why a mention sits in its entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Via {
    /// Plain clustering evidence: the partition put it here.
    Partition,
    /// Its cluster was merged into this entity through an asserted
    /// `SAME_AS` link between the two entity IDs.
    SameAs {
        /// One endpoint of the link.
        a: u64,
        /// The other endpoint.
        b: u64,
    },
    /// Its raw cluster contained a constraint violation and was split;
    /// this membership is the constraint-aware re-placement.
    Split,
}

impl Via {
    /// Stable wire token.
    pub fn token(&self) -> &'static str {
        match self {
            Via::Partition => "partition",
            Via::SameAs { .. } => "same-as",
            Via::Split => "split",
        }
    }
}

/// One mention's membership record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Document index within the name's block.
    pub doc: usize,
    /// Seed or ingest origin.
    pub origin: MentionOrigin,
    /// What produced this membership.
    pub via: Via,
}

/// A canonical entity: a stable ID and its member mentions with
/// provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Stable identifier, unique within the name (never reused for a
    /// different real-world entity while the store lives).
    pub id: u64,
    /// Member mentions, ascending.
    pub mentions: Vec<usize>,
    /// One record per mention, aligned with `mentions`.
    pub provenance: Vec<Provenance>,
}

/// An asserted (active) `SAME_AS` edge between two entity IDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SameAsLink {
    /// One endpoint.
    pub a: u64,
    /// The other endpoint.
    pub b: u64,
}

/// What one materialization pass did, surfaced on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializeReport {
    /// Entities in the resulting table.
    pub entities: usize,
    /// Extra fragments produced by constraint-aware splitting (a
    /// cluster split three ways counts 2).
    pub splits: u64,
    /// Constraint violations found: forbidden pairs inside raw
    /// clusters, vetoed `SAME_AS` unions, and unmet one-to-one merges.
    pub violations: u64,
    /// Active `SAME_AS` links whose union a constraint vetoed.
    pub vetoed_links: u64,
    /// Entities that kept their ID from the previous table.
    pub retained_ids: usize,
    /// Entities that took a retired ID back.
    pub resurrected_ids: usize,
    /// Entities that minted a fresh ID.
    pub fresh_ids: usize,
}

/// Errors from `SAME_AS` link operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntityError {
    /// The referenced entity ID is not in the live table.
    UnknownEntity(u64),
    /// No active link exists between the two IDs.
    UnknownLink(u64, u64),
}

impl std::fmt::Display for EntityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntityError::UnknownEntity(id) => write!(f, "entity {id} does not exist"),
            EntityError::UnknownLink(a, b) => {
                write!(f, "no active same_as link between entities {a} and {b}")
            }
        }
    }
}

impl std::error::Error for EntityError {}

impl EntityError {
    /// Stable machine-readable token, mirroring the stream error kinds.
    pub fn kind(&self) -> &'static str {
        match self {
            EntityError::UnknownEntity(_) => "unknown-entity",
            EntityError::UnknownLink(..) => "unknown-link",
        }
    }
}

/// The canonical entity table for one name.
///
/// The store never clusters anything itself: the caller hands it the
/// current partition's clusters plus each mention's origin, and the
/// store owns everything *above* that — stable IDs, constraint
/// enforcement, `SAME_AS` unions, provenance, and the retired-ID pool
/// that makes link retraction reversible.
#[derive(Debug, Clone)]
pub struct EntityStore {
    name: String,
    next_id: u64,
    entities: Vec<Entity>,
    /// Retired entities: absorbed by a `SAME_AS` union or dissolved by a
    /// re-partition, kept with their last-known mention sets so a later
    /// materialization can hand their IDs back by overlap.
    retired: Vec<Entity>,
    links: Vec<SameAsLink>,
    constraints: ConstraintSet,
}

impl EntityStore {
    /// An empty store for `name`. IDs start at 1.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            next_id: 1,
            entities: Vec::new(),
            retired: Vec::new(),
            links: Vec::new(),
            constraints: ConstraintSet::new(),
        }
    }

    /// The name this table belongs to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The live entities, ordered by smallest mention.
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// The live entity with ID `id`, if any.
    pub fn entity(&self, id: u64) -> Option<&Entity> {
        self.entities.iter().find(|e| e.id == id)
    }

    /// Active `SAME_AS` links.
    pub fn links(&self) -> &[SameAsLink] {
        &self.links
    }

    /// The registered constraint set.
    pub fn constraints(&self) -> &ConstraintSet {
        &self.constraints
    }

    /// Register a constraint (deduplicated); returns whether the set
    /// grew. Takes effect on the next materialization.
    pub fn add_constraint(&mut self, constraint: Constraint) -> bool {
        self.constraints.add(constraint)
    }

    /// Drop every registered constraint.
    pub fn clear_constraints(&mut self) {
        self.constraints.clear()
    }

    /// Assert a `SAME_AS` link between two *live* entity IDs. Asserting
    /// an already-active link is a no-op. Takes effect on the next
    /// materialization (the caller re-materializes immediately).
    pub fn assert_link(&mut self, a: u64, b: u64) -> Result<(), EntityError> {
        for id in [a, b] {
            if self.entity(id).is_none() {
                return Err(EntityError::UnknownEntity(id));
            }
        }
        if a == b {
            return Ok(());
        }
        if !self.link_active(a, b) {
            self.links.push(SameAsLink { a, b });
        }
        Ok(())
    }

    /// Retract an active `SAME_AS` link (either orientation). The next
    /// materialization splits the merged entity again.
    pub fn retract_link(&mut self, a: u64, b: u64) -> Result<(), EntityError> {
        let before = self.links.len();
        self.links
            .retain(|l| !((l.a == a && l.b == b) || (l.a == b && l.b == a)));
        if self.links.len() == before {
            return Err(EntityError::UnknownLink(a, b));
        }
        Ok(())
    }

    /// True when an active link joins `a` and `b`.
    pub fn link_active(&self, a: u64, b: u64) -> bool {
        self.links
            .iter()
            .any(|l| (l.a == a && l.b == b) || (l.a == b && l.b == a))
    }

    /// The full forbidden-pair test: registered constraints plus the
    /// implicit cannot-link between differently-labelled seed mentions
    /// (the seed protocol's labels *are* ground-truth distinctions).
    fn forbidden(&self, a: usize, b: usize, origins: &[MentionOrigin]) -> bool {
        if let (Some(MentionOrigin::Seed { label: la }), Some(MentionOrigin::Seed { label: lb })) =
            (origins.get(a), origins.get(b))
        {
            if la != lb {
                return true;
            }
        }
        self.constraints.conflict(a, b).is_some()
    }

    /// Rebuild the entity table from the current partition.
    ///
    /// `clusters` is the partition's cluster list (every mention in
    /// exactly one cluster); `origins[doc]` says how each mention
    /// arrived. The pass runs: constraint-aware splitting → stable-ID
    /// assignment by maximum overlap (live table first, then the
    /// retired pool, then fresh IDs) → `SAME_AS` unions (vetoed when a
    /// constraint forbids the merged entity) → provenance.
    pub fn materialize(
        &mut self,
        clusters: &[Vec<usize>],
        origins: &[MentionOrigin],
    ) -> MaterializeReport {
        let mut report = MaterializeReport::default();

        // 1. Constraint-aware splitting. A raw cluster containing a
        // forbidden pair is re-placed greedily: each mention joins the
        // first fragment it conflicts with nobody in.
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut split_flags: Vec<bool> = Vec::new();
        for cluster in clusters {
            let mut members = cluster.clone();
            members.sort_unstable();
            let mut forbidden_pairs = 0u64;
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    if self.forbidden(a, b, origins) {
                        forbidden_pairs += 1;
                    }
                }
            }
            report.violations += forbidden_pairs;
            if forbidden_pairs == 0 {
                groups.push(members);
                split_flags.push(false);
                continue;
            }
            let mut fragments: Vec<Vec<usize>> = Vec::new();
            for &doc in &members {
                match fragments
                    .iter_mut()
                    .find(|f| f.iter().all(|&m| !self.forbidden(m, doc, origins)))
                {
                    Some(fragment) => fragment.push(doc),
                    None => fragments.push(vec![doc]),
                }
            }
            report.splits += fragments.len() as u64 - 1;
            for fragment in fragments {
                groups.push(fragment);
                split_flags.push(true);
            }
        }
        // Deterministic group order regardless of the partition's
        // cluster enumeration.
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&g| groups[g][0]);
        let (sorted_groups, sorted_flags): (Vec<_>, Vec<_>) = order
            .into_iter()
            .map(|g| (std::mem::take(&mut groups[g]), split_flags[g]))
            .unzip();
        let groups = sorted_groups;
        let split_flags = sorted_flags;

        // 2. Stable-ID assignment: maximum mention overlap against the
        // previous table, live entities preferred over retired ones,
        // ties broken by lower previous ID then lower group index.
        let overlap = |prev: &Entity, group: &[usize]| -> usize {
            group.iter().filter(|d| prev.mentions.contains(d)).count()
        };
        // (overlap, retired?, prev slot, group) for every nonzero pair.
        let mut candidates: Vec<(usize, bool, usize, usize)> = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            for (pi, prev) in self.entities.iter().enumerate() {
                let o = overlap(prev, group);
                if o > 0 {
                    candidates.push((o, false, pi, gi));
                }
            }
            for (pi, prev) in self.retired.iter().enumerate() {
                let o = overlap(prev, group);
                if o > 0 {
                    candidates.push((o, true, pi, gi));
                }
            }
        }
        candidates.sort_by(|x, y| {
            y.0.cmp(&x.0) // overlap desc
                .then(x.1.cmp(&y.1)) // live before retired
                .then_with(|| {
                    let id = |&(_, retired, pi, _): &(usize, bool, usize, usize)| {
                        if retired {
                            self.retired[pi].id
                        } else {
                            self.entities[pi].id
                        }
                    };
                    id(x).cmp(&id(y))
                })
                .then(x.3.cmp(&y.3))
        });
        let mut group_id: Vec<Option<u64>> = vec![None; groups.len()];
        let mut used_live = vec![false; self.entities.len()];
        let mut used_retired = vec![false; self.retired.len()];
        let mut resurrected: Vec<usize> = Vec::new();
        for (_, is_retired, pi, gi) in candidates {
            if group_id[gi].is_some() {
                continue;
            }
            let used = if is_retired {
                &mut used_retired[pi]
            } else {
                &mut used_live[pi]
            };
            if *used {
                continue;
            }
            *used = true;
            group_id[gi] = Some(if is_retired {
                resurrected.push(pi);
                self.retired[pi].id
            } else {
                self.entities[pi].id
            });
            if is_retired {
                report.resurrected_ids += 1;
            } else {
                report.retained_ids += 1;
            }
        }
        for slot in &mut group_id {
            if slot.is_none() {
                *slot = Some(self.next_id);
                self.next_id += 1;
                report.fresh_ids += 1;
            }
        }
        let mut group_id: Vec<u64> = group_id.into_iter().map(Option::unwrap).collect();
        // IDs handed back leave the retired pool; live entities whose ID
        // found no group retire below.
        resurrected.sort_unstable();
        for (removed, pi) in resurrected.into_iter().enumerate() {
            self.retired.remove(pi - removed);
        }
        let dissolved: Vec<Entity> = self
            .entities
            .iter()
            .zip(&used_live)
            .filter(|(_, used)| !**used)
            .map(|(e, _)| e.clone())
            .collect();

        // 3. SAME_AS unions. Links join entity IDs; a union a
        // constraint forbids is vetoed (counted, link kept so the
        // operator can retract it). The surviving ID is the larger
        // side's, ties to the lower ID; the absorbed ID is retired.
        // Per-doc via, seeded from each fragment's split flag and
        // overwritten for mentions that move across a link.
        let max_doc = groups
            .iter()
            .flat_map(|g| g.iter())
            .max()
            .copied()
            .unwrap_or(0);
        let mut doc_via: Vec<Via> = vec![Via::Partition; max_doc + 1];
        for (group, &split) in groups.iter().zip(&split_flags) {
            if split {
                for &doc in group {
                    doc_via[doc] = Via::Split;
                }
            }
        }
        let links = self.links.clone();
        let mut merged_groups = groups;
        for link in &links {
            let locate = |id: u64, merged: &[Vec<usize>], ids: &[u64]| {
                ids.iter()
                    .enumerate()
                    .find_map(|(gi, &gid)| (gid == id && !merged[gi].is_empty()).then_some(gi))
            };
            let (Some(ga), Some(gb)) = (
                locate(link.a, &merged_groups, &group_id),
                locate(link.b, &merged_groups, &group_id),
            ) else {
                continue; // an endpoint is not materialized this pass
            };
            if ga == gb {
                continue;
            }
            let vetoed = merged_groups[ga].iter().any(|&a| {
                merged_groups[gb]
                    .iter()
                    .any(|&b| self.forbidden(a, b, origins))
            });
            if vetoed {
                report.vetoed_links += 1;
                report.violations += 1;
                continue;
            }
            let (survivor, absorbed) = if merged_groups[ga].len() > merged_groups[gb].len()
                || (merged_groups[ga].len() == merged_groups[gb].len()
                    && group_id[ga] <= group_id[gb])
            {
                (ga, gb)
            } else {
                (gb, ga)
            };
            let moved = std::mem::take(&mut merged_groups[absorbed]);
            // Retire the absorbed ID with the mention set it covered.
            self.retired.push(Entity {
                id: group_id[absorbed],
                mentions: moved.clone(),
                provenance: Vec::new(),
            });
            for &doc in &moved {
                doc_via[doc] = Via::SameAs {
                    a: link.a,
                    b: link.b,
                };
            }
            merged_groups[survivor].extend(moved);
            merged_groups[survivor].sort_unstable();
            group_id[absorbed] = group_id[survivor];
        }

        // 4. Rebuild the table with provenance; dissolved live IDs move
        // to the retired pool.
        let mut table: Vec<Entity> = merged_groups
            .into_iter()
            .zip(&group_id)
            .filter(|(group, _)| !group.is_empty())
            .map(|(mentions, &id)| {
                let provenance = mentions
                    .iter()
                    .map(|&doc| Provenance {
                        doc,
                        origin: origins.get(doc).copied().unwrap_or(MentionOrigin::Ingest),
                        via: doc_via[doc],
                    })
                    .collect();
                Entity {
                    id,
                    mentions,
                    provenance,
                }
            })
            .collect();
        table.sort_by_key(|e| e.mentions[0]);
        self.entities = table;
        self.retired.extend(dissolved);
        // The pool keeps one record per ID, the most recent.
        let mut seen = std::collections::HashSet::new();
        let live: std::collections::HashSet<u64> = self.entities.iter().map(|e| e.id).collect();
        self.retired.reverse();
        self.retired
            .retain(|e| !live.contains(&e.id) && seen.insert(e.id));
        self.retired.reverse();

        report.violations += self.unmet_merges();
        report.entities = self.entities.len();
        report
    }

    /// Unmet one-to-one merges over the current table.
    fn unmet_merges(&self) -> u64 {
        let max_doc = self
            .entities
            .iter()
            .flat_map(|e| e.mentions.iter())
            .max()
            .copied()
            .unwrap_or(0);
        let mut entity_of = vec![usize::MAX; max_doc + 1];
        for (ei, entity) in self.entities.iter().enumerate() {
            for &doc in &entity.mentions {
                entity_of[doc] = ei;
            }
        }
        self.constraints.unmet_merges(&entity_of)
    }

    /// Internal accessors for (de)serialisation.
    pub(crate) fn parts(
        &self,
    ) -> (
        &str,
        u64,
        &[Entity],
        &[Entity],
        &[SameAsLink],
        &ConstraintSet,
    ) {
        (
            &self.name,
            self.next_id,
            &self.entities,
            &self.retired,
            &self.links,
            &self.constraints,
        )
    }

    pub(crate) fn from_parts(
        name: String,
        next_id: u64,
        entities: Vec<Entity>,
        retired: Vec<Entity>,
        links: Vec<SameAsLink>,
        constraints: ConstraintSet,
    ) -> Self {
        Self {
            name,
            next_id,
            entities,
            retired,
            links,
            constraints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeds(labels: &[u32]) -> Vec<MentionOrigin> {
        labels
            .iter()
            .map(|&label| MentionOrigin::Seed { label })
            .collect()
    }

    fn mixed(seed_labels: &[u32], ingests: usize) -> Vec<MentionOrigin> {
        let mut origins = seeds(seed_labels);
        origins.extend(std::iter::repeat_n(MentionOrigin::Ingest, ingests));
        origins
    }

    fn ids(store: &EntityStore) -> Vec<u64> {
        store.entities().iter().map(|e| e.id).collect()
    }

    #[test]
    fn first_materialization_mints_sequential_ids() {
        let mut store = EntityStore::new("cohen");
        let report = store.materialize(&[vec![0, 1], vec![2, 3]], &seeds(&[0, 0, 1, 1]));
        assert_eq!(report.entities, 2);
        assert_eq!(report.fresh_ids, 2);
        assert_eq!(ids(&store), vec![1, 2]);
    }

    #[test]
    fn ids_survive_a_repartition_by_max_overlap() {
        let mut store = EntityStore::new("cohen");
        store.materialize(&[vec![0, 1, 2], vec![3, 4]], &mixed(&[0, 0, 0, 1, 1], 0));
        let before = ids(&store);
        // A re-partition from scratch: same structure, new doc 5 joins
        // the second cluster, clusters enumerate in a different order.
        let report =
            store.materialize(&[vec![3, 4, 5], vec![0, 1, 2]], &mixed(&[0, 0, 0, 1, 1], 1));
        assert_eq!(report.retained_ids, 2);
        assert_eq!(report.fresh_ids, 0);
        assert_eq!(ids(&store), before, "stable across the re-partition");
        assert_eq!(store.entity(before[1]).unwrap().mentions, vec![3, 4, 5]);
    }

    #[test]
    fn a_moved_majority_takes_its_id_along() {
        let mut store = EntityStore::new("cohen");
        store.materialize(&[vec![0, 1, 2, 3]], &mixed(&[], 4));
        // The cluster splits 3-vs-1: the majority fragment keeps ID 1,
        // the singleton mints a fresh ID.
        let report = store.materialize(&[vec![0, 1, 2], vec![3]], &mixed(&[], 4));
        assert_eq!(report.retained_ids, 1);
        assert_eq!(report.fresh_ids, 1);
        assert_eq!(store.entity(1).unwrap().mentions, vec![0, 1, 2]);
        assert_eq!(store.entity(2).unwrap().mentions, vec![3]);
    }

    #[test]
    fn same_as_merges_and_retract_restores_both_ids() {
        let mut store = EntityStore::new("cohen");
        let origins = mixed(&[], 5);
        store.materialize(&[vec![0, 1], vec![2, 3, 4]], &origins);
        assert_eq!(ids(&store), vec![1, 2]);

        store.assert_link(1, 2).unwrap();
        let report = store.materialize(&[vec![0, 1], vec![2, 3, 4]], &origins);
        assert_eq!(report.entities, 1);
        let merged = &store.entities()[0];
        assert_eq!(merged.id, 2, "the larger side's ID survives");
        assert_eq!(merged.mentions, vec![0, 1, 2, 3, 4]);
        // The absorbed side's provenance names the link.
        let via0 = merged.provenance.iter().find(|p| p.doc == 0).unwrap().via;
        assert_eq!(via0, Via::SameAs { a: 1, b: 2 });
        let via2 = merged.provenance.iter().find(|p| p.doc == 2).unwrap().via;
        assert_eq!(via2, Via::Partition);

        store.retract_link(1, 2).unwrap();
        let report = store.materialize(&[vec![0, 1], vec![2, 3, 4]], &origins);
        assert_eq!(report.entities, 2);
        assert_eq!(report.resurrected_ids, 1, "the retired ID comes back");
        assert_eq!(store.entity(1).unwrap().mentions, vec![0, 1]);
        assert_eq!(store.entity(2).unwrap().mentions, vec![2, 3, 4]);
        assert!(store
            .entities()
            .iter()
            .all(|e| e.provenance.iter().all(|p| p.via == Via::Partition)));
    }

    #[test]
    fn link_errors_are_typed() {
        let mut store = EntityStore::new("cohen");
        store.materialize(&[vec![0], vec![1]], &mixed(&[], 2));
        assert_eq!(store.assert_link(1, 9), Err(EntityError::UnknownEntity(9)));
        assert_eq!(
            store.retract_link(1, 2),
            Err(EntityError::UnknownLink(1, 2))
        );
        store.assert_link(1, 2).unwrap();
        store.assert_link(2, 1).unwrap(); // idempotent, either orientation
        assert_eq!(store.links().len(), 1);
    }

    #[test]
    fn cannot_link_splits_the_cluster_and_counts_the_violation() {
        let mut store = EntityStore::new("cohen");
        let origins = mixed(&[], 4);
        store.materialize(&[vec![0, 1, 2, 3]], &origins);
        store.add_constraint(Constraint::CannotLink { a: 0, b: 2 });
        let report = store.materialize(&[vec![0, 1, 2, 3]], &origins);
        assert_eq!(report.violations, 1);
        assert_eq!(report.splits, 1);
        assert_eq!(report.entities, 2);
        // 0 and 2 ended up apart; everyone else stayed with the first
        // fragment; the fragments carry split provenance.
        let of = |doc: usize| {
            store
                .entities()
                .iter()
                .position(|e| e.mentions.contains(&doc))
                .unwrap()
        };
        assert_ne!(of(0), of(2));
        assert!(store.entities()[of(0)]
            .provenance
            .iter()
            .all(|p| p.via == Via::Split));
    }

    #[test]
    fn seed_labels_are_implicit_cannot_links() {
        let mut store = EntityStore::new("cohen");
        // The partition wrongly merged two differently-labelled seeds.
        let report = store.materialize(&[vec![0, 1]], &seeds(&[0, 1]));
        assert_eq!(report.entities, 2);
        assert_eq!(report.violations, 1);
    }

    #[test]
    fn constraints_veto_a_same_as_union() {
        let mut store = EntityStore::new("cohen");
        let origins = mixed(&[], 4);
        store.materialize(&[vec![0, 1], vec![2, 3]], &origins);
        store.assert_link(1, 2).unwrap();
        store.add_constraint(Constraint::CannotLink { a: 0, b: 3 });
        let report = store.materialize(&[vec![0, 1], vec![2, 3]], &origins);
        assert_eq!(report.entities, 2, "the union is vetoed");
        assert_eq!(report.vetoed_links, 1);
        assert!(report.violations >= 1);
        assert_eq!(store.links().len(), 1, "the link stays for retraction");
    }

    #[test]
    fn one_to_one_reports_unmet_merges() {
        let mut store = EntityStore::new("cohen");
        let origins = mixed(&[], 4);
        store.add_constraint(Constraint::OneToOne {
            key: "affiliation".into(),
            values: vec![(0, "acme".into()), (2, "acme".into())],
        });
        let report = store.materialize(&[vec![0, 1], vec![2, 3]], &origins);
        assert_eq!(report.entities, 2);
        assert_eq!(report.violations, 1, "same value, different entities");
    }

    #[test]
    fn type_boundaries_split_mixed_clusters() {
        let mut store = EntityStore::new("cohen");
        let origins = mixed(&[], 3);
        store.add_constraint(Constraint::TypeBoundary {
            types: vec![(0, "person".into()), (2, "org".into())],
        });
        let report = store.materialize(&[vec![0, 1, 2]], &origins);
        assert_eq!(report.entities, 2);
        assert_eq!(report.splits, 1);
    }
}
