//! Declarative global constraints checked during materialization.

/// One global constraint on a name's entities.
///
/// All three kinds forbid certain mention pairs from sharing an entity;
/// [`Constraint::OneToOne`] additionally declares the *merge* direction
/// (same value ⇒ same entity), which splitting cannot enforce — unmet
/// merges are surfaced as violations instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Constraint {
    /// Mentions `a` and `b` must not share an entity.
    CannotLink {
        /// First mention (document index within the name's block).
        a: usize,
        /// Second mention.
        b: usize,
    },
    /// A one-to-one mapping between entities and values of an attribute:
    /// mentions carrying *different* values of `key` must be distinct
    /// entities, and mentions carrying the *same* value should share one.
    OneToOne {
        /// Attribute name, e.g. `"affiliation"`.
        key: String,
        /// `(mention, value)` pairs; mentions not listed are
        /// unconstrained.
        values: Vec<(usize, String)>,
    },
    /// Entities never cross a type boundary: mentions tagged with
    /// different types must be distinct entities.
    TypeBoundary {
        /// `(mention, type)` pairs; untagged mentions are
        /// unconstrained.
        types: Vec<(usize, String)>,
    },
}

impl Constraint {
    /// Stable kind token, as used on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            Constraint::CannotLink { .. } => "cannot-link",
            Constraint::OneToOne { .. } => "one-to-one",
            Constraint::TypeBoundary { .. } => "type",
        }
    }

    /// Normalise for deduplication: order pair endpoints, sort value
    /// lists by mention.
    fn normalise(&mut self) {
        match self {
            Constraint::CannotLink { a, b } => {
                if a > b {
                    std::mem::swap(a, b);
                }
            }
            Constraint::OneToOne { values, .. } => {
                values.sort();
                values.dedup();
            }
            Constraint::TypeBoundary { types } => {
                types.sort();
                types.dedup();
            }
        }
    }

    /// The value this constraint assigns to mention `doc`, if any.
    fn value_of(pairs: &[(usize, String)], doc: usize) -> Option<&str> {
        pairs
            .iter()
            .find(|(d, _)| *d == doc)
            .map(|(_, v)| v.as_str())
    }

    /// True when this constraint forbids `a` and `b` from co-referring.
    pub fn forbids(&self, a: usize, b: usize) -> bool {
        match self {
            Constraint::CannotLink { a: x, b: y } => (*x == a && *y == b) || (*x == b && *y == a),
            Constraint::OneToOne { values, .. } => matches!(
                (Self::value_of(values, a), Self::value_of(values, b)),
                (Some(va), Some(vb)) if va != vb
            ),
            Constraint::TypeBoundary { types } => matches!(
                (Self::value_of(types, a), Self::value_of(types, b)),
                (Some(ta), Some(tb)) if ta != tb
            ),
        }
    }
}

/// The set of constraints registered for one name.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    items: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a constraint. Duplicates (after normalisation) are
    /// ignored; returns whether the set grew.
    pub fn add(&mut self, mut constraint: Constraint) -> bool {
        constraint.normalise();
        if self.items.contains(&constraint) {
            return false;
        }
        self.items.push(constraint);
        true
    }

    /// Drop every constraint.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Number of registered constraints.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no constraint is registered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The registered constraints.
    pub fn items(&self) -> &[Constraint] {
        &self.items
    }

    /// The kind token of the first constraint forbidding the pair, if
    /// any constraint does.
    pub fn conflict(&self, a: usize, b: usize) -> Option<&'static str> {
        self.items
            .iter()
            .find(|c| c.forbids(a, b))
            .map(Constraint::kind)
    }

    /// Unmet one-to-one merges: pairs of mentions that carry the *same*
    /// value of some one-to-one key but sit in different entities
    /// (`entity_of[doc]` maps each mention to its entity's index).
    /// Splitting cannot repair these, so they are only counted.
    pub fn unmet_merges(&self, entity_of: &[usize]) -> u64 {
        let mut unmet = 0;
        for constraint in &self.items {
            let Constraint::OneToOne { values, .. } = constraint else {
                continue;
            };
            for (i, (doc_a, val_a)) in values.iter().enumerate() {
                for (doc_b, val_b) in &values[i + 1..] {
                    if val_a == val_b
                        && *doc_a < entity_of.len()
                        && *doc_b < entity_of.len()
                        && entity_of[*doc_a] != entity_of[*doc_b]
                    {
                        unmet += 1;
                    }
                }
            }
        }
        unmet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cannot_link_forbids_both_orientations_and_dedups() {
        let mut set = ConstraintSet::new();
        assert!(set.add(Constraint::CannotLink { a: 3, b: 1 }));
        assert!(!set.add(Constraint::CannotLink { a: 1, b: 3 }));
        assert_eq!(set.len(), 1);
        assert_eq!(set.conflict(1, 3), Some("cannot-link"));
        assert_eq!(set.conflict(3, 1), Some("cannot-link"));
        assert_eq!(set.conflict(1, 2), None);
    }

    #[test]
    fn one_to_one_forbids_different_values_only() {
        let mut set = ConstraintSet::new();
        set.add(Constraint::OneToOne {
            key: "affiliation".into(),
            values: vec![(0, "acme".into()), (1, "acme".into()), (2, "globex".into())],
        });
        assert_eq!(set.conflict(0, 2), Some("one-to-one"));
        assert_eq!(set.conflict(0, 1), None, "same value may merge");
        assert_eq!(set.conflict(0, 5), None, "unlisted mention is free");
    }

    #[test]
    fn type_boundary_forbids_cross_type_pairs() {
        let mut set = ConstraintSet::new();
        set.add(Constraint::TypeBoundary {
            types: vec![(0, "person".into()), (4, "org".into())],
        });
        assert_eq!(set.conflict(0, 4), Some("type"));
        assert_eq!(set.conflict(0, 1), None);
    }

    #[test]
    fn unmet_merges_counts_same_value_across_entities() {
        let mut set = ConstraintSet::new();
        set.add(Constraint::OneToOne {
            key: "k".into(),
            values: vec![(0, "v".into()), (1, "v".into()), (2, "w".into())],
        });
        // 0 and 1 share value "v" but live in entities 0 and 1.
        assert_eq!(set.unmet_merges(&[0, 1, 1]), 1);
        assert_eq!(set.unmet_merges(&[0, 0, 1]), 0);
    }
}
