#![warn(missing_docs)]

//! # weber-entity
//!
//! The canonical-entity layer that sits *above* partitioning. A
//! partition answers "which mentions co-refer right now"; this crate
//! answers "which **entity** is that, and why":
//!
//! - **Stable u64 IDs.** [`EntityStore::materialize`] maps the current
//!   clusters onto the previous entity table by maximum mention overlap,
//!   so a re-partition (a checkpoint retrain rebuilding the clustering
//!   from scratch) keeps every surviving entity's ID. Clusters that match
//!   nothing resurrect a retired ID when they overlap one, and mint a
//!   fresh ID otherwise.
//! - **Reversible `SAME_AS` links.** A merge is an *edge between entity
//!   IDs* ([`EntityStore::assert_link`]), not a destructive union: the
//!   absorbed entity is retired with its mention set intact, and
//!   retracting the link ([`EntityStore::retract_link`]) splits the
//!   entity again — the largest fragment keeps the surviving ID, other
//!   fragments take their retired IDs back by overlap.
//! - **Per-mention provenance.** Every membership records which document
//!   produced it, whether it arrived as a labelled seed or a streamed
//!   ingest, and *why it sits in this entity* — plain clustering
//!   evidence, a `SAME_AS` edge, or a constraint split
//!   ([`Provenance`]).
//! - **Declarative global constraints.** Cannot-link pairs (including
//!   the implicit ones between differently-labelled seed mentions),
//!   one-to-one attribute mappings, and type-boundary rules
//!   ([`Constraint`]) are enforced *during* materialization:
//!   a cluster containing a forbidden pair is split greedily so that no
//!   entity violates a constraint, and every violation found (plus every
//!   `SAME_AS` link a constraint vetoes) is counted in the
//!   [`MaterializeReport`] the caller surfaces on the wire.
//!
//! The whole store serialises to a flat [`TableState`] record, which
//! `weber-stream` persists next to the per-name clustering state.

mod constraint;
mod state;
mod store;

pub use constraint::{Constraint, ConstraintSet};
pub use state::{
    EntityState, LinkState, OneToOneState, PairState, TableState, TypedDocState, ENTITY_FILE_MAGIC,
    ENTITY_FILE_VERSION,
};
pub use store::{
    Entity, EntityError, EntityStore, MaterializeReport, MentionOrigin, Provenance, SameAsLink, Via,
};
