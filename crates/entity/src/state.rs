//! Flat, versioned serialisation of an [`EntityStore`].
//!
//! The vendored serde derive handles structs of plain fields and
//! unit-only enums, so the table state is deliberately flat: enums
//! become string tokens, pairs become two-field structs. The record is
//! self-describing (`magic` + `version`) exactly like the per-name
//! clustering records `weber-stream` writes next to it.

use serde::{Deserialize, Serialize};

use crate::constraint::{Constraint, ConstraintSet};
use crate::store::{Entity, EntityStore, MentionOrigin, Provenance, SameAsLink, Via};

/// Magic tag identifying an entity-table record on disk.
pub const ENTITY_FILE_MAGIC: &str = "weber-entity-state";
/// Current record version; readers reject anything else.
pub const ENTITY_FILE_VERSION: u32 = 1;

/// One mention pair (cannot-link endpoints).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairState {
    /// First mention.
    pub a: usize,
    /// Second mention.
    pub b: usize,
}

/// One `(mention, value)` tag of a one-to-one or type constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypedDocState {
    /// The mention (document index).
    pub doc: usize,
    /// Its declared value or type.
    pub value: String,
}

/// A one-to-one constraint: key plus its mention tags.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OneToOneState {
    /// Attribute name.
    pub key: String,
    /// Mention tags.
    pub values: Vec<TypedDocState>,
}

/// An active `SAME_AS` link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkState {
    /// One endpoint entity ID.
    pub a: u64,
    /// The other endpoint entity ID.
    pub b: u64,
}

/// One entity, flattened: provenance columns are aligned with
/// `mentions` (`labels[i]` is `-1` for ingested mentions; `vias[i]`
/// holds the via token, with `same-as` endpoints in `via_a`/`via_b`,
/// `0` where unused).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityState {
    /// Stable ID.
    pub id: u64,
    /// Member mentions, ascending.
    pub mentions: Vec<usize>,
    /// `"seed"` / `"ingest"` per mention.
    pub sources: Vec<String>,
    /// Seed label per mention, `-1` for ingests.
    pub labels: Vec<i64>,
    /// Via token per mention: `"partition"`, `"same-as"`, `"split"`.
    pub vias: Vec<String>,
    /// `same-as` link endpoint per mention (0 where unused).
    pub via_a: Vec<u64>,
    /// `same-as` link endpoint per mention (0 where unused).
    pub via_b: Vec<u64>,
}

/// The complete persisted table for one name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableState {
    /// [`ENTITY_FILE_MAGIC`].
    pub magic: String,
    /// [`ENTITY_FILE_VERSION`].
    pub version: u32,
    /// The name the table belongs to.
    pub name: String,
    /// Next fresh entity ID.
    pub next_id: u64,
    /// Live entities.
    pub entities: Vec<EntityState>,
    /// Retired entities (ID + last-known mentions; provenance empty).
    pub retired: Vec<EntityState>,
    /// Active `SAME_AS` links.
    pub links: Vec<LinkState>,
    /// Cannot-link constraints.
    pub cannot_link: Vec<PairState>,
    /// One-to-one constraints.
    pub one_to_one: Vec<OneToOneState>,
    /// Type-boundary tags (a single merged tag list).
    pub types: Vec<TypedDocState>,
}

fn entity_to_state(entity: &Entity) -> EntityState {
    let mut state = EntityState {
        id: entity.id,
        mentions: entity.mentions.clone(),
        sources: Vec::new(),
        labels: Vec::new(),
        vias: Vec::new(),
        via_a: Vec::new(),
        via_b: Vec::new(),
    };
    for p in &entity.provenance {
        match p.origin {
            MentionOrigin::Seed { label } => {
                state.sources.push("seed".into());
                state.labels.push(label as i64);
            }
            MentionOrigin::Ingest => {
                state.sources.push("ingest".into());
                state.labels.push(-1);
            }
        }
        state.vias.push(p.via.token().into());
        let (a, b) = match p.via {
            Via::SameAs { a, b } => (a, b),
            _ => (0, 0),
        };
        state.via_a.push(a);
        state.via_b.push(b);
    }
    state
}

fn entity_from_state(state: &EntityState) -> Entity {
    let provenance = state
        .mentions
        .iter()
        .enumerate()
        .filter(|&(i, _)| i < state.sources.len())
        .map(|(i, &doc)| Provenance {
            doc,
            origin: if state.sources[i] == "seed" {
                MentionOrigin::Seed {
                    label: state.labels.get(i).copied().unwrap_or(-1).max(0) as u32,
                }
            } else {
                MentionOrigin::Ingest
            },
            via: match state.vias.get(i).map(String::as_str) {
                Some("same-as") => Via::SameAs {
                    a: state.via_a.get(i).copied().unwrap_or(0),
                    b: state.via_b.get(i).copied().unwrap_or(0),
                },
                Some("split") => Via::Split,
                _ => Via::Partition,
            },
        })
        .collect();
    Entity {
        id: state.id,
        mentions: state.mentions.clone(),
        provenance,
    }
}

impl TableState {
    /// Snapshot a store into its persisted form.
    pub fn capture(store: &EntityStore) -> Self {
        let (name, next_id, entities, retired, links, constraints) = store.parts();
        let mut state = TableState {
            magic: ENTITY_FILE_MAGIC.into(),
            version: ENTITY_FILE_VERSION,
            name: name.to_string(),
            next_id,
            entities: entities.iter().map(entity_to_state).collect(),
            retired: retired.iter().map(entity_to_state).collect(),
            links: links.iter().map(|l| LinkState { a: l.a, b: l.b }).collect(),
            cannot_link: Vec::new(),
            one_to_one: Vec::new(),
            types: Vec::new(),
        };
        for constraint in constraints.items() {
            match constraint {
                Constraint::CannotLink { a, b } => {
                    state.cannot_link.push(PairState { a: *a, b: *b })
                }
                Constraint::OneToOne { key, values } => state.one_to_one.push(OneToOneState {
                    key: key.clone(),
                    values: values
                        .iter()
                        .map(|(doc, value)| TypedDocState {
                            doc: *doc,
                            value: value.clone(),
                        })
                        .collect(),
                }),
                Constraint::TypeBoundary { types } => {
                    state
                        .types
                        .extend(types.iter().map(|(doc, value)| TypedDocState {
                            doc: *doc,
                            value: value.clone(),
                        }))
                }
            }
        }
        state
    }

    /// Rebuild the live store. Fails on a wrong magic or version.
    pub fn restore(&self) -> Result<EntityStore, String> {
        if self.magic != ENTITY_FILE_MAGIC {
            return Err(format!(
                "not an entity-table record: magic {:?}",
                self.magic
            ));
        }
        if self.version != ENTITY_FILE_VERSION {
            return Err(format!(
                "unsupported entity-table version {} (expected {})",
                self.version, ENTITY_FILE_VERSION
            ));
        }
        let mut constraints = ConstraintSet::new();
        for pair in &self.cannot_link {
            constraints.add(Constraint::CannotLink {
                a: pair.a,
                b: pair.b,
            });
        }
        for oto in &self.one_to_one {
            constraints.add(Constraint::OneToOne {
                key: oto.key.clone(),
                values: oto
                    .values
                    .iter()
                    .map(|t| (t.doc, t.value.clone()))
                    .collect(),
            });
        }
        if !self.types.is_empty() {
            constraints.add(Constraint::TypeBoundary {
                types: self
                    .types
                    .iter()
                    .map(|t| (t.doc, t.value.clone()))
                    .collect(),
            });
        }
        Ok(EntityStore::from_parts(
            self.name.clone(),
            self.next_id,
            self.entities.iter().map(entity_from_state).collect(),
            self.retired.iter().map(entity_from_state).collect(),
            self.links
                .iter()
                .map(|l| SameAsLink { a: l.a, b: l.b })
                .collect(),
            constraints,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MentionOrigin;

    #[test]
    fn capture_restore_roundtrips_through_json() {
        let mut store = EntityStore::new("cohen");
        let origins = vec![
            MentionOrigin::Seed { label: 0 },
            MentionOrigin::Seed { label: 0 },
            MentionOrigin::Ingest,
            MentionOrigin::Ingest,
        ];
        store.materialize(&[vec![0, 1], vec![2, 3]], &origins);
        store.add_constraint(Constraint::CannotLink { a: 0, b: 3 });
        store.add_constraint(Constraint::OneToOne {
            key: "affiliation".into(),
            values: vec![(0, "acme".into())],
        });
        store.assert_link(1, 2).unwrap();
        let state = TableState::capture(&store);
        let json = serde_json::to_string(&state).unwrap();
        let back: TableState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);
        let restored = back.restore().unwrap();
        assert_eq!(restored.entities(), store.entities());
        assert_eq!(restored.links(), store.links());
        assert_eq!(restored.constraints().len(), store.constraints().len());
    }

    #[test]
    fn restore_rejects_wrong_magic_and_version() {
        let store = EntityStore::new("x");
        let mut state = TableState::capture(&store);
        state.magic = "other".into();
        assert!(state.restore().is_err());
        let mut state = TableState::capture(&store);
        state.version = 99;
        assert!(state.restore().is_err());
    }
}
