//! Property-based tests for the graph substrate.
#![allow(clippy::needless_range_loop)] // brute-force reference impls index deliberately

use proptest::prelude::*;

use weber_graph::components::connected_components;
use weber_graph::correlation::{agreement, correlation_cluster, CorrelationConfig};
use weber_graph::decision::DecisionGraph;
use weber_graph::entity::{clique_violations, is_clique_union};
use weber_graph::partition::Partition;
use weber_graph::union_find::UnionFind;
use weber_graph::weighted::WeightedGraph;

/// Strategy: an edge list over `n` nodes.
fn edges(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..n * 2).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter(|&(i, j)| i != j)
            .collect::<Vec<_>>()
    })
}

/// Strategy: arbitrary partition labels for `n` items.
fn labels(n: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..(n as u32).max(1), n)
}

proptest! {
    #[test]
    fn union_find_is_an_equivalence_relation(es in edges(20)) {
        let mut uf = UnionFind::new(20);
        for &(i, j) in &es {
            uf.union(i, j);
        }
        // Reflexive & symmetric & transitive by construction of find();
        // check against a brute-force closure.
        #[allow(clippy::needless_range_loop)]
        let mut adj = vec![vec![false; 20]; 20];
        for &(i, j) in &es {
            adj[i][j] = true;
            adj[j][i] = true;
        }
        for k in 0..20 {
            for i in 0..20 {
                for j in 0..20 {
                    if adj[i][k] && adj[k][j] {
                        adj[i][j] = true;
                    }
                }
            }
        }
        for i in 0..20 {
            for j in 0..20 {
                let closure = i == j || adj[i][j];
                prop_assert_eq!(uf.connected(i, j), closure, "pair ({}, {})", i, j);
            }
        }
    }

    #[test]
    fn set_count_decreases_by_successful_unions(es in edges(15)) {
        let mut uf = UnionFind::new(15);
        let mut merges = 0;
        for &(i, j) in &es {
            if uf.union(i, j) {
                merges += 1;
            }
        }
        prop_assert_eq!(uf.set_count(), 15 - merges);
    }

    #[test]
    fn partition_canonicalisation_is_idempotent(ls in labels(12)) {
        let p = Partition::from_labels(ls);
        let q = Partition::from_labels(p.labels().to_vec());
        prop_assert_eq!(p, q);
    }

    #[test]
    fn partition_pair_count_matches_enumeration(ls in labels(12)) {
        let p = Partition::from_labels(ls);
        prop_assert_eq!(p.positive_pair_count(), p.positive_pairs().count());
        // Every enumerated pair really is intra-cluster.
        for (i, j) in p.positive_pairs() {
            prop_assert!(i < j);
            prop_assert!(p.same_cluster(i, j));
        }
    }

    #[test]
    fn components_yield_partition_whose_cliques_contain_all_edges(es in edges(16)) {
        let mut g = DecisionGraph::new(16);
        for &(i, j) in &es {
            g.add_edge(i, j);
        }
        let p = connected_components(&g);
        for (i, j) in g.edges() {
            prop_assert!(p.same_cluster(i, j));
        }
        // Closing the graph produces a valid entity graph.
        let closed = DecisionGraph::from_partition(&p);
        prop_assert!(is_clique_union(&closed));
        prop_assert!(closed.edge_count() >= g.edge_count());
    }

    #[test]
    fn clique_violations_zero_iff_partition_graph(ls in labels(10)) {
        let p = Partition::from_labels(ls);
        let g = DecisionGraph::from_partition(&p);
        prop_assert_eq!(clique_violations(&g), 0);
    }

    #[test]
    fn decision_graph_add_remove_roundtrip(es in edges(14)) {
        let mut g = DecisionGraph::new(14);
        let mut added = Vec::new();
        for &(i, j) in &es {
            if g.add_edge(i, j) {
                added.push((i.min(j), i.max(j)));
            }
        }
        prop_assert_eq!(g.edge_count(), added.len());
        for &(i, j) in &added {
            prop_assert!(g.has_edge(i, j));
            prop_assert!(g.remove_edge(i, j));
        }
        prop_assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn weighted_graph_get_set_is_symmetric(
        n in 2usize..12,
        updates in proptest::collection::vec((0usize..12, 0usize..12, 0.0f64..1.0), 0..30),
    ) {
        let mut g = WeightedGraph::new(n);
        for &(i, j, w) in updates.iter().filter(|&&(i, j, _)| i != j && i < n && j < n) {
            g.set(i, j, w);
            prop_assert_eq!(g.get(i, j), g.get(j, i));
            prop_assert_eq!(g.get(i, j), w);
        }
    }

    #[test]
    fn correlation_clustering_result_is_no_worse_than_trivia(
        n in 2usize..10,
        ps in proptest::collection::vec(0.0f64..1.0, 45),
    ) {
        let mut it = ps.into_iter();
        let g = WeightedGraph::from_fn(n, |_, _| it.next().unwrap_or(0.5));
        let p = correlation_cluster(&g, CorrelationConfig::default());
        prop_assert_eq!(p.len(), n);
        let score = agreement(&g, &p);
        // Must be at least as good as both trivial clusterings (local search
        // can always reach either from any start).
        let singles = agreement(&g, &Partition::singletons(n));
        prop_assert!(score >= singles - 1e-9, "score {score} < singletons {singles}");
    }

    #[test]
    fn correlation_clustering_is_deterministic(
        n in 2usize..8,
        seed in 0u64..1000,
        ps in proptest::collection::vec(0.0f64..1.0, 28),
    ) {
        let mut it = ps.clone().into_iter();
        let g = WeightedGraph::from_fn(n, |_, _| it.next().unwrap_or(0.5));
        let cfg = CorrelationConfig { seed, ..Default::default() };
        prop_assert_eq!(correlation_cluster(&g, cfg), correlation_cluster(&g, cfg));
    }
}
