//! The combination multigraph.
//!
//! "First we obtain a multi-graph, where the multiple edges between two
//! nodes correspond to the edges from the individual graphs. We weight the
//! edges with the individual accuracy estimations, which we consider as
//! estimations of the probability of a link. Then we compute a weighted
//! average and obtained an optimal threshold […] If the combined value is
//! above this threshold, we add an edge to G_combined." (§IV-B)
//!
//! A [`MultiGraph`] overlays any number of layers; each layer is a decision
//! graph plus a per-edge link-probability weight (the accuracy estimate of
//! the region the similarity value fell into). Absent edges contribute the
//! *complement* of their accuracy as evidence against a link, so the
//! weighted average is taken over all layers, not only the asserting ones.

use crate::decision::DecisionGraph;
use crate::weighted::WeightedGraph;

/// One evidence layer: a decision graph with per-pair link probabilities.
#[derive(Debug, Clone)]
pub struct Layer {
    /// Asserted edges.
    pub decisions: DecisionGraph,
    /// Per-pair probability that a link exists, as estimated by the layer's
    /// accuracy model (complete graph over the same nodes).
    pub link_probability: WeightedGraph,
    /// The layer's overall estimated accuracy (its voting weight).
    pub weight: f64,
}

/// A multigraph combining several decision layers over the same node set.
#[derive(Debug, Clone, Default)]
pub struct MultiGraph {
    layers: Vec<Layer>,
    n: usize,
}

impl MultiGraph {
    /// An empty multigraph; the node count is fixed by the first layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a layer. Panics if its node count differs from prior layers.
    pub fn add_layer(&mut self, layer: Layer) {
        if self.layers.is_empty() {
            self.n = layer.decisions.len();
        } else {
            assert_eq!(
                layer.decisions.len(),
                self.n,
                "all layers must cover the same documents"
            );
        }
        assert_eq!(
            layer.link_probability.len(),
            layer.decisions.len(),
            "probability graph must cover the same documents"
        );
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of nodes (0 until the first layer is added).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no layers have been added.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The combined link score for pair `{i, j}`: the weighted average of
    /// the layers' link-probability estimates, weighted by each layer's
    /// overall accuracy (its voting weight).
    ///
    /// The link probabilities are already directional — a layer that
    /// decided "no link" carries a probability below ½ for that pair — so
    /// no complementing is needed here.
    pub fn combined_score(&self, i: usize, j: usize) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for layer in &self.layers {
            num += layer.weight * layer.link_probability.get(i, j);
            den += layer.weight;
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Materialise the combined score for every pair as a weighted graph.
    pub fn combined_scores(&self) -> WeightedGraph {
        WeightedGraph::from_fn(self.n, |i, j| self.combined_score(i, j))
    }

    /// The combined decision graph: pairs whose combined score clears
    /// `threshold`.
    pub fn combine(&self, threshold: f64) -> DecisionGraph {
        DecisionGraph::from_weighted(&self.combined_scores(), |_, _, s| s >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(n: usize, edges: &[(usize, usize)], prob: f64, weight: f64) -> Layer {
        let mut d = DecisionGraph::new(n);
        for &(i, j) in edges {
            d.add_edge(i, j);
        }
        // Directional probabilities, as FittedDecision produces them: the
        // asserted edges carry `prob`, the rest its complement.
        let link_probability =
            WeightedGraph::from_fn(n, |i, j| if d.has_edge(i, j) { prob } else { 1.0 - prob });
        Layer {
            decisions: d,
            link_probability,
            weight,
        }
    }

    #[test]
    fn single_layer_passes_through() {
        let mut m = MultiGraph::new();
        m.add_layer(layer(3, &[(0, 1)], 0.9, 1.0));
        assert!((m.combined_score(0, 1) - 0.9).abs() < 1e-12);
        assert!((m.combined_score(0, 2) - 0.1).abs() < 1e-12);
        let d = m.combine(0.5);
        assert!(d.has_edge(0, 1));
        assert!(!d.has_edge(0, 2));
    }

    #[test]
    fn agreeing_layers_reinforce() {
        let mut m = MultiGraph::new();
        m.add_layer(layer(3, &[(0, 1)], 0.8, 1.0));
        m.add_layer(layer(3, &[(0, 1)], 0.6, 1.0));
        assert!((m.combined_score(0, 1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn accurate_layer_dominates_weighted_average() {
        let mut m = MultiGraph::new();
        // Accurate layer says link (p=0.9, weight 0.9); weak layer says no
        // link (p=0.5, weight 0.1): evidence = 0.5 complement = 0.5.
        m.add_layer(layer(3, &[(0, 1)], 0.9, 0.9));
        m.add_layer(layer(3, &[], 0.5, 0.1));
        let s = m.combined_score(0, 1);
        assert!((s - (0.9 * 0.9 + 0.1 * 0.5)).abs() < 1e-12);
        assert!(m.combine(0.5).has_edge(0, 1));
    }

    #[test]
    fn empty_multigraph_scores_zero() {
        let m = MultiGraph::new();
        assert!(m.is_empty());
        assert_eq!(m.layer_count(), 0);
    }

    #[test]
    #[should_panic(expected = "same documents")]
    fn mismatched_layer_sizes_panic() {
        let mut m = MultiGraph::new();
        m.add_layer(layer(3, &[], 0.5, 1.0));
        m.add_layer(layer(4, &[], 0.5, 1.0));
    }

    #[test]
    fn zero_total_weight_gives_zero_scores() {
        let mut m = MultiGraph::new();
        m.add_layer(layer(3, &[(0, 1)], 0.9, 0.0));
        assert_eq!(m.combined_score(0, 1), 0.0);
    }
}
