//! Online (incrementally grown) partitions.
//!
//! Batch resolution computes the transitive closure of a decision graph in
//! one pass. A streaming resolver cannot: documents arrive one at a time
//! and each arrival may merge existing clusters. [`OnlinePartition`] keeps
//! the live partition in a growable union-find so that one arrival costs
//! amortised near-constant time per asserted link, and the closure
//! invariant (clusters = connected components of all asserted links) holds
//! after every insertion — matching what batch transitive closure would
//! produce over the same link set, regardless of arrival order.

use crate::partition::Partition;
use crate::union_find::UnionFind;

/// A partition that grows one element at a time.
#[derive(Debug, Clone)]
pub struct OnlinePartition {
    uf: UnionFind,
}

impl Default for OnlinePartition {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlinePartition {
    /// An empty partition; elements arrive via [`insert`](Self::insert).
    pub fn new() -> Self {
        Self {
            uf: UnionFind::new(0),
        }
    }

    /// Start from `n` existing singleton elements.
    pub fn with_singletons(n: usize) -> Self {
        Self {
            uf: UnionFind::new(n),
        }
    }

    /// Start from an existing labelling (e.g. a resolved seed batch):
    /// elements with equal labels share a cluster.
    pub fn from_labels(labels: &[u32]) -> Self {
        let mut uf = UnionFind::new(labels.len());
        let mut first_with: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        for (i, &l) in labels.iter().enumerate() {
            match first_with.entry(l) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    uf.union(*e.get(), i);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
        Self { uf }
    }

    /// Number of elements inserted so far.
    pub fn len(&self) -> usize {
        self.uf.len()
    }

    /// True before any element has been inserted.
    pub fn is_empty(&self) -> bool {
        self.uf.is_empty()
    }

    /// Number of clusters currently.
    pub fn cluster_count(&self) -> usize {
        self.uf.set_count()
    }

    /// Insert the next element, asserting links to the given existing
    /// elements; returns the new element's index. The element joins the
    /// union of its link targets' clusters (transitive-closure semantics:
    /// one arrival may merge several clusters). With no links it founds a
    /// new singleton cluster.
    ///
    /// Panics if a link target is out of range (`>=` the pre-insert
    /// length).
    pub fn insert(&mut self, links: impl IntoIterator<Item = usize>) -> usize {
        let id = self.uf.push();
        for target in links {
            assert!(target < id, "link target {target} out of range (< {id})");
            self.uf.union(id, target);
        }
        id
    }

    /// Merge the clusters of two existing elements (late-arriving evidence).
    /// Returns true if they were distinct.
    pub fn merge(&mut self, a: usize, b: usize) -> bool {
        self.uf.union(a, b)
    }

    /// True if `a` and `b` are currently in the same cluster.
    pub fn same_cluster(&self, a: usize, b: usize) -> bool {
        self.uf.find_readonly(a) == self.uf.find_readonly(b)
    }

    /// The current cluster representative of element `i` (stable only until
    /// the next merge).
    pub fn representative(&self, i: usize) -> usize {
        self.uf.find_readonly(i)
    }

    /// Snapshot the current partition with canonical (first-occurrence)
    /// labels.
    pub fn partition(&self) -> Partition {
        self.uf.to_partition()
    }

    /// Current members of `i`'s cluster, ascending (O(n)).
    pub fn members_of(&self, i: usize) -> Vec<usize> {
        let root = self.uf.find_readonly(i);
        (0..self.uf.len())
            .filter(|&j| self.uf.find_readonly(j) == root)
            .collect()
    }

    /// All clusters as member lists, ordered by first member (O(n)).
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let labels = self.partition();
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); labels.cluster_count()];
        for i in 0..labels.len() {
            out[labels.label_of(i) as usize].push(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_from_empty() {
        let mut p = OnlinePartition::new();
        assert!(p.is_empty());
        assert_eq!(p.insert([]), 0);
        assert_eq!(p.insert([0]), 1);
        assert_eq!(p.insert([]), 2);
        assert_eq!(p.len(), 3);
        assert_eq!(p.cluster_count(), 2);
        assert!(p.same_cluster(0, 1));
        assert!(!p.same_cluster(0, 2));
    }

    #[test]
    fn insert_with_links_merges_clusters() {
        // 0 and 1 separate; arrival 2 links both -> one cluster of three.
        let mut p = OnlinePartition::with_singletons(2);
        p.insert([0, 1]);
        assert_eq!(p.cluster_count(), 1);
        assert_eq!(p.members_of(0), vec![0, 1, 2]);
    }

    #[test]
    fn matches_batch_transitive_closure() {
        use crate::components::connected_components;
        use crate::decision::DecisionGraph;
        // Arbitrary link set over 6 docs, inserted in arrival order.
        let links: &[(usize, usize)] = &[(1, 0), (3, 2), (4, 2), (5, 0), (5, 3)];
        let mut g = DecisionGraph::new(6);
        let mut p = OnlinePartition::new();
        for doc in 0..6 {
            let targets: Vec<usize> = links
                .iter()
                .filter(|&&(d, _)| d == doc)
                .map(|&(_, t)| t)
                .collect();
            p.insert(targets.iter().copied());
            for &t in &targets {
                g.add_edge(doc, t);
            }
        }
        assert_eq!(p.partition(), connected_components(&g));
    }

    #[test]
    fn from_labels_reconstructs_clusters() {
        let p = OnlinePartition::from_labels(&[0, 1, 0, 2, 1]);
        assert_eq!(p.cluster_count(), 3);
        assert!(p.same_cluster(0, 2));
        assert!(p.same_cluster(1, 4));
        assert!(!p.same_cluster(0, 3));
        assert_eq!(p.partition().labels(), &[0, 1, 0, 2, 1]);
    }

    #[test]
    fn clusters_lists_members_in_order() {
        let mut p = OnlinePartition::from_labels(&[0, 1, 0]);
        p.insert([1]);
        assert_eq!(p.clusters(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn merge_joins_existing_elements() {
        let mut p = OnlinePartition::with_singletons(3);
        assert!(p.merge(0, 2));
        assert!(!p.merge(0, 2));
        assert_eq!(p.cluster_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_rejects_forward_links() {
        let mut p = OnlinePartition::new();
        p.insert([0]);
    }
}
