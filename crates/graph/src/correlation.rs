//! Correlation clustering (Bansal, Blum, Chawla 2004).
//!
//! The paper's alternative clustering back-end: "we also experimented with
//! several other clustering techniques, such as correlation clustering".
//!
//! Given per-pair link probabilities `p_ij ∈ [0, 1]`, a clustering earns
//! agreement `p_ij − ½` for every intra-cluster pair and `½ − p_ij` for
//! every inter-cluster pair; we maximise total agreement. Exact optimisation
//! is NP-hard, so we use the standard pipeline: the CC-Pivot randomised
//! 3-approximation (Ailon, Charikar, Newman) as a seed, refined by a
//! best-move local search until a local optimum (or an iteration cap) is
//! reached.

use crate::partition::Partition;
use crate::weighted::WeightedGraph;

/// Configuration for [`correlation_cluster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationConfig {
    /// Seed for the pivot order (deterministic for a fixed seed).
    pub seed: u64,
    /// Number of independent pivot restarts; the best local optimum wins.
    pub restarts: usize,
    /// Cap on full local-search sweeps per restart.
    pub max_sweeps: usize,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            restarts: 4,
            max_sweeps: 50,
        }
    }
}

/// splitmix64 — a tiny deterministic PRNG, enough for pivot shuffles without
/// pulling a dependency into this leaf crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
    }
}

/// Total agreement of `p` under link probabilities `g`.
pub fn agreement(g: &WeightedGraph, p: &Partition) -> f64 {
    g.edges()
        .map(|(i, j, w)| {
            if p.same_cluster(i, j) {
                w - 0.5
            } else {
                0.5 - w
            }
        })
        .sum()
}

/// Cluster the nodes of `g` by (approximate) correlation clustering.
pub fn correlation_cluster(g: &WeightedGraph, config: CorrelationConfig) -> Partition {
    let n = g.len();
    if n == 0 {
        return Partition::from_labels(vec![]);
    }
    let mut rng = SplitMix64(config.seed);
    let mut best: Option<(f64, Partition)> = None;
    for _ in 0..config.restarts.max(1) {
        let mut labels = pivot_pass(g, &mut rng);
        local_search(g, &mut labels, config.max_sweeps);
        let p = Partition::from_labels(labels);
        let score = agreement(g, &p);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, p));
        }
    }
    best.expect("at least one restart").1
}

/// CC-Pivot: pick a random unclustered pivot; absorb all unclustered nodes
/// with link probability ≥ ½ to it.
fn pivot_pass(g: &WeightedGraph, rng: &mut SplitMix64) -> Vec<u32> {
    let n = g.len();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for &pivot in &order {
        if labels[pivot] != u32::MAX {
            continue;
        }
        labels[pivot] = next;
        for &other in &order {
            if labels[other] == u32::MAX && g.get(pivot, other) >= 0.5 {
                labels[other] = next;
            }
        }
        next += 1;
    }
    labels
}

/// Best-move local search: move one node at a time to the cluster (existing
/// or fresh singleton) with the largest agreement gain, until a sweep makes
/// no move.
fn local_search(g: &WeightedGraph, labels: &mut [u32], max_sweeps: usize) {
    let n = g.len();
    if n < 2 {
        return;
    }
    for _ in 0..max_sweeps {
        let mut moved = false;
        for node in 0..n {
            let n_clusters = labels.iter().copied().max().unwrap_or(0) + 1;
            // gain[c]: agreement delta of moving `node` into cluster c.
            // Moving into cluster c adds sum over members m of
            // (w - 0.5) - (0.5 - w) = 2w - 1 relative to being separate.
            let mut gain = vec![0.0f64; n_clusters as usize + 1];
            for other in 0..n {
                if other == node {
                    continue;
                }
                let delta = 2.0 * g.get(node, other) - 1.0;
                gain[labels[other] as usize] += delta;
            }
            // gain[n_clusters] = 0.0 stands for "fresh singleton".
            let current = labels[node] as usize;
            let (best_cluster, best_gain) = gain
                .iter()
                .copied()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("gain is non-empty");
            if best_cluster != current && best_gain > gain[current] + 1e-12 {
                labels[node] = best_cluster as u32;
                moved = true;
            }
        }
        if !moved {
            return;
        }
        // Compact labels so the gain vector stays small.
        let compact = Partition::from_labels(labels.to_vec());
        labels.copy_from_slice(compact.labels());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(n: usize, links: &[(usize, usize)]) -> WeightedGraph {
        WeightedGraph::from_fn(n, |i, j| {
            if links.contains(&(i, j)) || links.contains(&(j, i)) {
                0.9
            } else {
                0.1
            }
        })
    }

    #[test]
    fn recovers_clean_clusters() {
        // Two cliques {0,1,2} and {3,4}.
        let g = probs(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let p = correlation_cluster(&g, CorrelationConfig::default());
        assert_eq!(p, Partition::from_labels(vec![0, 0, 0, 1, 1]));
    }

    #[test]
    fn all_low_probabilities_give_singletons() {
        let g = WeightedGraph::from_fn(4, |_, _| 0.05);
        let p = correlation_cluster(&g, CorrelationConfig::default());
        assert_eq!(p.cluster_count(), 4);
    }

    #[test]
    fn all_high_probabilities_give_one_cluster() {
        let g = WeightedGraph::from_fn(4, |_, _| 0.95);
        let p = correlation_cluster(&g, CorrelationConfig::default());
        assert_eq!(p.cluster_count(), 1);
    }

    #[test]
    fn repairs_one_noisy_edge() {
        // Clique {0,1,2} but edge (1,2) reported low; transitive closure
        // would still merge; correlation clustering should too, because two
        // strong edges outvote one weak edge.
        let g = WeightedGraph::from_fn(3, |i, j| match (i, j) {
            (0, 1) | (0, 2) => 0.9,
            _ => 0.3,
        });
        let p = correlation_cluster(&g, CorrelationConfig::default());
        assert_eq!(p.cluster_count(), 1);
    }

    #[test]
    fn splits_weakly_bridged_cliques() {
        // Two tight cliques joined by a single mid bridge: the bridge must
        // not merge them (cost of merging: many low cross edges).
        let g = WeightedGraph::from_fn(6, |i, j| {
            let same_side = (i < 3) == (j < 3);
            if same_side {
                0.95
            } else if (i, j) == (2, 3) {
                0.55
            } else {
                0.05
            }
        });
        let p = correlation_cluster(&g, CorrelationConfig::default());
        assert_eq!(p.cluster_count(), 2);
        assert!(p.same_cluster(0, 2));
        assert!(p.same_cluster(3, 5));
        assert!(!p.same_cluster(2, 3));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = probs(6, &[(0, 1), (2, 3), (4, 5)]);
        let c = CorrelationConfig {
            seed: 42,
            ..Default::default()
        };
        assert_eq!(correlation_cluster(&g, c), correlation_cluster(&g, c));
    }

    #[test]
    fn agreement_is_maximal_for_truth_on_clean_input() {
        let truth = Partition::from_labels(vec![0, 0, 1, 1]);
        let g = WeightedGraph::from_fn(4, |i, j| if truth.same_cluster(i, j) { 1.0 } else { 0.0 });
        let best = agreement(&g, &truth);
        for other in [
            Partition::singletons(4),
            Partition::single_cluster(4),
            Partition::from_labels(vec![0, 1, 0, 1]),
        ] {
            assert!(agreement(&g, &other) <= best);
        }
    }

    #[test]
    fn empty_and_single_node() {
        let p = correlation_cluster(&WeightedGraph::new(0), CorrelationConfig::default());
        assert!(p.is_empty());
        let p = correlation_cluster(&WeightedGraph::new(1), CorrelationConfig::default());
        assert_eq!(p.cluster_count(), 1);
    }
}
