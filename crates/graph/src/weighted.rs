//! Complete weighted graphs over a document block.
//!
//! `G_w^{f_i}` in the paper: nodes are the documents of one block (same
//! ambiguous name), the weight on edge `{i, j}` is the similarity value
//! `f_i(d_i, d_j) ∈ [0, 1]`. Stored as a flat upper-triangular matrix —
//! blocks are small (≈100–150 documents), so the dense representation is
//! both the fastest and the simplest.

/// A complete undirected weighted graph over `n` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    n: usize,
    /// Upper-triangular weights, row-major: entry for (i, j), i < j.
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// A graph over `n` nodes with all weights zero.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            weights: vec![0.0; n * n.saturating_sub(1) / 2],
        }
    }

    /// Build by evaluating `f(i, j)` for every pair `i < j`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Self::new(n);
        for i in 0..n {
            for j in i + 1..n {
                g.set(i, j, f(i, j));
            }
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a graph over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (unordered) edges, `n·(n−1)/2`.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n, "need i < j < n, got ({i}, {j})");
        // Offset of row i in the upper triangle, plus column offset.
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// The weight of edge `{i, j}` (order-insensitive). Panics if `i == j`
    /// or out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "no self-edges in a pairwise similarity graph");
        let (i, j) = (i.min(j), i.max(j));
        self.weights[self.index(i, j)]
    }

    /// Set the weight of edge `{i, j}` (order-insensitive).
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        assert!(i != j, "no self-edges in a pairwise similarity graph");
        let (i, j) = (i.min(j), i.max(j));
        let idx = self.index(i, j);
        self.weights[idx] = w;
    }

    /// Iterate `(i, j, weight)` over all pairs `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n)
            .flat_map(move |i| (i + 1..self.n).map(move |j| (i, j, self.weights[self.index(i, j)])))
    }

    /// All edge weights in `(i, j)` lexicographic order.
    pub fn weight_values(&self) -> &[f64] {
        &self.weights
    }

    /// Mean edge weight, or 0 for graphs with fewer than 2 nodes.
    pub fn mean_weight(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.weights.iter().sum::<f64>() / self.weights.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_indexing_is_bijective() {
        let n = 7;
        let g = WeightedGraph::new(n);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in i + 1..n {
                assert!(seen.insert(g.index(i, j)), "duplicate index for ({i},{j})");
            }
        }
        assert_eq!(seen.len(), g.edge_count());
        assert_eq!(*seen.iter().max().unwrap(), g.edge_count() - 1);
    }

    #[test]
    fn get_set_symmetry() {
        let mut g = WeightedGraph::new(4);
        g.set(2, 1, 0.75);
        assert_eq!(g.get(1, 2), 0.75);
        assert_eq!(g.get(2, 1), 0.75);
        assert_eq!(g.get(0, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "no self-edges")]
    fn rejects_self_edges() {
        WeightedGraph::new(3).get(1, 1);
    }

    #[test]
    fn from_fn_fills_all_pairs() {
        let g = WeightedGraph::from_fn(4, |i, j| (i + j) as f64);
        assert_eq!(g.get(0, 1), 1.0);
        assert_eq!(g.get(2, 3), 5.0);
        assert_eq!(g.edges().count(), 6);
    }

    #[test]
    fn edges_iterates_lexicographically() {
        let g = WeightedGraph::from_fn(3, |i, j| (10 * i + j) as f64);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (0, 2, 2.0), (1, 2, 12.0)]);
    }

    #[test]
    fn mean_weight() {
        let g = WeightedGraph::from_fn(3, |_, _| 0.5);
        assert!((g.mean_weight() - 0.5).abs() < 1e-12);
        assert_eq!(WeightedGraph::new(1).mean_weight(), 0.0);
        assert_eq!(WeightedGraph::new(0).mean_weight(), 0.0);
    }

    #[test]
    fn tiny_graphs() {
        assert!(WeightedGraph::new(0).is_empty());
        let g = WeightedGraph::new(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
