//! Complete weighted graphs over a document block.
//!
//! `G_w^{f_i}` in the paper: nodes are the documents of one block (same
//! ambiguous name), the weight on edge `{i, j}` is the similarity value
//! `f_i(d_i, d_j) ∈ [0, 1]`. Stored as a flat upper-triangular matrix —
//! blocks are small (≈100–150 documents), so the dense representation is
//! both the fastest and the simplest.
//!
//! The triangle is laid out in *colexicographic* (column-major) order:
//! entry `{i, j}` with `i < j` lives at `j·(j−1)/2 + i`, so all edges of
//! the highest-numbered node form the tail of the buffer. That makes
//! [`push_node`](WeightedGraph::push_node) — appending one node with its
//! row of weights against every existing node — a pure `extend`, which is
//! what lets streaming blocks grow a cached similarity graph by one row
//! per ingested document instead of rebuilding the whole matrix.

/// A complete undirected weighted graph over `n` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    n: usize,
    /// Upper-triangular weights in colex order: entry for (i, j), i < j,
    /// at `j·(j−1)/2 + i`.
    weights: Vec<f64>,
}

impl WeightedGraph {
    /// A graph over `n` nodes with all weights zero.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            weights: vec![0.0; n * n.saturating_sub(1) / 2],
        }
    }

    /// Build by evaluating `f(i, j)` for every pair `i < j`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut weights = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for j in 1..n {
            for i in 0..j {
                weights.push(f(i, j));
            }
        }
        Self { n, weights }
    }

    /// Build by evaluating `f(i, j)` for every pair `i < j`, splitting the
    /// triangle into contiguous column runs of roughly equal edge count and
    /// filling each run on its own scoped worker thread.
    ///
    /// The thread count is explicit so callers can match it to their own
    /// scheduling (and tests can exercise the parallel path on any
    /// machine); `threads <= 1` falls back to the sequential build. The
    /// result is identical to [`from_fn`](Self::from_fn) for any pure `f`.
    pub fn from_fn_par(n: usize, threads: usize, f: impl Fn(usize, usize) -> f64 + Sync) -> Self {
        let edge_count = n * n.saturating_sub(1) / 2;
        let threads = threads.min(edge_count);
        if threads <= 1 {
            return Self::from_fn(n, f);
        }
        let mut weights = vec![0.0; edge_count];
        let target = edge_count.div_ceil(threads);
        std::thread::scope(|scope| {
            let f = &f;
            let mut rest: &mut [f64] = &mut weights;
            let mut first_col = 1usize;
            while first_col < n {
                // Column j holds j edges; take columns until the run
                // reaches the per-thread target.
                let mut end_col = first_col;
                let mut run_len = 0usize;
                while end_col < n && run_len < target {
                    run_len += end_col;
                    end_col += 1;
                }
                let (run, tail) = rest.split_at_mut(run_len);
                rest = tail;
                scope.spawn(move || {
                    let mut k = 0;
                    for j in first_col..end_col {
                        for i in 0..j {
                            run[k] = f(i, j);
                            k += 1;
                        }
                    }
                });
                first_col = end_col;
            }
        });
        Self { n, weights }
    }

    /// Append one node, with `row[i]` the weight of its edge to existing
    /// node `i`. O(n): the new node's edges are the tail of the colex
    /// buffer, so no existing entry moves.
    pub fn push_node(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.n,
            "push_node needs one weight per existing node"
        );
        self.weights.extend_from_slice(row);
        self.n += 1;
    }

    /// A graph with the same nodes and `f` applied to every edge weight.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Self {
        Self {
            n: self.n,
            weights: self.weights.iter().map(|&w| f(w)).collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a graph over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (unordered) edges, `n·(n−1)/2`.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n, "need i < j < n, got ({i}, {j})");
        j * (j - 1) / 2 + i
    }

    /// The weight of edge `{i, j}` (order-insensitive). Panics if `i == j`
    /// or out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i != j, "no self-edges in a pairwise similarity graph");
        let (i, j) = (i.min(j), i.max(j));
        self.weights[self.index(i, j)]
    }

    /// Set the weight of edge `{i, j}` (order-insensitive).
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        assert!(i != j, "no self-edges in a pairwise similarity graph");
        let (i, j) = (i.min(j), i.max(j));
        let idx = self.index(i, j);
        self.weights[idx] = w;
    }

    /// Iterate `(i, j, weight)` over all pairs `i < j` in lexicographic
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n)
            .flat_map(move |i| (i + 1..self.n).map(move |j| (i, j, self.weights[self.index(i, j)])))
    }

    /// All edge weights in colex order: pair `(i, j)` with `i < j`, sorted
    /// by `j` then `i` (the storage order; see the type docs).
    pub fn weight_values(&self) -> &[f64] {
        &self.weights
    }

    /// Mean edge weight, or 0 for graphs with fewer than 2 nodes.
    pub fn mean_weight(&self) -> f64 {
        if self.weights.is_empty() {
            0.0
        } else {
            self.weights.iter().sum::<f64>() / self.weights.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_indexing_is_bijective() {
        let n = 7;
        let g = WeightedGraph::new(n);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in i + 1..n {
                assert!(seen.insert(g.index(i, j)), "duplicate index for ({i},{j})");
            }
        }
        assert_eq!(seen.len(), g.edge_count());
        assert_eq!(*seen.iter().max().unwrap(), g.edge_count() - 1);
    }

    #[test]
    fn get_set_symmetry() {
        let mut g = WeightedGraph::new(4);
        g.set(2, 1, 0.75);
        assert_eq!(g.get(1, 2), 0.75);
        assert_eq!(g.get(2, 1), 0.75);
        assert_eq!(g.get(0, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "no self-edges")]
    fn rejects_self_edges() {
        WeightedGraph::new(3).get(1, 1);
    }

    #[test]
    fn from_fn_fills_all_pairs() {
        let g = WeightedGraph::from_fn(4, |i, j| (i + j) as f64);
        assert_eq!(g.get(0, 1), 1.0);
        assert_eq!(g.get(2, 3), 5.0);
        assert_eq!(g.edges().count(), 6);
    }

    #[test]
    fn edges_iterates_lexicographically() {
        let g = WeightedGraph::from_fn(3, |i, j| (10 * i + j) as f64);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (0, 2, 2.0), (1, 2, 12.0)]);
    }

    #[test]
    fn push_node_matches_batch_build() {
        let weight = |i: usize, j: usize| (100 * i + j) as f64;
        let n = 9;
        let batch = WeightedGraph::from_fn(n, weight);
        let mut grown = WeightedGraph::new(0);
        for j in 0..n {
            let row: Vec<f64> = (0..j).map(|i| weight(i, j)).collect();
            grown.push_node(&row);
        }
        assert_eq!(grown, batch);
    }

    #[test]
    #[should_panic(expected = "one weight per existing node")]
    fn push_node_rejects_wrong_row_length() {
        WeightedGraph::new(3).push_node(&[0.5]);
    }

    #[test]
    fn from_fn_par_matches_sequential_for_any_thread_count() {
        let weight = |i: usize, j: usize| 1.0 / (1.0 + (i * 31 + j) as f64);
        for n in [0usize, 1, 2, 3, 17, 64] {
            let sequential = WeightedGraph::from_fn(n, weight);
            for threads in [1usize, 2, 3, 4, 100] {
                let parallel = WeightedGraph::from_fn_par(n, threads, weight);
                assert_eq!(parallel, sequential, "n={n}, threads={threads}");
            }
        }
    }

    #[test]
    fn map_transforms_every_weight_in_place_order() {
        let g = WeightedGraph::from_fn(4, |i, j| (i + j) as f64);
        let doubled = g.map(|w| 2.0 * w);
        assert_eq!(doubled.len(), g.len());
        for (i, j, w) in g.edges() {
            assert_eq!(doubled.get(i, j), 2.0 * w);
        }
    }

    #[test]
    fn mean_weight() {
        let g = WeightedGraph::from_fn(3, |_, _| 0.5);
        assert!((g.mean_weight() - 0.5).abs() < 1e-12);
        assert_eq!(WeightedGraph::new(1).mean_weight(), 0.0);
        assert_eq!(WeightedGraph::new(0).mean_weight(), 0.0);
    }

    #[test]
    fn tiny_graphs() {
        assert!(WeightedGraph::new(0).is_empty());
        let g = WeightedGraph::new(1);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
    }
}
