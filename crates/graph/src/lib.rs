#![warn(missing_docs)]

//! # weber-graph
//!
//! Graph substrate for the entity-resolution framework.
//!
//! The paper models a block of documents as graphs over document nodes:
//!
//! - a complete **weighted graph** `G_w^{f_i}` per similarity function, whose
//!   edge weights are similarity values ([`WeightedGraph`]);
//! - a **decision graph** `G_{D_j}` per (function, decision-criterion) pair,
//!   whose edges assert "these two documents are the same person"
//!   ([`DecisionGraph`]);
//! - a **multigraph** overlaying the decision graphs with accuracy weights,
//!   from which a combined graph is derived ([`MultiGraph`]);
//! - the final **entity graph**, which must be a union of pairwise disjoint
//!   cliques because equivalence is transitive ([`entity`]).
//!
//! Clustering back-ends: transitive closure over connected components
//! ([`components`]) — the paper's default — correlation clustering
//! ([`correlation`]) as the alternative it also experimented with, and
//! greedy incremental clustering ([`incremental`]) as the related-work
//! baseline it contrasts against.

pub mod components;
pub mod correlation;
pub mod decision;
pub mod entity;
pub mod incremental;
pub mod multigraph;
pub mod online;
pub mod partition;
pub mod union_find;
pub mod weighted;

pub use components::connected_components;
pub use correlation::{correlation_cluster, CorrelationConfig};
pub use decision::DecisionGraph;
pub use entity::{clique_violations, is_clique_union};
pub use incremental::{incremental_cluster, Linkage};
pub use multigraph::MultiGraph;
pub use online::OnlinePartition;
pub use partition::Partition;
pub use union_find::UnionFind;
pub use weighted::WeightedGraph;
