//! Connected components / transitive closure clustering.
//!
//! The paper's default clustering: "In our recent implementation we compute
//! the transitive closure of the graph G_combined". Taking connected
//! components of the decision graph *is* the transitive closure of the
//! asserted equivalences.

use crate::decision::DecisionGraph;
use crate::partition::Partition;
use crate::union_find::UnionFind;

/// Partition the nodes of `g` into its connected components.
pub fn connected_components(g: &DecisionGraph) -> Partition {
    let mut uf = UnionFind::new(g.len());
    for (i, j) in g.edges() {
        uf.union(i, j);
    }
    uf.into_partition()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_singletons() {
        let g = DecisionGraph::new(4);
        let p = connected_components(&g);
        assert_eq!(p, Partition::singletons(4));
    }

    #[test]
    fn chain_becomes_one_component() {
        let mut g = DecisionGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let p = connected_components(&g);
        assert_eq!(p.cluster_count(), 1);
    }

    #[test]
    fn two_components() {
        let mut g = DecisionGraph::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let p = connected_components(&g);
        assert_eq!(p.labels(), &[0, 0, 1, 2, 2]);
    }

    #[test]
    fn closure_of_partition_graph_recovers_partition() {
        let truth = Partition::from_labels(vec![0, 1, 0, 2, 1, 0]);
        let g = DecisionGraph::from_partition(&truth);
        assert_eq!(connected_components(&g), truth);
    }

    #[test]
    fn zero_nodes() {
        let p = connected_components(&DecisionGraph::new(0));
        assert!(p.is_empty());
    }
}
