//! Partitions of a document block: the output of entity resolution and the
//! representation of ground truth.

use std::collections::HashMap;

/// A partition of `0..n` items into clusters, stored as per-item labels.
///
/// Labels are always canonicalised to first-occurrence order: the first item
/// has label 0, the first item not in cluster 0 has label 1, and so on. Two
/// `Partition`s are therefore equal iff they induce the same grouping,
/// regardless of how they were labelled originally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    labels: Vec<u32>,
    n_clusters: u32,
}

impl Partition {
    /// Build from arbitrary labels; canonicalises them.
    ///
    /// ```
    /// use weber_graph::Partition;
    ///
    /// // Label values do not matter, only the grouping:
    /// let a = Partition::from_labels(vec![7, 7, 3]);
    /// let b = Partition::from_labels(vec![0, 0, 1]);
    /// assert_eq!(a, b);
    /// assert_eq!(a.cluster_count(), 2);
    /// ```
    pub fn from_labels(raw: Vec<u32>) -> Self {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut labels = Vec::with_capacity(raw.len());
        for l in raw {
            let next = remap.len() as u32;
            let canon = *remap.entry(l).or_insert(next);
            labels.push(canon);
        }
        let n_clusters = remap.len() as u32;
        Self { labels, n_clusters }
    }

    /// Build from explicit clusters (item indices). Every index in `0..n`
    /// must appear exactly once; panics otherwise (programmer error).
    pub fn from_clusters(n: usize, clusters: &[Vec<usize>]) -> Self {
        let mut raw = vec![u32::MAX; n];
        for (label, cluster) in clusters.iter().enumerate() {
            for &item in cluster {
                assert!(
                    raw[item] == u32::MAX,
                    "item {item} appears in more than one cluster"
                );
                raw[item] = label as u32;
            }
        }
        assert!(
            raw.iter().all(|&l| l != u32::MAX),
            "every item in 0..{n} must be assigned to a cluster"
        );
        Self::from_labels(raw)
    }

    /// The partition where every item is its own cluster.
    pub fn singletons(n: usize) -> Self {
        Self::from_labels((0..n as u32).collect())
    }

    /// The partition with a single cluster containing everything.
    pub fn single_cluster(n: usize) -> Self {
        Self::from_labels(vec![0; n])
    }

    /// Per-item canonical labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for a partition of zero items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.n_clusters as usize
    }

    /// The label of `item`.
    pub fn label_of(&self, item: usize) -> u32 {
        self.labels[item]
    }

    /// True if `a` and `b` are in the same cluster.
    pub fn same_cluster(&self, a: usize, b: usize) -> bool {
        self.labels[a] == self.labels[b]
    }

    /// Materialise clusters as item-index lists, ordered by label.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.n_clusters as usize];
        for (item, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(item);
        }
        out
    }

    /// Sizes of the clusters, ordered by label.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters as usize];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Number of intra-cluster (positive) pairs.
    pub fn positive_pair_count(&self) -> usize {
        self.cluster_sizes().iter().map(|&s| s * (s - 1) / 2).sum()
    }

    /// Iterate all intra-cluster pairs `(i, j)` with `i < j`.
    pub fn positive_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.clusters().into_iter().flat_map(|c| {
            let mut pairs = Vec::with_capacity(c.len() * (c.len().saturating_sub(1)) / 2);
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    pairs.push((c[i].min(c[j]), c[i].max(c[j])));
                }
            }
            pairs
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalises_labels() {
        let a = Partition::from_labels(vec![7, 7, 3, 7, 3]);
        let b = Partition::from_labels(vec![0, 0, 1, 0, 1]);
        assert_eq!(a, b);
        assert_eq!(a.labels(), &[0, 0, 1, 0, 1]);
        assert_eq!(a.cluster_count(), 2);
    }

    #[test]
    fn from_clusters_roundtrip() {
        let p = Partition::from_clusters(5, &[vec![0, 2], vec![1], vec![3, 4]]);
        assert_eq!(p.clusters(), vec![vec![0, 2], vec![1], vec![3, 4]]);
        assert!(p.same_cluster(0, 2));
        assert!(!p.same_cluster(0, 1));
    }

    #[test]
    #[should_panic(expected = "appears in more than one cluster")]
    fn from_clusters_rejects_overlap() {
        Partition::from_clusters(3, &[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "must be assigned")]
    fn from_clusters_rejects_missing_items() {
        Partition::from_clusters(3, &[vec![0, 1]]);
    }

    #[test]
    fn singletons_and_single_cluster() {
        let s = Partition::singletons(4);
        assert_eq!(s.cluster_count(), 4);
        assert_eq!(s.positive_pair_count(), 0);
        let o = Partition::single_cluster(4);
        assert_eq!(o.cluster_count(), 1);
        assert_eq!(o.positive_pair_count(), 6);
    }

    #[test]
    fn cluster_sizes_and_pairs() {
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1]);
        assert_eq!(p.cluster_sizes(), vec![3, 2]);
        assert_eq!(p.positive_pair_count(), 3 + 1);
        let pairs: Vec<_> = p.positive_pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_labels(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.cluster_count(), 0);
        assert_eq!(p.positive_pair_count(), 0);
    }

    #[test]
    fn label_of_matches_labels() {
        let p = Partition::from_labels(vec![5, 9, 5]);
        assert_eq!(p.label_of(0), 0);
        assert_eq!(p.label_of(1), 1);
        assert_eq!(p.label_of(2), 0);
    }
}
