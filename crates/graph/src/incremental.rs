//! Incremental (sequential) clustering.
//!
//! The related-work baseline the paper contrasts itself with: "Many papers
//! suggest (for example \[2\]) incremental clustering-based methods" and the
//! Swoosh line of work (\[5\], \[7\]) that merges records "right away, as they
//! are found to be equivalent". Documents are processed in arrival order;
//! each joins the best-scoring existing cluster if its linkage score clears
//! the threshold, otherwise it founds a new cluster.
//!
//! Provided as an alternative clustering back-end and as the baseline for
//! the `ablation_clustering` study.

use crate::partition::Partition;
use crate::weighted::WeightedGraph;

/// How a document is scored against an existing cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Best single member (single linkage; merge-happy).
    Single,
    /// Mean over members (average linkage).
    Average,
    /// Worst single member (complete linkage; conservative).
    Complete,
}

impl Linkage {
    /// Combine member-wise link scores into one document-vs-cluster score.
    ///
    /// This is the linkage rule itself, decoupled from any graph storage so
    /// online/streaming callers can feed scores computed on the fly.
    /// Returns NaN for an empty iterator (a cluster always has members).
    pub fn combine_scores(&self, values: impl IntoIterator<Item = f64>) -> f64 {
        let values = values.into_iter();
        match self {
            Linkage::Single => values.fold(f64::NEG_INFINITY, f64::max),
            Linkage::Complete => values.fold(f64::INFINITY, f64::min),
            Linkage::Average => {
                let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
                sum / n as f64
            }
        }
    }

    fn score(&self, scores: &WeightedGraph, doc: usize, members: &[usize]) -> f64 {
        debug_assert!(!members.is_empty());
        self.combine_scores(members.iter().map(|&m| scores.get(doc, m)))
    }
}

/// Greedy sequential clustering over pairwise link scores.
///
/// Documents are visited in index order. Each document joins the existing
/// cluster with the highest linkage score, provided that score is at least
/// `threshold`; otherwise it starts a new cluster. Deterministic; ties go
/// to the earliest-founded cluster.
pub fn incremental_cluster(scores: &WeightedGraph, threshold: f64, linkage: Linkage) -> Partition {
    let n = scores.len();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut labels = Vec::with_capacity(n);
    for doc in 0..n {
        let mut best: Option<(usize, f64)> = None;
        for (c, members) in clusters.iter().enumerate() {
            let s = linkage.score(scores, doc, members);
            if s >= threshold && best.is_none_or(|(_, b)| s > b) {
                best = Some((c, s));
            }
        }
        match best {
            Some((c, _)) => {
                labels.push(c as u32);
                clusters[c].push(doc);
            }
            None => {
                labels.push(clusters.len() as u32);
                clusters.push(vec![doc]);
            }
        }
    }
    Partition::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores(n: usize, high: &[(usize, usize)]) -> WeightedGraph {
        WeightedGraph::from_fn(n, |i, j| {
            if high.contains(&(i, j)) || high.contains(&(j, i)) {
                0.9
            } else {
                0.1
            }
        })
    }

    #[test]
    fn recovers_clean_clusters_under_all_linkages() {
        let g = scores(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        for linkage in [Linkage::Single, Linkage::Average, Linkage::Complete] {
            let p = incremental_cluster(&g, 0.5, linkage);
            assert_eq!(
                p,
                Partition::from_labels(vec![0, 0, 0, 1, 1]),
                "{linkage:?}"
            );
        }
    }

    #[test]
    fn threshold_one_yields_singletons_when_scores_below() {
        let g = scores(4, &[(0, 1)]);
        let p = incremental_cluster(&g, 0.95, Linkage::Single);
        assert_eq!(p.cluster_count(), 4);
    }

    #[test]
    fn zero_threshold_lumps_everything() {
        let g = scores(4, &[]);
        let p = incremental_cluster(&g, 0.0, Linkage::Single);
        assert_eq!(p.cluster_count(), 1);
    }

    #[test]
    fn linkage_strictness_ordering() {
        // A chain 0-1-2 where (0,2) is low: single linkage merges all,
        // complete linkage keeps 2 out.
        let g = WeightedGraph::from_fn(3, |i, j| match (i, j) {
            (0, 1) | (1, 2) => 0.9,
            _ => 0.1,
        });
        let single = incremental_cluster(&g, 0.5, Linkage::Single);
        let complete = incremental_cluster(&g, 0.5, Linkage::Complete);
        assert_eq!(single.cluster_count(), 1);
        assert_eq!(complete.cluster_count(), 2);
        // Average sits between: (0.9 + 0.1)/2 = 0.5 >= 0.5 -> merges.
        let average = incremental_cluster(&g, 0.5, Linkage::Average);
        assert!(average.cluster_count() <= complete.cluster_count());
    }

    #[test]
    fn order_dependence_is_real_but_deterministic() {
        let g = scores(3, &[(0, 2)]);
        let a = incremental_cluster(&g, 0.5, Linkage::Average);
        let b = incremental_cluster(&g, 0.5, Linkage::Average);
        assert_eq!(a, b);
        assert!(a.same_cluster(0, 2));
        assert!(!a.same_cluster(0, 1));
    }

    #[test]
    fn empty_and_single() {
        assert!(incremental_cluster(&WeightedGraph::new(0), 0.5, Linkage::Single).is_empty());
        let p = incremental_cluster(&WeightedGraph::new(1), 0.5, Linkage::Single);
        assert_eq!(p.cluster_count(), 1);
    }

    #[test]
    fn ties_go_to_earliest_cluster() {
        // Doc 2 scores equally against cluster {0} and cluster {1}.
        let g = WeightedGraph::from_fn(3, |i, j| match (i, j) {
            (0, 2) | (1, 2) => 0.8,
            _ => 0.1,
        });
        let p = incremental_cluster(&g, 0.5, Linkage::Single);
        assert!(p.same_cluster(0, 2));
        assert!(!p.same_cluster(1, 2));
    }
}
