//! Disjoint-set forest with path compression and union by rank.

use crate::partition::Partition;

/// A union-find (disjoint-set) structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when constructed over zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently.
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression pass.
        let mut cur = x as u32;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root as usize
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = (ra as u32, rb as u32);
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
        self.sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Append a new element as its own singleton set; returns its index.
    ///
    /// This is the growth primitive for online clustering: arriving
    /// documents join the structure one at a time instead of requiring the
    /// element count up front.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.rank.push(0);
        self.sets += 1;
        id
    }

    /// Representative of `x`'s set without path compression (read-only).
    pub fn find_readonly(&self, x: usize) -> usize {
        let mut root = x as u32;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        root as usize
    }

    /// Snapshot of the partition induced by the current sets, with
    /// canonical (first-occurrence) labels. Does not compress paths.
    pub fn to_partition(&self) -> Partition {
        let labels: Vec<u32> = (0..self.parent.len())
            .map(|i| self.find_readonly(i) as u32)
            .collect();
        Partition::from_labels(labels)
    }

    /// Extract the partition induced by the current sets, with canonical
    /// (first-occurrence) labels.
    pub fn into_partition(mut self) -> Partition {
        let n = self.parent.len();
        let labels: Vec<u32> = (0..n).map(|i| self.find(i) as u32).collect();
        Partition::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.set_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.find(3), 3);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already merged
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn transitivity_through_chains() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.connected(0, 7));
    }

    #[test]
    fn into_partition_has_canonical_labels() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 4);
        uf.union(0, 2);
        let p = uf.into_partition();
        // first-occurrence labelling: 0->0, 1->1, 2->0, 3->2, 4->2
        assert_eq!(p.labels(), &[0, 1, 0, 2, 2]);
        assert_eq!(p.cluster_count(), 3);
    }

    #[test]
    fn push_grows_with_singletons() {
        let mut uf = UnionFind::new(2);
        uf.union(0, 1);
        let c = uf.push();
        assert_eq!(c, 2);
        assert_eq!(uf.set_count(), 2);
        assert!(!uf.connected(0, 2));
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.push(), 3);
        assert_eq!(uf.len(), 4);
    }

    #[test]
    fn to_partition_matches_into_partition() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let snap = uf.to_partition();
        assert_eq!(uf.find_readonly(3), uf.find(3));
        assert_eq!(snap, uf.into_partition());
    }

    #[test]
    fn empty_union_find() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.set_count(), 0);
        assert!(uf.into_partition().labels().is_empty());
    }
}
