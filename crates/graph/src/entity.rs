//! Entity-graph invariants.
//!
//! "The entity graph has very specific properties: it is not a connected
//! graph, it is a union of pairwise disjunct connected components and each
//! component is a clique" (§II). These helpers verify and quantify that
//! property for a decision graph.

use crate::components::connected_components;
use crate::decision::DecisionGraph;

/// True if every connected component of `g` is a complete subgraph, i.e.
/// `g` is a valid (transitively closed) entity graph.
pub fn is_clique_union(g: &DecisionGraph) -> bool {
    clique_violations(g) == 0
}

/// Number of node pairs that are in the same connected component but not
/// directly connected — the count of transitivity violations.
pub fn clique_violations(g: &DecisionGraph) -> usize {
    let p = connected_components(g);
    p.positive_pairs()
        .filter(|&(i, j)| !g.has_edge(i, j))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;

    #[test]
    fn partition_graphs_are_clique_unions() {
        let p = Partition::from_labels(vec![0, 0, 1, 0, 1, 2]);
        let g = DecisionGraph::from_partition(&p);
        assert!(is_clique_union(&g));
        assert_eq!(clique_violations(&g), 0);
    }

    #[test]
    fn chain_violates_cliqueness() {
        let mut g = DecisionGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!is_clique_union(&g));
        assert_eq!(clique_violations(&g), 1); // (0, 2) missing
    }

    #[test]
    fn empty_graph_is_trivially_valid() {
        assert!(is_clique_union(&DecisionGraph::new(5)));
        assert!(is_clique_union(&DecisionGraph::new(0)));
    }

    #[test]
    fn star_counts_all_missing_leaf_pairs() {
        let mut g = DecisionGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        // leaves {1,2,3} pairwise unconnected -> 3 violations.
        assert_eq!(clique_violations(&g), 3);
    }
}
