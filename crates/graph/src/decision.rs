//! Decision graphs: unweighted graphs whose edges assert that two documents
//! refer to the same person (`G_{D_j}` in the paper).

use crate::partition::Partition;
use crate::weighted::WeightedGraph;

/// An undirected graph over `n` nodes storing presence/absence of edges as a
/// bitset over the upper triangle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionGraph {
    n: usize,
    bits: Vec<u64>,
    edges: usize,
}

impl DecisionGraph {
    /// The empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        let pairs = n * n.saturating_sub(1) / 2;
        Self {
            n,
            bits: vec![0; pairs.div_ceil(64)],
            edges: 0,
        }
    }

    /// Derive a decision graph from a weighted graph by a predicate on
    /// `(i, j, weight)`.
    pub fn from_weighted(
        g: &WeightedGraph,
        mut keep: impl FnMut(usize, usize, f64) -> bool,
    ) -> Self {
        let mut d = Self::new(g.len());
        for (i, j, w) in g.edges() {
            if keep(i, j, w) {
                d.add_edge(i, j);
            }
        }
        d
    }

    /// The graph containing every intra-cluster edge of `p` (a clique per
    /// cluster) — the entity graph of a known resolution.
    pub fn from_partition(p: &Partition) -> Self {
        let mut d = Self::new(p.len());
        for (i, j) in p.positive_pairs() {
            d.add_edge(i, j);
        }
        d
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a graph over zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        i * (2 * self.n - i - 1) / 2 + (j - i - 1)
    }

    /// True if edge `{i, j}` is present (order-insensitive).
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (i, j) = (i.min(j), i.max(j));
        let idx = self.index(i, j);
        self.bits[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Add edge `{i, j}`; returns true if it was new. Self-edges are ignored.
    pub fn add_edge(&mut self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (i, j) = (i.min(j), i.max(j));
        let idx = self.index(i, j);
        let mask = 1u64 << (idx % 64);
        if self.bits[idx / 64] & mask != 0 {
            return false;
        }
        self.bits[idx / 64] |= mask;
        self.edges += 1;
        true
    }

    /// Remove edge `{i, j}`; returns true if it was present.
    pub fn remove_edge(&mut self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (i, j) = (i.min(j), i.max(j));
        let idx = self.index(i, j);
        let mask = 1u64 << (idx % 64);
        if self.bits[idx / 64] & mask == 0 {
            return false;
        }
        self.bits[idx / 64] &= !mask;
        self.edges -= 1;
        true
    }

    /// Iterate present edges `(i, j)` with `i < j`, lexicographically.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n)
            .flat_map(move |i| (i + 1..self.n).map(move |j| (i, j)))
            .filter(move |&(i, j)| self.has_edge(i, j))
    }

    /// Neighbours of node `i`.
    pub fn neighbours(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&j| j != i && self.has_edge(i, j))
    }

    /// Fraction of node pairs connected by an edge (0 for n < 2).
    pub fn density(&self) -> f64 {
        let pairs = self.n * self.n.saturating_sub(1) / 2;
        if pairs == 0 {
            0.0
        } else {
            self.edges as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_has() {
        let mut d = DecisionGraph::new(4);
        assert!(d.add_edge(0, 2));
        assert!(!d.add_edge(2, 0)); // symmetric duplicate
        assert!(d.has_edge(2, 0));
        assert_eq!(d.edge_count(), 1);
        assert!(d.remove_edge(0, 2));
        assert!(!d.remove_edge(0, 2));
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn self_edges_are_noops() {
        let mut d = DecisionGraph::new(3);
        assert!(!d.add_edge(1, 1));
        assert!(!d.has_edge(1, 1));
        assert_eq!(d.edge_count(), 0);
    }

    #[test]
    fn from_weighted_applies_threshold() {
        let g = WeightedGraph::from_fn(3, |i, j| if (i, j) == (0, 1) { 0.9 } else { 0.1 });
        let d = DecisionGraph::from_weighted(&g, |_, _, w| w >= 0.5);
        assert!(d.has_edge(0, 1));
        assert!(!d.has_edge(0, 2));
        assert_eq!(d.edge_count(), 1);
    }

    #[test]
    fn from_partition_builds_cliques() {
        let p = Partition::from_labels(vec![0, 0, 0, 1, 1]);
        let d = DecisionGraph::from_partition(&p);
        assert_eq!(d.edge_count(), 4);
        assert!(d.has_edge(0, 2));
        assert!(d.has_edge(3, 4));
        assert!(!d.has_edge(2, 3));
    }

    #[test]
    fn edges_and_neighbours() {
        let mut d = DecisionGraph::new(4);
        d.add_edge(0, 1);
        d.add_edge(1, 3);
        let es: Vec<_> = d.edges().collect();
        assert_eq!(es, vec![(0, 1), (1, 3)]);
        let ns: Vec<_> = d.neighbours(1).collect();
        assert_eq!(ns, vec![0, 3]);
    }

    #[test]
    fn density() {
        let mut d = DecisionGraph::new(3);
        assert_eq!(d.density(), 0.0);
        d.add_edge(0, 1);
        assert!((d.density() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(DecisionGraph::new(1).density(), 0.0);
    }

    #[test]
    fn large_graph_bitset_indexing() {
        // Cross the 64-bit word boundary.
        let mut d = DecisionGraph::new(20); // 190 pairs -> 3 words
        for i in 0..20 {
            for j in (i + 1)..20 {
                assert!(d.add_edge(i, j));
            }
        }
        assert_eq!(d.edge_count(), 190);
        assert_eq!(d.edges().count(), 190);
    }
}
