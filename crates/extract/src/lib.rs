#![warn(missing_docs)]

//! # weber-extract
//!
//! Information extraction over web-page text: the substitute for the
//! commercial stack the paper calls out ("alchemy API" for named entities,
//! "GATE"/"openCalais" for organizations and locations, "semhacker" for
//! wikipedia-based concepts).
//!
//! The paper itself uses *dictionary-based* named entity recognition, which
//! is exactly what this crate implements:
//!
//! - [`gazetteer`] — typed dictionaries of known entities;
//! - [`trie`] — a token-level trie for longest-match multi-word lookup;
//! - [`ner`] — the recogniser that scans analyzed text against gazetteers;
//! - [`concepts`] — weighted wikipedia-style concept vectors;
//! - [`url`] — URL normalisation and domain features;
//! - [`features`] — the [`PageFeatures`] record
//!   consumed by the similarity functions;
//! - [`pipeline`] — the end-to-end [`Extractor`].

pub mod concepts;
pub mod features;
pub mod gazetteer;
pub mod html;
pub mod ner;
pub mod pipeline;
pub mod trie;
pub mod url;

pub use concepts::ConceptTagger;
pub use features::PageFeatures;
pub use gazetteer::{EntityKind, Gazetteer, GazetteerEntry};
pub use html::html_to_text;
pub use ner::{EntityMention, Recognizer};
pub use pipeline::Extractor;
pub use trie::TokenTrie;
pub use url::UrlFeatures;
