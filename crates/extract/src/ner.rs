//! Dictionary-based named entity recognition.
//!
//! A [`Recognizer`] compiles a [`Gazetteer`] into a [`TokenTrie`] and scans
//! page text for entity mentions. Matching is case-insensitive and
//! token-based; the longest phrase starting at each token wins.

use weber_textindex::token::tokenize;

use crate::gazetteer::{EntityKind, Gazetteer};
use crate::trie::TokenTrie;

/// One recognised entity mention in a page.
#[derive(Debug, Clone, PartialEq)]
pub struct EntityMention {
    /// Canonical entity name from the gazetteer.
    pub canonical: String,
    /// Entity type.
    pub kind: EntityKind,
    /// Specificity weight of the matched entry.
    pub weight: f64,
    /// Token span (start, end) of the mention.
    pub span: (usize, usize),
}

/// A compiled dictionary recogniser.
///
/// ```
/// use weber_extract::gazetteer::{EntityKind, Gazetteer};
/// use weber_extract::ner::Recognizer;
///
/// let mut g = Gazetteer::new();
/// g.add_phrases(EntityKind::Person, ["William Cohen"]);
/// let r = Recognizer::compile(&g);
/// let mentions = r.recognize("A page about william cohen.");
/// assert_eq!(mentions[0].canonical, "William Cohen");
/// ```
#[derive(Debug, Clone)]
pub struct Recognizer {
    trie: TokenTrie,
    /// Payloads index into this table.
    catalog: Vec<(String, EntityKind, f64)>,
}

impl Recognizer {
    /// Compile a gazetteer. Phrases are tokenised with the same tokenizer
    /// used on page text, so matching is consistent.
    pub fn compile(gazetteer: &Gazetteer) -> Self {
        let mut trie = TokenTrie::new();
        let mut catalog = Vec::with_capacity(gazetteer.len());
        for entry in gazetteer.entries() {
            let tokens = tokenize(&entry.phrase);
            let toks: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
            if toks.is_empty() {
                continue;
            }
            let payload = catalog.len() as u32;
            catalog.push((entry.canonical.clone(), entry.kind, entry.weight));
            trie.insert(&toks, payload);
        }
        Self { trie, catalog }
    }

    /// Recognise all entity mentions in `text`.
    pub fn recognize(&self, text: &str) -> Vec<EntityMention> {
        let tokens = tokenize(text);
        let toks: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        self.trie
            .scan(&toks)
            .into_iter()
            .flat_map(|m| {
                let span = (m.start, m.end);
                m.payloads.into_iter().map(move |p| {
                    let (canonical, kind, weight) = &self.catalog[p as usize];
                    EntityMention {
                        canonical: canonical.clone(),
                        kind: *kind,
                        weight: *weight,
                        span,
                    }
                })
            })
            .collect()
    }

    /// Recognise and keep only mentions of one kind.
    pub fn recognize_kind(&self, text: &str, kind: EntityKind) -> Vec<EntityMention> {
        self.recognize(text)
            .into_iter()
            .filter(|m| m.kind == kind)
            .collect()
    }

    /// Number of compiled dictionary entries.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// True when compiled from an empty gazetteer.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::GazetteerEntry;

    fn recognizer() -> Recognizer {
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Person, ["William Cohen", "Andrew McCallum"]);
        g.add_phrases(
            EntityKind::Organization,
            ["Carnegie Mellon University", "EPFL"],
        );
        g.add_phrases(EntityKind::Location, ["Pittsburgh"]);
        g.add(GazetteerEntry::simple("machine learning", EntityKind::Concept).with_weight(0.6));
        Recognizer::compile(&g)
    }

    #[test]
    fn finds_multiword_entities_case_insensitively() {
        let r = recognizer();
        let ms =
            r.recognize("WILLIAM COHEN works on Machine Learning at Carnegie Mellon University.");
        let canon: Vec<&str> = ms.iter().map(|m| m.canonical.as_str()).collect();
        assert_eq!(
            canon,
            [
                "William Cohen",
                "machine learning",
                "Carnegie Mellon University"
            ]
        );
    }

    #[test]
    fn kinds_and_weights_are_preserved() {
        let r = recognizer();
        let ms = r.recognize("machine learning in Pittsburgh");
        assert_eq!(ms[0].kind, EntityKind::Concept);
        assert_eq!(ms[0].weight, 0.6);
        assert_eq!(ms[1].kind, EntityKind::Location);
        assert_eq!(ms[1].weight, 1.0);
    }

    #[test]
    fn recognize_kind_filters() {
        let r = recognizer();
        let text = "Andrew McCallum met William Cohen at EPFL.";
        let persons = r.recognize_kind(text, EntityKind::Person);
        assert_eq!(persons.len(), 2);
        let orgs = r.recognize_kind(text, EntityKind::Organization);
        assert_eq!(orgs.len(), 1);
        assert_eq!(orgs[0].canonical, "EPFL");
    }

    #[test]
    fn repeated_mentions_are_all_reported() {
        let r = recognizer();
        let ms = r.recognize_kind("EPFL and EPFL and EPFL", EntityKind::Organization);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn spans_point_at_tokens() {
        let r = recognizer();
        let ms = r.recognize("visit Carnegie Mellon University today");
        assert_eq!(ms[0].span, (1, 4));
    }

    #[test]
    fn punctuation_does_not_block_matching() {
        let r = recognizer();
        let ms = r.recognize("…William Cohen, (EPFL)!");
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn no_entities_in_unrelated_text() {
        let r = recognizer();
        assert!(r.recognize("completely unrelated words here").is_empty());
    }

    #[test]
    fn empty_recognizer() {
        let r = Recognizer::compile(&Gazetteer::new());
        assert!(r.is_empty());
        assert!(r.recognize("anything at all").is_empty());
    }
}
