//! Wikipedia-style weighted concept extraction (the SemanticHacker
//! substitute).
//!
//! A [`ConceptTagger`] recognises concept mentions from a concept gazetteer
//! and produces two representations per page:
//!
//! - a **weighted concept vector** over a shared concept vocabulary, where
//!   each mention contributes its entry's specificity weight (feeds F1,
//!   "Weighted Concept Vector — Cosine Similarity");
//! - the **concept set** of canonical concepts (feeds F4, "Concepts Vector
//!   — Number of overlapping concepts").

use std::collections::BTreeSet;
use std::sync::RwLock;

use weber_textindex::sparse::SparseVector;
use weber_textindex::vocab::Vocabulary;

use crate::gazetteer::{EntityKind, Gazetteer};
use crate::ner::Recognizer;

/// A page's concept representation.
#[derive(Debug, Clone, PartialEq)]
pub struct ConceptProfile {
    /// Weighted concept vector over the tagger's concept vocabulary.
    pub weighted: SparseVector,
    /// Canonical concept names present on the page.
    pub concepts: BTreeSet<String>,
}

/// Recognises concepts and maintains a shared concept vocabulary so that
/// vectors from different pages are comparable.
#[derive(Debug)]
pub struct ConceptTagger {
    recognizer: Recognizer,
    vocab: RwLock<Vocabulary>,
}

impl ConceptTagger {
    /// Build from a gazetteer; only `Concept` entries are used.
    pub fn new(gazetteer: &Gazetteer) -> Self {
        let mut concepts_only = Gazetteer::new();
        for e in gazetteer.of_kind(EntityKind::Concept) {
            concepts_only.add(e.clone());
        }
        Self {
            recognizer: Recognizer::compile(&concepts_only),
            vocab: RwLock::new(Vocabulary::new()),
        }
    }

    /// Tag a page's text.
    pub fn tag(&self, text: &str) -> ConceptProfile {
        let mentions = self.recognizer.recognize(text);
        let mut vocab = self.vocab.write().expect("concept vocabulary poisoned");
        let mut pairs = Vec::with_capacity(mentions.len());
        let mut concepts = BTreeSet::new();
        for m in mentions {
            let id = vocab.intern(&m.canonical);
            pairs.push((id, m.weight));
            concepts.insert(m.canonical);
        }
        ConceptProfile {
            weighted: SparseVector::from_pairs(pairs),
            concepts,
        }
    }

    /// Number of distinct concepts interned so far.
    pub fn vocabulary_size(&self) -> usize {
        self.vocab
            .read()
            .expect("concept vocabulary poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::GazetteerEntry;

    fn tagger() -> ConceptTagger {
        let mut g = Gazetteer::new();
        g.add(GazetteerEntry::simple("machine learning", EntityKind::Concept).with_weight(0.8));
        g.add(GazetteerEntry::simple("databases", EntityKind::Concept).with_weight(0.5));
        g.add_phrases(EntityKind::Person, ["Some Person"]); // must be ignored
        ConceptTagger::new(&g)
    }

    #[test]
    fn tags_concepts_with_weights() {
        let t = tagger();
        let p = t.tag("Machine learning and databases and machine learning.");
        assert_eq!(p.concepts.len(), 2);
        assert!(p.concepts.contains("machine learning"));
        // Two mentions at weight 0.8 plus one at 0.5.
        let total: f64 = p.weighted.entries().iter().map(|&(_, w)| w).sum();
        assert!((total - (0.8 * 2.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn non_concept_entries_are_ignored() {
        let t = tagger();
        let p = t.tag("Some Person studies nothing.");
        assert!(p.concepts.is_empty());
        assert!(p.weighted.is_empty());
    }

    #[test]
    fn vectors_share_a_vocabulary() {
        let t = tagger();
        let a = t.tag("databases");
        let b = t.tag("databases and machine learning");
        assert!(a.weighted.cosine(&b.weighted) > 0.0);
        assert_eq!(t.vocabulary_size(), 2);
    }

    #[test]
    fn disjoint_pages_have_zero_cosine() {
        let t = tagger();
        let a = t.tag("machine learning");
        let b = t.tag("databases");
        assert_eq!(a.weighted.cosine(&b.weighted), 0.0);
    }

    #[test]
    fn empty_text() {
        let t = tagger();
        let p = t.tag("");
        assert!(p.concepts.is_empty());
        assert!(p.weighted.is_empty());
    }
}
