//! Typed entity dictionaries (gazetteers).

use serde::{Deserialize, Serialize};

/// The entity types the paper's similarity functions consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntityKind {
    /// A person name (feeds F3, F6, F7).
    Person,
    /// An organization (feeds F5).
    Organization,
    /// A location (extracted alongside organizations, per the paper).
    Location,
    /// A wikipedia-style concept (feeds F1, F4).
    Concept,
}

/// One dictionary entry: a surface phrase mapping to a canonical entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GazetteerEntry {
    /// The surface form to match (tokenised case-insensitively).
    pub phrase: String,
    /// Canonical entity name (surface forms may alias).
    pub canonical: String,
    /// Entity type.
    pub kind: EntityKind,
    /// Specificity weight in `(0, 1]`; rare, specific entries get higher
    /// weights (used by the weighted concept vector of F1).
    pub weight: f64,
}

impl GazetteerEntry {
    /// An entry whose surface form is its canonical name, with weight 1.
    pub fn simple(phrase: impl Into<String>, kind: EntityKind) -> Self {
        let phrase = phrase.into();
        Self {
            canonical: phrase.clone(),
            phrase,
            kind,
            weight: 1.0,
        }
    }

    /// Override the canonical form (for aliases).
    pub fn with_canonical(mut self, canonical: impl Into<String>) -> Self {
        self.canonical = canonical.into();
        self
    }

    /// Override the specificity weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }
}

/// A collection of gazetteer entries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Gazetteer {
    entries: Vec<GazetteerEntry>,
}

impl Gazetteer {
    /// An empty gazetteer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from entries.
    pub fn from_entries(entries: Vec<GazetteerEntry>) -> Self {
        Self { entries }
    }

    /// Add one entry.
    pub fn add(&mut self, entry: GazetteerEntry) {
        self.entries.push(entry);
    }

    /// Add a batch of simple same-kind phrases.
    pub fn add_phrases<I, S>(&mut self, kind: EntityKind, phrases: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for p in phrases {
            self.add(GazetteerEntry::simple(p, kind));
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[GazetteerEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another gazetteer's entries into this one.
    pub fn extend(&mut self, other: &Gazetteer) {
        self.entries.extend_from_slice(&other.entries);
    }

    /// Entries of one kind.
    pub fn of_kind(&self, kind: EntityKind) -> impl Iterator<Item = &GazetteerEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_entry_defaults() {
        let e = GazetteerEntry::simple("EPFL", EntityKind::Organization);
        assert_eq!(e.canonical, "EPFL");
        assert_eq!(e.weight, 1.0);
    }

    #[test]
    fn builder_overrides() {
        let e = GazetteerEntry::simple("Big Blue", EntityKind::Organization)
            .with_canonical("IBM")
            .with_weight(0.7);
        assert_eq!(e.canonical, "IBM");
        assert_eq!(e.weight, 0.7);
        assert_eq!(e.phrase, "Big Blue");
    }

    #[test]
    fn add_phrases_and_filter_by_kind() {
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Person, ["William Cohen", "Andrew McCallum"]);
        g.add_phrases(EntityKind::Concept, ["machine learning"]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.of_kind(EntityKind::Person).count(), 2);
        assert_eq!(g.of_kind(EntityKind::Concept).count(), 1);
        assert_eq!(g.of_kind(EntityKind::Location).count(), 0);
    }

    #[test]
    fn extend_merges() {
        let mut a = Gazetteer::new();
        a.add_phrases(EntityKind::Location, ["Zurich"]);
        let mut b = Gazetteer::new();
        b.add_phrases(EntityKind::Location, ["Lausanne"]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut g = Gazetteer::new();
        g.add(
            GazetteerEntry::simple("information retrieval", EntityKind::Concept).with_weight(0.4),
        );
        let json = serde_json::to_string(&g).unwrap();
        let back: Gazetteer = serde_json::from_str(&json).unwrap();
        assert_eq!(back.entries(), g.entries());
    }
}
