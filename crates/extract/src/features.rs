//! The extracted per-page feature record consumed by the similarity
//! functions (Table I of the paper).

use std::collections::BTreeSet;
use std::collections::HashMap;

use weber_textindex::sparse::SparseVector;
use weber_textindex::vocab::TermId;

use crate::url::UrlFeatures;

/// Everything the similarity functions need to know about one web page.
///
/// "As a preprocessing step we apply information extraction tools, so the
/// input to the similarity functions is the extracted information and not
/// the pages themselves." (§III)
#[derive(Debug, Clone, Default)]
pub struct PageFeatures {
    /// Parsed URL, if the page had a usable one (feeds F2).
    pub url: Option<UrlFeatures>,
    /// Weighted wikipedia-style concept vector (feeds F1).
    pub weighted_concepts: SparseVector,
    /// Canonical concept set (feeds F4).
    pub concepts: BTreeSet<String>,
    /// Organization entities (feeds F5).
    pub organizations: BTreeSet<String>,
    /// Location entities (extracted alongside organizations).
    pub locations: BTreeSet<String>,
    /// Every person-name mention with its count (feeds F3, F6, F7).
    pub person_counts: HashMap<String, u32>,
    /// Analyzed word tokens (term ids in the extractor's shared
    /// vocabulary); TF-IDF vectors for F8–F10 are built per block from
    /// these.
    pub tokens: Vec<TermId>,
}

impl PageFeatures {
    /// The most frequent person name on the page (feeds F3: "Most frequent
    /// name on the page"). Ties break lexicographically for determinism.
    pub fn most_frequent_person(&self) -> Option<&str> {
        self.person_counts
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(name, _)| name.as_str())
    }

    /// Distinct person names on the page.
    pub fn person_names(&self) -> impl Iterator<Item = &str> {
        self.person_counts.keys().map(String::as_str)
    }

    /// Person names except the given one (the ambiguous query name) —
    /// "Other Person-Names on the page", feeding F6.
    pub fn other_person_names<'a>(&'a self, except: &'a str) -> BTreeSet<&'a str> {
        self.person_counts
            .keys()
            .map(String::as_str)
            .filter(move |&n| !n.eq_ignore_ascii_case(except))
            .collect()
    }

    /// Merge two pages' features into one profile — the record-merge step
    /// of Swoosh-style generic entity resolution (the paper's related work
    /// \[5\]/\[7\]): entity sets union, concept vectors add, token streams
    /// concatenate, person counts sum; the URL keeps the first page's when
    /// present (a merged profile spans several pages, so any single URL is
    /// only a representative).
    pub fn merge(&self, other: &PageFeatures) -> PageFeatures {
        let mut person_counts = self.person_counts.clone();
        for (name, count) in &other.person_counts {
            *person_counts.entry(name.clone()).or_insert(0) += count;
        }
        let mut tokens = self.tokens.clone();
        tokens.extend_from_slice(&other.tokens);
        PageFeatures {
            url: self.url.clone().or_else(|| other.url.clone()),
            weighted_concepts: self.weighted_concepts.add(&other.weighted_concepts),
            concepts: self.concepts.union(&other.concepts).cloned().collect(),
            organizations: self
                .organizations
                .union(&other.organizations)
                .cloned()
                .collect(),
            locations: self.locations.union(&other.locations).cloned().collect(),
            person_counts,
            tokens,
        }
    }

    /// True when the page carries no extracted signal at all.
    pub fn is_blank(&self) -> bool {
        self.url.is_none()
            && self.weighted_concepts.is_empty()
            && self.concepts.is_empty()
            && self.organizations.is_empty()
            && self.locations.is_empty()
            && self.person_counts.is_empty()
            && self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_persons(pairs: &[(&str, u32)]) -> PageFeatures {
        PageFeatures {
            person_counts: pairs.iter().map(|&(n, c)| (n.to_string(), c)).collect(),
            ..Default::default()
        }
    }

    #[test]
    fn most_frequent_person_by_count() {
        let f = with_persons(&[("William Cohen", 5), ("Jamie Callan", 2)]);
        assert_eq!(f.most_frequent_person(), Some("William Cohen"));
    }

    #[test]
    fn most_frequent_person_breaks_ties_deterministically() {
        let f = with_persons(&[("Bob", 3), ("Alice", 3)]);
        assert_eq!(f.most_frequent_person(), Some("Alice"));
    }

    #[test]
    fn other_person_names_excludes_query_name() {
        let f = with_persons(&[("William Cohen", 1), ("Tom Mitchell", 1)]);
        let others = f.other_person_names("william cohen");
        assert_eq!(others.into_iter().collect::<Vec<_>>(), vec!["Tom Mitchell"]);
    }

    #[test]
    fn blank_detection() {
        assert!(PageFeatures::default().is_blank());
        assert!(!with_persons(&[("X Y", 1)]).is_blank());
    }

    #[test]
    fn empty_page_has_no_most_frequent_person() {
        assert_eq!(PageFeatures::default().most_frequent_person(), None);
    }

    #[test]
    fn merge_unions_sets_and_sums_counts() {
        let mut a = with_persons(&[("William Cohen", 2)]);
        a.organizations.insert("CMU".into());
        a.concepts.insert("learning".into());
        let mut b = with_persons(&[("William Cohen", 1), ("Tom Mitchell", 1)]);
        b.organizations.insert("Google".into());
        b.locations.insert("Pittsburgh".into());
        let m = a.merge(&b);
        assert_eq!(m.person_counts["William Cohen"], 3);
        assert_eq!(m.person_counts["Tom Mitchell"], 1);
        assert!(m.organizations.contains("CMU") && m.organizations.contains("Google"));
        assert!(m.concepts.contains("learning"));
        assert!(m.locations.contains("Pittsburgh"));
    }

    #[test]
    fn merge_prefers_first_url_and_concatenates_tokens() {
        use crate::url::UrlFeatures;
        use weber_textindex::vocab::TermId;
        let mut a = PageFeatures {
            tokens: vec![TermId(1), TermId(2)],
            ..Default::default()
        };
        let b = PageFeatures {
            url: UrlFeatures::parse("http://example.org/x"),
            tokens: vec![TermId(3)],
            ..Default::default()
        };
        // a has no URL: take b's.
        assert_eq!(a.merge(&b).url, b.url);
        // a has a URL: keep it.
        a.url = UrlFeatures::parse("http://epfl.ch/y");
        assert_eq!(a.merge(&b).url, a.url);
        assert_eq!(a.merge(&b).tokens, vec![TermId(1), TermId(2), TermId(3)]);
    }

    #[test]
    fn merge_is_blank_preserving() {
        let blank = PageFeatures::default();
        assert!(blank.merge(&blank).is_blank());
        let a = with_persons(&[("X Y", 1)]);
        assert!(!a.merge(&blank).is_blank());
    }

    #[test]
    fn merge_adds_weighted_concepts() {
        use weber_textindex::sparse::SparseVector;
        use weber_textindex::vocab::TermId;
        let a = PageFeatures {
            weighted_concepts: SparseVector::from_pairs(vec![(TermId(0), 0.5)]),
            ..Default::default()
        };
        let b = PageFeatures {
            weighted_concepts: SparseVector::from_pairs(vec![(TermId(0), 0.25)]),
            ..Default::default()
        };
        assert_eq!(a.merge(&b).weighted_concepts.get(TermId(0)), 0.75);
    }
}
