//! A token-level trie for longest-match multi-word dictionary lookup.
//!
//! Gazetteer phrases are tokenised; matching scans a token sequence and at
//! each position finds the longest phrase starting there (like GATE's
//! gazetteer processing resource).

use std::collections::HashMap;

/// A trie over token strings, mapping complete phrases to payload indices.
#[derive(Debug, Clone, Default)]
pub struct TokenTrie {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Default)]
struct Node {
    children: HashMap<String, u32>,
    /// Payload indices of phrases ending at this node (aliases may share a
    /// surface form).
    terminals: Vec<u32>,
}

/// A phrase match: which payloads matched and the token span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrieMatch {
    /// Payload indices supplied at insert time.
    pub payloads: Vec<u32>,
    /// First token index of the match.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl TokenTrie {
    /// An empty trie.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::default()],
        }
    }

    /// Insert a phrase (already tokenised, lowercase) with a payload index.
    /// Empty phrases are ignored.
    pub fn insert(&mut self, tokens: &[&str], payload: u32) {
        if tokens.is_empty() {
            return;
        }
        let mut cur = 0usize;
        for &tok in tokens {
            let next = match self.nodes[cur].children.get(tok) {
                Some(&n) => n as usize,
                None => {
                    let n = self.nodes.len() as u32;
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(tok.to_string(), n);
                    n as usize
                }
            };
            cur = next;
        }
        self.nodes[cur].terminals.push(payload);
    }

    /// Longest match starting exactly at `tokens[start]`.
    pub fn longest_match_at(&self, tokens: &[&str], start: usize) -> Option<TrieMatch> {
        let mut cur = 0usize;
        let mut best: Option<(usize, &[u32])> = None;
        for (offset, &tok) in tokens[start..].iter().enumerate() {
            match self.nodes[cur].children.get(tok) {
                Some(&n) => {
                    cur = n as usize;
                    if !self.nodes[cur].terminals.is_empty() {
                        best = Some((start + offset + 1, &self.nodes[cur].terminals));
                    }
                }
                None => break,
            }
        }
        best.map(|(end, payloads)| TrieMatch {
            payloads: payloads.to_vec(),
            start,
            end,
        })
    }

    /// Scan the whole token sequence, greedily taking the longest match at
    /// each position and resuming after it (non-overlapping matches).
    pub fn scan(&self, tokens: &[&str]) -> Vec<TrieMatch> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            match self.longest_match_at(tokens, i) {
                Some(m) => {
                    i = m.end;
                    out.push(m);
                }
                None => i += 1,
            }
        }
        out
    }

    /// Number of trie nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(phrases: &[(&str, u32)]) -> TokenTrie {
        let mut t = TokenTrie::new();
        for &(p, id) in phrases {
            let toks: Vec<&str> = p.split_whitespace().collect();
            t.insert(&toks, id);
        }
        t
    }

    #[test]
    fn single_token_match() {
        let t = trie(&[("epfl", 1)]);
        let toks = ["at", "epfl", "lab"];
        let ms = t.scan(&toks);
        assert_eq!(ms.len(), 1);
        assert_eq!(
            ms[0],
            TrieMatch {
                payloads: vec![1],
                start: 1,
                end: 2
            }
        );
    }

    #[test]
    fn longest_match_wins() {
        let t = trie(&[("machine", 1), ("machine learning", 2)]);
        let toks = ["machine", "learning", "rocks"];
        let ms = t.scan(&toks);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].payloads, vec![2]);
        assert_eq!((ms[0].start, ms[0].end), (0, 2));
    }

    #[test]
    fn falls_back_to_shorter_match() {
        let t = trie(&[("machine", 1), ("machine learning", 2)]);
        let toks = ["machine", "tools"];
        let ms = t.scan(&toks);
        assert_eq!(ms[0].payloads, vec![1]);
        assert_eq!((ms[0].start, ms[0].end), (0, 1));
    }

    #[test]
    fn non_overlapping_greedy_scan() {
        let t = trie(&[("new york", 1), ("york university", 2)]);
        let toks = ["new", "york", "university"];
        let ms = t.scan(&toks);
        // Greedy: "new york" consumes tokens 0..2; "university" alone
        // doesn't match.
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].payloads, vec![1]);
    }

    #[test]
    fn aliases_share_surface_form() {
        let mut t = TokenTrie::new();
        t.insert(&["ibm"], 10);
        t.insert(&["ibm"], 20);
        let ms = t.scan(&["ibm"]);
        assert_eq!(ms[0].payloads, vec![10, 20]);
    }

    #[test]
    fn partial_prefix_is_not_a_match() {
        let t = trie(&[("association for computational linguistics", 1)]);
        let ms = t.scan(&["association", "for", "dinner"]);
        assert!(ms.is_empty());
    }

    #[test]
    fn multiple_matches_in_sequence() {
        let t = trie(&[("data mining", 1), ("databases", 2)]);
        let toks = ["data", "mining", "and", "databases"];
        let ms = t.scan(&toks);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].payloads, vec![1]);
        assert_eq!(ms[1].payloads, vec![2]);
    }

    #[test]
    fn empty_inputs() {
        let t = trie(&[]);
        assert!(t.scan(&["anything"]).is_empty());
        let t2 = trie(&[("x", 1)]);
        assert!(t2.scan(&[]).is_empty());
        let mut t3 = TokenTrie::new();
        t3.insert(&[], 9); // ignored
        assert!(t3.scan(&["a"]).is_empty());
    }

    #[test]
    fn match_restarts_after_longest() {
        let t = trie(&[("a b", 1), ("b c", 2)]);
        let ms = t.scan(&["a", "b", "c"]);
        // "a b" consumes 0..2, then "c" alone matches nothing.
        assert_eq!(ms.len(), 1);
    }
}
