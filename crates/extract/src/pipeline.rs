//! The end-to-end extraction pipeline: raw page text + URL → [`PageFeatures`].

use std::collections::BTreeSet;
use std::collections::HashMap;

use weber_textindex::analyzer::Analyzer;

use crate::concepts::ConceptTagger;
use crate::features::PageFeatures;
use crate::gazetteer::{EntityKind, Gazetteer};
use crate::ner::Recognizer;
use crate::url::UrlFeatures;

/// A configured extractor: dictionary NER + concept tagging + word analysis
/// with shared vocabularies, so features from different pages are mutually
/// comparable.
#[derive(Debug)]
pub struct Extractor {
    recognizer: Recognizer,
    concepts: ConceptTagger,
    analyzer: Analyzer,
}

impl Extractor {
    /// Build from a gazetteer covering persons, organizations, locations and
    /// concepts.
    pub fn new(gazetteer: &Gazetteer) -> Self {
        Self {
            recognizer: Recognizer::compile(gazetteer),
            concepts: ConceptTagger::new(gazetteer),
            analyzer: Analyzer::english(),
        }
    }

    /// Extract every feature from one page.
    pub fn extract(&self, text: &str, url: Option<&str>) -> PageFeatures {
        let mentions = self.recognizer.recognize(text);
        let mut person_counts: HashMap<String, u32> = HashMap::new();
        let mut organizations = BTreeSet::new();
        let mut locations = BTreeSet::new();
        for m in mentions {
            match m.kind {
                EntityKind::Person => {
                    *person_counts.entry(m.canonical).or_insert(0) += 1;
                }
                EntityKind::Organization => {
                    organizations.insert(m.canonical);
                }
                EntityKind::Location => {
                    locations.insert(m.canonical);
                }
                EntityKind::Concept => {} // handled by the tagger below
            }
        }
        let concept_profile = self.concepts.tag(text);
        PageFeatures {
            url: url.and_then(UrlFeatures::parse),
            weighted_concepts: concept_profile.weighted,
            concepts: concept_profile.concepts,
            organizations,
            locations,
            person_counts,
            tokens: self.analyzer.analyze(text),
        }
    }

    /// The shared word analyzer (for building TF-IDF indexes over the same
    /// vocabulary the extractor used).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gazetteer::GazetteerEntry;

    fn extractor() -> Extractor {
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Person, ["William Cohen", "Tom Mitchell"]);
        g.add_phrases(EntityKind::Organization, ["Carnegie Mellon University"]);
        g.add_phrases(EntityKind::Location, ["Pittsburgh"]);
        g.add(GazetteerEntry::simple("machine learning", EntityKind::Concept).with_weight(0.9));
        Extractor::new(&g)
    }

    #[test]
    fn full_extraction() {
        let e = extractor();
        let f = e.extract(
            "William Cohen and Tom Mitchell research machine learning at \
             Carnegie Mellon University in Pittsburgh. William Cohen leads.",
            Some("http://www.cs.cmu.edu/~wcohen/"),
        );
        assert_eq!(f.person_counts["William Cohen"], 2);
        assert_eq!(f.person_counts["Tom Mitchell"], 1);
        assert_eq!(f.most_frequent_person(), Some("William Cohen"));
        assert!(f.organizations.contains("Carnegie Mellon University"));
        assert!(f.locations.contains("Pittsburgh"));
        assert!(f.concepts.contains("machine learning"));
        assert!(!f.weighted_concepts.is_empty());
        assert_eq!(f.url.as_ref().unwrap().domain, "cmu.edu");
        assert!(!f.tokens.is_empty());
    }

    #[test]
    fn missing_url_is_none() {
        let e = extractor();
        let f = e.extract("machine learning", None);
        assert!(f.url.is_none());
        let f2 = e.extract("machine learning", Some("not a url"));
        assert!(f2.url.is_none());
    }

    #[test]
    fn word_vectors_share_vocabulary_across_pages() {
        let e = extractor();
        let a = e.extract("entity resolution methods", None);
        let b = e.extract("resolution of entities", None);
        // "resolution" stems identically; ids must coincide.
        assert!(a.tokens.iter().any(|t| b.tokens.contains(t)));
    }

    #[test]
    fn empty_page_is_blank_except_tokens() {
        let e = extractor();
        let f = e.extract("", None);
        assert!(f.is_blank());
    }
}
