//! HTML-to-text extraction.
//!
//! The paper's pipeline starts from crawled web pages; this repository's
//! corpus is plain text, but a downstream adopter feeds real HTML. This is
//! a pragmatic tag stripper — not a browser: it drops `<script>`/`<style>`
//! subtrees, turns block-level tags into sentence breaks, and decodes the
//! common character entities, which is all the dictionary NER and TF-IDF
//! pipeline need.

/// Extract readable text from an HTML fragment or document.
pub fn html_to_text(html: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Text,
        Tag,
        Skip(&'static str), // inside <script>/<style>, until its close tag
    }
    let mut out = String::with_capacity(html.len() / 2);
    let mut state = State::Text;
    let mut tag = String::new();
    let mut rest = html;
    while let Some(ch) = rest.chars().next() {
        match state {
            State::Text => {
                if ch == '<' {
                    tag.clear();
                    state = State::Tag;
                } else if ch == '&' {
                    let (decoded, consumed) = decode_entity(rest);
                    out.push_str(&decoded);
                    rest = &rest[consumed..];
                    continue;
                } else {
                    out.push(ch);
                }
            }
            State::Tag => {
                if ch == '>' {
                    let name = tag
                        .trim_start_matches('/')
                        .split([' ', '\t', '\n', '/'])
                        .next()
                        .unwrap_or("")
                        .to_ascii_lowercase();
                    let closing = tag.starts_with('/');
                    match name.as_str() {
                        "script" if !closing => state = State::Skip("script"),
                        "style" if !closing => state = State::Skip("style"),
                        // Block-level elements break the text flow; emit
                        // the break when the element closes (or at a <br>),
                        // so nested openings don't double up.
                        "p" | "div" | "li" | "tr" | "h1" | "h2" | "h3" | "h4" | "h5" | "h6"
                        | "td" | "th" | "ul" | "ol" | "table" | "title"
                            if closing =>
                        {
                            out.push_str(". ");
                            state = State::Text;
                        }
                        "br" => {
                            out.push_str(". ");
                            state = State::Text;
                        }
                        _ => state = State::Text,
                    }
                } else {
                    tag.push(ch);
                }
            }
            State::Skip(element) => {
                // Look for the matching close tag. Compare only the bounded
                // prefix (case-insensitively) — lowercasing the whole
                // remainder per character would be quadratic.
                if ch == '<' {
                    let needle_len = element.len() + 2; // "</" + name
                    let prefix_end = rest
                        .char_indices()
                        .nth(needle_len)
                        .map_or(rest.len(), |(i, _)| i);
                    if rest[..prefix_end].eq_ignore_ascii_case(&format!("</{element}")) {
                        // Consume through the '>'.
                        if let Some(end) = rest.find('>') {
                            rest = &rest[end + 1..];
                            state = State::Text;
                            continue;
                        }
                        // Unterminated close tag: drop the remainder.
                        break;
                    }
                }
            }
        }
        rest = &rest[ch.len_utf8()..];
    }
    // Collapse whitespace runs.
    let mut cleaned = String::with_capacity(out.len());
    let mut last_space = true;
    for ch in out.chars() {
        if ch.is_whitespace() {
            if !last_space {
                cleaned.push(' ');
            }
            last_space = true;
        } else {
            cleaned.push(ch);
            last_space = false;
        }
    }
    cleaned.trim().to_string()
}

/// Decode a leading HTML entity; returns the decoded text and the number
/// of bytes consumed (at least 1 — the `&` itself when unrecognised).
fn decode_entity(input: &str) -> (String, usize) {
    debug_assert!(input.starts_with('&'));
    // Scan by characters (not bytes): slicing at a fixed byte offset would
    // panic on multibyte text following the ampersand.
    let semicolon = match input
        .char_indices()
        .take(10)
        .find(|&(_, c)| c == ';')
        .map(|(i, _)| i)
    {
        Some(pos) => pos,
        None => return ("&".to_string(), 1),
    };
    let body = &input[1..semicolon];
    let decoded = match body {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        "nbsp" => Some(' '),
        _ => {
            if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                u32::from_str_radix(hex, 16).ok().and_then(char::from_u32)
            } else if let Some(dec) = body.strip_prefix('#') {
                dec.parse::<u32>().ok().and_then(char::from_u32)
            } else {
                None
            }
        }
    };
    match decoded {
        Some(c) => (c.to_string(), semicolon + 1),
        None => ("&".to_string(), 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_tags_and_keeps_text() {
        let html = "<html><body><p>William Cohen</p><p>works on <b>machine learning</b>.</p></body></html>";
        let text = html_to_text(html);
        assert_eq!(text, "William Cohen. works on machine learning..");
        assert!(!text.contains('<'));
    }

    #[test]
    fn drops_script_and_style_subtrees() {
        let html = "before<script>var x = '<p>not text</p>';</script>middle<style>.a{color:red}</style>after";
        assert_eq!(html_to_text(html), "beforemiddleafter");
    }

    #[test]
    fn decodes_common_entities() {
        assert_eq!(
            html_to_text("Yerva &amp; Mikl&#243;s &lt;LSIR&gt;"),
            "Yerva & Miklós <LSIR>"
        );
        assert_eq!(html_to_text("a&nbsp;b"), "a b");
        assert_eq!(html_to_text("x &#x41; y"), "x A y");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(html_to_text("a &bogus; b"), "a &bogus; b");
        assert_eq!(html_to_text("trailing &"), "trailing &");
    }

    #[test]
    fn block_tags_become_breaks_inline_tags_vanish() {
        let text = html_to_text("one<br>two <em>three</em> four");
        assert_eq!(text, "one. two three four");
    }

    #[test]
    fn whitespace_is_collapsed() {
        assert_eq!(html_to_text("  a \n\n  b\t c  "), "a b c");
    }

    #[test]
    fn plain_text_is_unchanged() {
        assert_eq!(html_to_text("just plain text"), "just plain text");
    }

    #[test]
    fn never_panics_on_malformed_html() {
        for bad in [
            "<",
            "<<>>",
            "<unclosed",
            "</>",
            "<script>never closed",
            "&#xZZ;",
            "<p",
            "a<b>c</",
            "<p attr='<'>x</p>",
            // Multibyte text around entity/tag machinery.
            "&ééééé;",
            "&日本語の長い文字列;",
            "<script>日本語</script>done",
            "&é",
            "日<em>本</em>語",
        ] {
            let _ = html_to_text(bad);
        }
        assert_eq!(html_to_text("<script>日本語</script>done"), "done");
    }

    #[test]
    fn extraction_pipeline_consumes_html_text() {
        use crate::gazetteer::{EntityKind, Gazetteer};
        use crate::pipeline::Extractor;
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Person, ["William Cohen"]);
        let e = Extractor::new(&g);
        let text = html_to_text("<h1>Home of <b>William Cohen</b></h1><script>junk()</script>");
        let f = e.extract(&text, None);
        assert_eq!(f.most_frequent_person(), Some("William Cohen"));
    }
}
