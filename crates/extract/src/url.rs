//! URL normalisation and domain features (for F2: "URL of the page —
//! String Similarity" and the observation that two pages about the same
//! person are often "on a same webdomain").

use serde::{Deserialize, Serialize};

/// Parsed, normalised URL features.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UrlFeatures {
    /// The full normalised URL (lowercased scheme/host, no trailing slash).
    pub normalized: String,
    /// Host, lowercased, with any `www.` prefix removed.
    pub host: String,
    /// Registrable domain: the last two labels of the host (three for a
    /// small set of common second-level public suffixes such as `co.uk`).
    pub domain: String,
    /// Path component (without query/fragment), possibly empty.
    pub path: String,
}

/// Second-level suffixes under which the registrable domain takes three
/// labels (a pragmatic subset of the public-suffix list).
const SECOND_LEVEL_SUFFIXES: &[&str] = &[
    "ac.uk", "co.uk", "gov.uk", "org.uk", "co.jp", "ne.jp", "or.jp", "com.au", "net.au", "org.au",
    "co.in", "co.nz", "com.br", "com.cn", "edu.cn",
];

impl UrlFeatures {
    /// Parse a URL string. Returns `None` for strings without a
    /// recognisable host. Accepts scheme-less inputs like
    /// `www.cs.cmu.edu/~wcohen`.
    pub fn parse(url: &str) -> Option<Self> {
        let url = url.trim();
        if url.is_empty() {
            return None;
        }
        // Strip scheme.
        let rest = match url.find("://") {
            Some(pos) => &url[pos + 3..],
            None => url,
        };
        // Host is everything up to the first '/', '?', '#'; strip userinfo
        // and port.
        let host_end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
        let mut host = &rest[..host_end];
        if let Some(at) = host.rfind('@') {
            host = &host[at + 1..];
        }
        if let Some(colon) = host.find(':') {
            host = &host[..colon];
        }
        if host.is_empty() || !host.contains('.') {
            return None;
        }
        // Every label must be a non-empty run of letters, digits or
        // hyphens — reject garbage that merely contains a dot.
        let valid_label =
            |l: &str| !l.is_empty() && l.chars().all(|c| c.is_ascii_alphanumeric() || c == '-');
        if !host.split('.').all(valid_label) {
            return None;
        }
        let host = host.to_ascii_lowercase();
        let host = host.strip_prefix("www.").unwrap_or(&host).to_string();
        // Path up to query/fragment, trailing slash trimmed.
        let after_host = &rest[host_end..];
        let path_end = after_host.find(['?', '#']).unwrap_or(after_host.len());
        let path = after_host[..path_end].trim_end_matches('/').to_string();

        let domain = registrable_domain(&host);
        let normalized = format!("{host}{path}");
        Some(Self {
            normalized,
            host,
            domain,
            path,
        })
    }

    /// True if two URLs share a registrable domain.
    pub fn same_domain(&self, other: &Self) -> bool {
        self.domain == other.domain
    }
}

fn registrable_domain(host: &str) -> String {
    let labels: Vec<&str> = host.split('.').collect();
    if labels.len() <= 2 {
        return host.to_string();
    }
    let last_two = labels[labels.len() - 2..].join(".");
    let take = if SECOND_LEVEL_SUFFIXES.contains(&last_two.as_str()) {
        3
    } else {
        2
    };
    labels[labels.len().saturating_sub(take)..].join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_standard_url() {
        let u = UrlFeatures::parse("http://www.cs.cmu.edu/~wcohen/").unwrap();
        assert_eq!(u.host, "cs.cmu.edu");
        assert_eq!(u.domain, "cmu.edu");
        assert_eq!(u.path, "/~wcohen");
        assert_eq!(u.normalized, "cs.cmu.edu/~wcohen");
    }

    #[test]
    fn scheme_less_and_query_fragment() {
        let u = UrlFeatures::parse("example.org/page?id=3#frag").unwrap();
        assert_eq!(u.host, "example.org");
        assert_eq!(u.path, "/page");
        let v = UrlFeatures::parse("https://example.org/page").unwrap();
        assert_eq!(u.normalized, v.normalized);
    }

    #[test]
    fn strips_port_and_userinfo() {
        let u = UrlFeatures::parse("http://user:pw@host.example.com:8080/a").unwrap();
        assert_eq!(u.host, "host.example.com");
        assert_eq!(u.domain, "example.com");
    }

    #[test]
    fn second_level_suffixes_take_three_labels() {
        let u = UrlFeatures::parse("http://research.cam.ac.uk/x").unwrap();
        assert_eq!(u.domain, "cam.ac.uk");
        let v = UrlFeatures::parse("http://deep.sub.example.co.uk").unwrap();
        assert_eq!(v.domain, "example.co.uk");
    }

    #[test]
    fn bare_domain_is_its_own_registrable_domain() {
        let u = UrlFeatures::parse("epfl.ch").unwrap();
        assert_eq!(u.domain, "epfl.ch");
        assert_eq!(u.path, "");
    }

    #[test]
    fn same_domain_comparison() {
        let a = UrlFeatures::parse("http://lsir.epfl.ch/people").unwrap();
        let b = UrlFeatures::parse("http://ic.epfl.ch/faculty").unwrap();
        let c = UrlFeatures::parse("http://ethz.ch/x").unwrap();
        assert!(a.same_domain(&b));
        assert!(!a.same_domain(&c));
    }

    #[test]
    fn invalid_inputs_are_none() {
        assert!(UrlFeatures::parse("").is_none());
        assert!(UrlFeatures::parse("   ").is_none());
        assert!(UrlFeatures::parse("nodots").is_none());
        assert!(UrlFeatures::parse("http:///path-only").is_none());
    }

    #[test]
    fn www_prefix_is_normalised_away() {
        let a = UrlFeatures::parse("http://www.example.com/a").unwrap();
        let b = UrlFeatures::parse("http://example.com/a").unwrap();
        assert_eq!(a, b);
    }
}
