//! Property-based tests for the extraction pipeline.

use proptest::prelude::*;

use weber_extract::gazetteer::{EntityKind, Gazetteer};
use weber_extract::ner::Recognizer;
use weber_extract::trie::TokenTrie;
use weber_extract::url::UrlFeatures;

proptest! {
    #[test]
    fn url_parse_never_panics_and_normalises_idempotently(s in ".{0,80}") {
        if let Some(u) = UrlFeatures::parse(&s) {
            prop_assert!(!u.host.is_empty());
            prop_assert!(u.host.contains('.'));
            prop_assert!(!u.host.starts_with("www."));
            // Re-parsing the normalised form is a fixed point.
            let again = UrlFeatures::parse(&u.normalized).expect("normalised form parses");
            prop_assert_eq!(&again.host, &u.host);
            prop_assert_eq!(&again.domain, &u.domain);
        }
    }

    #[test]
    fn domain_is_a_suffix_of_host(host in "[a-z]{1,8}(\\.[a-z]{1,8}){1,4}") {
        let u = UrlFeatures::parse(&format!("http://{host}/x")).unwrap();
        prop_assert!(u.host.ends_with(&u.domain));
        prop_assert!(u.domain.split('.').count() >= 2 || u.host == u.domain);
    }

    #[test]
    fn trie_scan_matches_are_ordered_and_disjoint(
        phrases in proptest::collection::vec(
            proptest::collection::vec("[a-c]{1,2}", 1..3), 1..8,
        ),
        text in proptest::collection::vec("[a-c]{1,2}", 0..20),
    ) {
        let mut trie = TokenTrie::new();
        for (i, p) in phrases.iter().enumerate() {
            let toks: Vec<&str> = p.iter().map(String::as_str).collect();
            trie.insert(&toks, i as u32);
        }
        let toks: Vec<&str> = text.iter().map(String::as_str).collect();
        let matches = trie.scan(&toks);
        let mut last_end = 0;
        for m in &matches {
            prop_assert!(m.start >= last_end, "overlapping matches");
            prop_assert!(m.end > m.start);
            prop_assert!(m.end <= toks.len());
            last_end = m.end;
            // The matched span really is one of the phrases.
            let span: Vec<String> = toks[m.start..m.end].iter().map(|s| s.to_string()).collect();
            prop_assert!(
                m.payloads.iter().all(|&p| phrases[p as usize] == span),
                "payload does not match span"
            );
        }
    }

    #[test]
    fn recognizer_finds_every_planted_entity(
        entities in proptest::collection::vec("[a-z]{3,8}", 1..6),
        filler in proptest::collection::vec("[0-9]{1,4}", 0..6),
    ) {
        let mut g = Gazetteer::new();
        let distinct: std::collections::BTreeSet<String> = entities.iter().cloned().collect();
        g.add_phrases(EntityKind::Organization, distinct.iter().cloned());
        let r = Recognizer::compile(&g);
        // Build a text interleaving fillers (digits never match [a-z]+
        // entities) and entities.
        let empty = String::new();
        let mut words: Vec<&str> = Vec::new();
        for (e, f) in distinct.iter().zip(filler.iter().chain(std::iter::repeat(&empty))) {
            if !f.is_empty() {
                words.push(f);
            }
            words.push(e);
        }
        let text = words.join(" ");
        let found: std::collections::BTreeSet<String> =
            r.recognize(&text).into_iter().map(|m| m.canonical).collect();
        prop_assert_eq!(found, distinct);
    }

    #[test]
    fn recognizer_never_panics_on_arbitrary_text(s in ".{0,200}") {
        let mut g = Gazetteer::new();
        g.add_phrases(EntityKind::Concept, ["machine learning", "databases"]);
        let r = Recognizer::compile(&g);
        let _ = r.recognize(&s);
    }
}
