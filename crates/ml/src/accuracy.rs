//! Per-region accuracy estimation (§IV-A).
//!
//! "Based on the training set, for each region we compute an accuracy
//! estimate. From the training sample set, each region would contain certain
//! sample points corresponding to link existence and non-existence. Accuracy
//! for a region is then defined as the percentage of the sample points
//! representing link existence. If this value is lower than 0.5 then it
//! suggests that the majority pairs should not be considered as a link."

use crate::regions::Regions;
use crate::LabeledValue;

/// A fitted accuracy model: link-existence probability per value region.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyModel {
    regions: Regions,
    /// Estimated probability of link existence per region.
    link_rate: Vec<f64>,
    /// Number of training samples per region.
    support: Vec<usize>,
    /// Global link rate, used as a prior for unsupported regions.
    global_rate: f64,
}

impl AccuracyModel {
    /// Fit the model: bucket every training sample into its region and
    /// compute the per-region link-existence rate.
    ///
    /// Regions with no training samples fall back to the global link rate
    /// over the whole training set (or 0.5 when the training set is empty —
    /// maximal uncertainty).
    pub fn fit(regions: Regions, samples: &[LabeledValue]) -> Self {
        let k = regions.len();
        let mut links = vec![0usize; k];
        let mut support = vec![0usize; k];
        let mut total_links = 0usize;
        for s in samples {
            let r = regions.region_of(s.value);
            support[r] += 1;
            if s.is_link {
                links[r] += 1;
                total_links += 1;
            }
        }
        let global_rate = if samples.is_empty() {
            0.5
        } else {
            total_links as f64 / samples.len() as f64
        };
        let link_rate = links
            .iter()
            .zip(&support)
            .map(|(&l, &n)| {
                if n == 0 {
                    global_rate
                } else {
                    l as f64 / n as f64
                }
            })
            .collect();
        Self {
            regions,
            link_rate,
            support,
            global_rate,
        }
    }

    /// Estimated probability that a pair with similarity `value` is a link.
    pub fn link_probability(&self, value: f64) -> f64 {
        self.link_rate[self.regions.region_of(value)]
    }

    /// The decision implied by the model: link iff the region's link rate is
    /// at least 0.5 (the paper: "if this value is lower than 0.5 … the
    /// majority pairs should not be considered as a link").
    pub fn decide(&self, value: f64) -> bool {
        self.link_probability(value) >= 0.5
    }

    /// The decision's *confidence*: how far the region's rate is from the
    /// uninformative 0.5, mapped to `[0.5, 1]` — i.e. the estimated
    /// probability that the decision (whichever way) is correct.
    pub fn decision_accuracy(&self, value: f64) -> f64 {
        let p = self.link_probability(value);
        p.max(1.0 - p)
    }

    /// The fitted regions.
    pub fn regions(&self) -> &Regions {
        &self.regions
    }

    /// Per-region link rates (aligned with `regions()`).
    pub fn link_rates(&self) -> &[f64] {
        &self.link_rate
    }

    /// Training sample count per region.
    pub fn support(&self) -> &[usize] {
        &self.support
    }

    /// The overall link rate of the training sample.
    pub fn global_rate(&self) -> f64 {
        self.global_rate
    }

    /// Overall training accuracy of this model's decisions: the fraction of
    /// training samples its region decisions classify correctly.
    pub fn training_accuracy(&self, samples: &[LabeledValue]) -> f64 {
        if samples.is_empty() {
            return 0.5;
        }
        let correct = samples
            .iter()
            .filter(|s| self.decide(s.value) == s.is_link)
            .count();
        correct as f64 / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionScheme;

    fn lv(value: f64, link: bool) -> LabeledValue {
        LabeledValue::new(value, link)
    }

    #[test]
    fn per_region_rates_match_hand_count() {
        let samples = vec![
            lv(0.05, false),
            lv(0.08, false),
            lv(0.09, true),
            lv(0.95, true),
            lv(0.92, true),
            lv(0.98, false),
        ];
        let m = AccuracyModel::fit(Regions::equal_width(10), &samples);
        assert!((m.link_probability(0.07) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.link_probability(0.93) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.support()[0], 3);
        assert_eq!(m.support()[9], 3);
    }

    #[test]
    fn empty_regions_fall_back_to_global_rate() {
        let samples = vec![lv(0.1, true), lv(0.1, false), lv(0.1, false)];
        let m = AccuracyModel::fit(Regions::equal_width(10), &samples);
        // Region [0.5, 0.6) has no samples -> global 1/3.
        assert!((m.link_probability(0.55) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_training_set_is_maximally_uncertain() {
        let m = AccuracyModel::fit(Regions::equal_width(5), &[]);
        assert_eq!(m.link_probability(0.7), 0.5);
        assert_eq!(m.global_rate(), 0.5);
        assert_eq!(m.training_accuracy(&[]), 0.5);
    }

    #[test]
    fn decide_follows_majority() {
        let samples = vec![
            lv(0.2, false),
            lv(0.25, false),
            lv(0.21, true),
            lv(0.8, true),
            lv(0.85, true),
            lv(0.81, false),
        ];
        let m = AccuracyModel::fit(Regions::equal_width(2), &samples);
        assert!(!m.decide(0.3));
        assert!(m.decide(0.7));
    }

    #[test]
    fn decision_accuracy_is_majority_share() {
        let samples = vec![lv(0.1, false), lv(0.12, false), lv(0.13, true)];
        let m = AccuracyModel::fit(Regions::equal_width(10), &samples);
        // rate 1/3 -> decision "no link" with accuracy 2/3.
        assert!((m.decision_accuracy(0.11) - 2.0 / 3.0).abs() < 1e-12);
        assert!(m.decision_accuracy(0.11) >= 0.5);
    }

    #[test]
    fn training_accuracy_perfectly_separable() {
        let samples: Vec<_> = (0..50)
            .map(|i| lv(i as f64 / 100.0, false))
            .chain((51..100).map(|i| lv(i as f64 / 100.0, true)))
            .collect();
        let m = AccuracyModel::fit(Regions::equal_width(10), &samples);
        assert!((m.training_accuracy(&samples) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_regions_capture_skewed_distribution() {
        // Most mass near 0 with a small high-similarity cluster of links —
        // k-means regions adapt, equal-width would put them all in one bin.
        let mut samples: Vec<LabeledValue> = (0..90)
            .map(|i| lv(0.01 + (i as f64) * 0.001, false))
            .collect();
        samples.extend((0..10).map(|i| lv(0.95 + (i as f64) * 0.001, true)));
        let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
        let regions = RegionScheme::kmeans(4).fit(&values);
        let m = AccuracyModel::fit(regions, &samples);
        assert_eq!(m.link_probability(0.96), 1.0);
        assert_eq!(m.link_probability(0.05), 0.0);
    }

    #[test]
    fn rates_are_probabilities() {
        let samples: Vec<_> = (0..100)
            .map(|i| lv((i as f64) / 100.0, i % 3 == 0))
            .collect();
        let m = AccuracyModel::fit(Regions::equal_width(10), &samples);
        for &r in m.link_rates() {
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
