//! K-fold cross-validation splits.
//!
//! The paper repeats experiments over 5 random training draws; k-fold
//! cross-validation is the systematic alternative: every document serves
//! in the training role exactly once across folds, which removes the
//! draw-to-draw variance of random sampling at equal labelling cost.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One fold: the held-in (training) and held-out indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Training indices, sorted.
    pub train: Vec<usize>,
    /// Held-out indices, sorted.
    pub test: Vec<usize>,
}

/// Split `0..n` into `k` folds (deterministic in `seed`).
///
/// Each fold's `test` set is one of `k` near-equal shares of a shuffled
/// permutation (sizes differ by at most one); its `train` set is the
/// complement. `k` is clamped to `[1, n]` for non-empty inputs; `n == 0`
/// yields no folds.
pub fn kfold(n: usize, k: usize, seed: u64) -> Vec<Fold> {
    if n == 0 {
        return Vec::new();
    }
    let k = k.clamp(1, n);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let mut test: Vec<usize> = order[start..start + size].to_vec();
        let mut train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + size..])
            .copied()
            .collect();
        test.sort_unstable();
        train.sort_unstable();
        folds.push(Fold { train, test });
        start += size;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_the_index_space() {
        let folds = kfold(23, 5, 7);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..23).collect::<Vec<_>>());
        for f in &folds {
            // Train is the exact complement of test.
            assert_eq!(f.train.len() + f.test.len(), 23);
            for t in &f.test {
                assert!(!f.train.contains(t));
            }
        }
    }

    #[test]
    fn fold_sizes_differ_by_at_most_one() {
        let folds = kfold(10, 3, 1);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(kfold(30, 4, 9), kfold(30, 4, 9));
        assert_ne!(kfold(30, 4, 9), kfold(30, 4, 10));
    }

    #[test]
    fn degenerate_shapes() {
        assert!(kfold(0, 5, 1).is_empty());
        // k clamped to n.
        let folds = kfold(3, 10, 1);
        assert_eq!(folds.len(), 3);
        assert!(folds.iter().all(|f| f.test.len() == 1));
        // k = 1: everything held out, nothing to train on.
        let folds = kfold(5, 1, 1);
        assert_eq!(folds.len(), 1);
        assert!(folds[0].train.is_empty());
        assert_eq!(folds[0].test.len(), 5);
    }

    #[test]
    fn outputs_are_sorted() {
        for f in kfold(17, 4, 3) {
            assert!(f.train.windows(2).all(|w| w[0] < w[1]));
            assert!(f.test.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
