//! Seeded train/test sampling.
//!
//! The paper: "we use 10% of the complete dataset as the training set … we
//! repeated the experiments for 5 runs and the averages of the observed
//! results are presented. On each run we randomly choose the training subset
//! from the complete dataset."

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split indices `0..n` into (train, test) with `train_fraction` of the
/// items (rounded, but at least 1 when `n > 0` and the fraction is positive)
/// drawn uniformly at random with the given `seed`.
///
/// Both halves are returned sorted. Deterministic for a fixed `(n,
/// train_fraction, seed)`.
pub fn train_test_split(n: usize, train_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "train_fraction must be in [0, 1], got {train_fraction}"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut take = (n as f64 * train_fraction).round() as usize;
    if train_fraction > 0.0 && n > 0 {
        take = take.max(1);
    }
    take = take.min(n);
    let mut train: Vec<usize> = idx[..take].to_vec();
    let mut test: Vec<usize> = idx[take..].to_vec();
    train.sort_unstable();
    test.sort_unstable();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition_of_indices() {
        let (train, test) = train_test_split(100, 0.1, 7);
        assert_eq!(train.len(), 10);
        assert_eq!(test.len(), 90);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_per_seed_and_different_across_seeds() {
        let a = train_test_split(50, 0.2, 1);
        let b = train_test_split(50, 0.2, 1);
        assert_eq!(a, b);
        let c = train_test_split(50, 0.2, 2);
        assert_ne!(a.0, c.0);
    }

    #[test]
    fn tiny_positive_fraction_takes_at_least_one() {
        let (train, test) = train_test_split(5, 0.01, 3);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 4);
    }

    #[test]
    fn zero_fraction_and_full_fraction() {
        let (train, test) = train_test_split(10, 0.0, 3);
        assert!(train.is_empty());
        assert_eq!(test.len(), 10);
        let (train, test) = train_test_split(10, 1.0, 3);
        assert_eq!(train.len(), 10);
        assert!(test.is_empty());
    }

    #[test]
    fn empty_input() {
        let (train, test) = train_test_split(0, 0.5, 3);
        assert!(train.is_empty());
        assert!(test.is_empty());
    }

    #[test]
    #[should_panic(expected = "train_fraction")]
    fn rejects_out_of_range_fraction() {
        train_test_split(10, 1.5, 0);
    }

    #[test]
    fn outputs_are_sorted() {
        let (train, test) = train_test_split(30, 0.3, 11);
        assert!(train.windows(2).all(|w| w[0] < w[1]));
        assert!(test.windows(2).all(|w| w[0] < w[1]));
    }
}
