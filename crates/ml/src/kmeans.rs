//! One-dimensional k-means (Lloyd's algorithm).
//!
//! Used to derive value-space regions from the empirical distribution of a
//! similarity function's training values — the paper's second region scheme
//! ("we clustered the similarity values corresponding to the training set
//! using the k-means clustering technique").

/// The result of a 1-D k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeans1d {
    /// Cluster centres, sorted ascending. May be fewer than the requested
    /// `k` when the data has fewer distinct values.
    pub centers: Vec<f64>,
    /// Iterations until convergence.
    pub iterations: usize,
}

impl KMeans1d {
    /// Index of the centre nearest to `value`.
    pub fn assign(&self, value: f64) -> usize {
        nearest(&self.centers, value)
    }
}

fn nearest(centers: &[f64], value: f64) -> usize {
    debug_assert!(!centers.is_empty());
    // Centers are sorted: binary search then compare neighbours.
    let idx = centers.partition_point(|&c| c < value);
    let mut best = idx.min(centers.len() - 1);
    if idx > 0 && (value - centers[idx - 1]).abs() <= (centers[best] - value).abs() {
        best = idx - 1;
    }
    best
}

/// Run 1-D k-means on `values` with at most `k` clusters.
///
/// Initialisation is deterministic: centres start at the `k` evenly spaced
/// quantiles of the sorted data, which for one dimension is both stable and
/// close to optimal. Duplicate centres are merged, so the output may contain
/// fewer than `k` centres. Returns `None` if `values` is empty or `k == 0`.
pub fn kmeans_1d(values: &[f64], k: usize, max_iters: usize) -> Option<KMeans1d> {
    if values.is_empty() || k == 0 {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    // Quantile initialisation over distinct values.
    let mut distinct: Vec<f64> = Vec::with_capacity(sorted.len());
    for &v in &sorted {
        if distinct.last().is_none_or(|&d| v > d) {
            distinct.push(v);
        }
    }
    let k = k.min(distinct.len());
    let mut centers: Vec<f64> = (0..k)
        .map(|i| {
            let pos = (i as f64 + 0.5) / k as f64 * (distinct.len() as f64 - 1.0);
            distinct[pos.round() as usize]
        })
        .collect();
    centers.dedup();

    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        // Assignment + mean update in one pass over sorted values: cluster
        // boundaries are midpoints between consecutive centres.
        let mut sums = vec![0.0f64; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for &v in &sorted {
            let c = nearest(&centers, v);
            sums[c] += v;
            counts[c] += 1;
        }
        let mut next: Vec<f64> = Vec::with_capacity(centers.len());
        for (c, (&s, &n)) in sums.iter().zip(&counts).enumerate() {
            if n > 0 {
                next.push(s / n as f64);
            } else {
                // Empty cluster: keep its centre (it may capture points later).
                next.push(centers[c]);
            }
        }
        next.sort_by(f64::total_cmp);
        next.dedup();
        let converged = next.len() == centers.len()
            && next
                .iter()
                .zip(&centers)
                .all(|(a, b)| (a - b).abs() < 1e-12);
        centers = next;
        if converged {
            break;
        }
    }
    Some(KMeans1d {
        centers,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_groups() {
        let values = [0.1, 0.12, 0.11, 0.9, 0.88, 0.92];
        let km = kmeans_1d(&values, 2, 100).unwrap();
        assert_eq!(km.centers.len(), 2);
        assert!((km.centers[0] - 0.11).abs() < 0.02);
        assert!((km.centers[1] - 0.90).abs() < 0.02);
        assert_eq!(km.assign(0.05), 0);
        assert_eq!(km.assign(0.95), 1);
    }

    #[test]
    fn k_larger_than_distinct_values_collapses() {
        let values = [0.5, 0.5, 0.5];
        let km = kmeans_1d(&values, 4, 100).unwrap();
        assert_eq!(km.centers, vec![0.5]);
    }

    #[test]
    fn empty_or_zero_k_is_none() {
        assert!(kmeans_1d(&[], 3, 10).is_none());
        assert!(kmeans_1d(&[0.5], 0, 10).is_none());
    }

    #[test]
    fn single_value_single_center() {
        let km = kmeans_1d(&[0.3], 3, 10).unwrap();
        assert_eq!(km.centers, vec![0.3]);
        assert_eq!(km.assign(0.9), 0);
    }

    #[test]
    fn centers_are_sorted() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64) / 100.0).collect();
        let km = kmeans_1d(&values, 5, 100).unwrap();
        for w in km.centers.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(km.centers.len(), 5);
    }

    #[test]
    fn assignment_is_nearest_center() {
        let km = KMeans1d {
            centers: vec![0.2, 0.5, 0.8],
            iterations: 0,
        };
        assert_eq!(km.assign(0.0), 0);
        assert_eq!(km.assign(0.34), 0);
        assert_eq!(km.assign(0.36), 1);
        assert_eq!(km.assign(0.66), 2);
        assert_eq!(km.assign(1.0), 2);
    }

    #[test]
    fn converges_quickly_on_uniform_data() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64) / 1000.0).collect();
        let km = kmeans_1d(&values, 10, 500).unwrap();
        assert!(km.iterations < 500, "did not converge: {}", km.iterations);
    }

    #[test]
    fn within_cluster_variance_not_worse_than_init() {
        // k-means objective must not exceed the trivially computed objective
        // of quantile initialisation.
        let values = [0.05, 0.1, 0.2, 0.4, 0.45, 0.7, 0.75, 0.9];
        let km = kmeans_1d(&values, 3, 100).unwrap();
        let obj = |centers: &[f64]| -> f64 {
            values
                .iter()
                .map(|&v| {
                    let c = centers[nearest(centers, v)];
                    (v - c) * (v - c)
                })
                .sum()
        };
        let final_obj = obj(&km.centers);
        let init = [0.1, 0.45, 0.9];
        assert!(final_obj <= obj(&init) + 1e-9);
    }
}
