#![warn(missing_docs)]

//! # weber-ml
//!
//! The "simple machine learning techniques" of the paper (§IV-A):
//!
//! - [`kmeans`] — 1-D k-means over similarity values;
//! - [`regions`] — partitioning the value space `[0, 1]` into regions,
//!   either equal-width intervals or k-means-derived cells;
//! - [`accuracy`] — per-region accuracy estimation from a training sample
//!   ("Accuracy for a region is … the percentage of the sample points
//!   representing link existence");
//! - [`threshold`] — choosing the decision threshold that "maximizes the
//!   number of correct decisions" on the training set;
//! - [`sampling`] — seeded random train/test splits (the paper uses 10%
//!   training, averaged over 5 random draws);
//! - [`crossval`] — k-fold splits, the systematic alternative to repeated
//!   random draws.

pub mod accuracy;
pub mod crossval;
pub mod kmeans;
pub mod regions;
pub mod sampling;
pub mod threshold;

pub use accuracy::AccuracyModel;
pub use crossval::{kfold, Fold};
pub use kmeans::{kmeans_1d, KMeans1d};
pub use regions::{RegionScheme, Regions};
pub use sampling::train_test_split;
pub use threshold::{optimal_threshold, ThresholdFit};

/// A labelled training observation: a similarity value and whether the
/// document pair truly co-refers ("link existence").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledValue {
    /// Similarity value in `[0, 1]`.
    pub value: f64,
    /// True if the pair refers to the same person.
    pub is_link: bool,
}

impl LabeledValue {
    /// Convenience constructor.
    pub fn new(value: f64, is_link: bool) -> Self {
        Self { value, is_link }
    }
}
