//! Optimal threshold selection (§IV-A).
//!
//! "For each function we have chosen such a threshold, using the estimates
//! from a small training sample … We have chosen a threshold, which — based
//! on the training set — maximizes the number of correct decisions."

use crate::LabeledValue;

/// A fitted threshold and its training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdFit {
    /// Decide "link" iff `value >= threshold`.
    pub threshold: f64,
    /// Fraction of training samples classified correctly at this threshold.
    pub training_accuracy: f64,
}

impl ThresholdFit {
    /// Apply the fitted threshold.
    pub fn decide(&self, value: f64) -> bool {
        value >= self.threshold
    }
}

/// Find the threshold in `[0, 1]` maximising the number of correct
/// link/no-link decisions on `samples`.
///
/// ```
/// use weber_ml::{optimal_threshold, LabeledValue};
///
/// let samples = vec![
///     LabeledValue::new(0.2, false),
///     LabeledValue::new(0.3, false),
///     LabeledValue::new(0.8, true),
///     LabeledValue::new(0.9, true),
/// ];
/// let fit = optimal_threshold(&samples);
/// assert_eq!(fit.training_accuracy, 1.0);
/// assert!(!fit.decide(0.3));
/// assert!(fit.decide(0.8));
/// ```
///
/// Candidate thresholds are 0.0 and the midpoints between consecutive
/// distinct sample values plus a point just above the maximum — sweeping
/// these visits every achievable classification. Ties prefer the *highest*
/// threshold (more conservative linking); the "link nothing" threshold may
/// therefore be the next float above 1.0. An empty training set yields the
/// uninformative threshold 0.5 with accuracy 0.5.
pub fn optimal_threshold(samples: &[LabeledValue]) -> ThresholdFit {
    if samples.is_empty() {
        return ThresholdFit {
            threshold: 0.5,
            training_accuracy: 0.5,
        };
    }
    let mut sorted: Vec<LabeledValue> = samples.to_vec();
    sorted.sort_by(|a, b| a.value.total_cmp(&b.value));
    let total = sorted.len();
    let total_links = sorted.iter().filter(|s| s.is_link).count();

    // Sweep thresholds from low to high. At threshold t, everything with
    // value >= t is predicted "link". Start below the minimum: correct =
    // number of links. Each time the threshold passes a sample, that sample
    // flips to "no link": links lose a correct, non-links gain one.
    let mut correct = total_links;
    let mut best_correct = correct;
    let mut best_threshold = 0.0f64;
    let mut i = 0;
    while i < sorted.len() {
        // Advance over all samples sharing this value.
        let v = sorted[i].value;
        while i < sorted.len() && sorted[i].value == v {
            if sorted[i].is_link {
                correct -= 1;
            } else {
                correct += 1;
            }
            i += 1;
        }
        // Candidate threshold just above v: midpoint to the next distinct
        // value, or the next representable float past the maximum — using
        // the maximum itself would wrongly re-link the values at it (a
        // similarity of exactly 1.0 between pages about different people is
        // common, e.g. identical most-frequent names).
        let candidate = if i < sorted.len() {
            (v + sorted[i].value) / 2.0
        } else {
            v.next_up()
        };
        if correct >= best_correct {
            best_correct = correct;
            best_threshold = candidate;
        }
    }
    ThresholdFit {
        threshold: best_threshold,
        training_accuracy: best_correct as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(value: f64, link: bool) -> LabeledValue {
        LabeledValue::new(value, link)
    }

    #[test]
    fn separable_data_is_classified_perfectly() {
        let samples = vec![
            lv(0.1, false),
            lv(0.2, false),
            lv(0.3, false),
            lv(0.7, true),
            lv(0.8, true),
        ];
        let fit = optimal_threshold(&samples);
        assert_eq!(fit.training_accuracy, 1.0);
        assert!(fit.threshold > 0.3 && fit.threshold <= 0.7);
        assert!(!fit.decide(0.3));
        assert!(fit.decide(0.7));
    }

    #[test]
    fn all_links_gives_zero_threshold() {
        let samples = vec![lv(0.2, true), lv(0.9, true)];
        let fit = optimal_threshold(&samples);
        assert_eq!(fit.training_accuracy, 1.0);
        assert!(fit.decide(0.2));
        assert!(fit.decide(0.05)); // threshold 0 links everything
    }

    #[test]
    fn all_nonlinks_links_nothing() {
        let samples = vec![lv(0.2, false), lv(0.9, false)];
        let fit = optimal_threshold(&samples);
        assert_eq!(fit.training_accuracy, 1.0);
        assert!(!fit.decide(0.9));
        assert!(!fit.decide(0.2));
    }

    #[test]
    fn noisy_data_picks_majority_optimum() {
        // One mislabeled point below; best threshold still splits high/low.
        let samples = vec![
            lv(0.1, false),
            lv(0.15, true), // noise
            lv(0.2, false),
            lv(0.8, true),
            lv(0.9, true),
        ];
        let fit = optimal_threshold(&samples);
        assert!((fit.training_accuracy - 0.8).abs() < 1e-12);
        assert!(fit.threshold > 0.2 && fit.threshold <= 0.8);
    }

    #[test]
    fn duplicate_values_are_atomic() {
        // Threshold cannot split samples sharing a value.
        let samples = vec![lv(0.5, true), lv(0.5, false), lv(0.5, true)];
        let fit = optimal_threshold(&samples);
        // Either all linked (2/3 correct) or none (1/3): must pick 2/3.
        assert!((fit.training_accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!(fit.decide(0.5));
    }

    #[test]
    fn max_value_nonlinks_are_classified_correctly() {
        // A similarity of exactly 1.0 between different-person pages must
        // be excludable: the fitted threshold lies above 1.0 and the
        // reported accuracy matches the actual decisions.
        let fit = optimal_threshold(&[lv(1.0, false)]);
        assert!(!fit.decide(1.0));
        assert_eq!(fit.training_accuracy, 1.0);
        let fit = optimal_threshold(&[lv(1.0, false), lv(1.0, false), lv(0.2, false)]);
        assert!(!fit.decide(1.0));
        assert_eq!(fit.training_accuracy, 1.0);
    }

    #[test]
    fn empty_training_set_is_uninformative() {
        let fit = optimal_threshold(&[]);
        assert_eq!(fit.threshold, 0.5);
        assert_eq!(fit.training_accuracy, 0.5);
    }

    #[test]
    fn accuracy_is_maximum_over_brute_force() {
        let samples = vec![
            lv(0.12, false),
            lv(0.33, true),
            lv(0.41, false),
            lv(0.55, true),
            lv(0.62, false),
            lv(0.71, true),
            lv(0.93, true),
        ];
        let fit = optimal_threshold(&samples);
        let brute = (0..=100)
            .map(|i| {
                let t = i as f64 / 100.0;
                samples
                    .iter()
                    .filter(|s| (s.value >= t) == s.is_link)
                    .count()
            })
            .max()
            .unwrap();
        assert!((fit.training_accuracy - brute as f64 / samples.len() as f64).abs() < 1e-12);
    }
}
