//! Partitioning the similarity value space `[0, 1]` into regions.
//!
//! The paper's two schemes (§IV-A):
//!
//! 1. equal-width sub-intervals `[0, 0.1), [0.1, 0.2), …, [0.9, 1]`;
//! 2. 1-D k-means over the training similarity values, "each cluster head
//!    representing a region" — regions are then the Voronoi cells of the
//!    cluster centres, i.e. intervals split at midpoints between
//!    consecutive centres.

use crate::kmeans::kmeans_1d;

/// How to carve `[0, 1]` into regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RegionScheme {
    /// `k` equal-width intervals.
    EqualWidth {
        /// Number of intervals.
        k: usize,
    },
    /// Voronoi cells of 1-D k-means centres fitted to training values.
    KMeans {
        /// Number of clusters (upper bound; duplicates collapse).
        k: usize,
        /// Iteration cap for Lloyd's algorithm.
        max_iters: usize,
    },
}

impl RegionScheme {
    /// The paper's defaults: 10 equal-width intervals.
    pub fn equal_width_10() -> Self {
        Self::EqualWidth { k: 10 }
    }

    /// k-means regions with `k` clusters.
    pub fn kmeans(k: usize) -> Self {
        Self::KMeans { k, max_iters: 100 }
    }

    /// Fit the scheme to training `values`, producing concrete [`Regions`].
    ///
    /// Equal-width regions ignore the values. K-means regions fall back to a
    /// single all-covering region when `values` is empty.
    pub fn fit(&self, values: &[f64]) -> Regions {
        match *self {
            Self::EqualWidth { k } => Regions::equal_width(k.max(1)),
            Self::KMeans { k, max_iters } => match kmeans_1d(values, k.max(1), max_iters) {
                Some(km) => Regions::from_centers(&km.centers),
                None => Regions::equal_width(1),
            },
        }
    }
}

/// A concrete partition of `[0, 1]` into left-closed intervals.
///
/// Region `i` is `[boundaries[i], boundaries[i+1])`, except the last, which
/// is closed on the right so 1.0 is covered. `boundaries` always starts at
/// 0.0 and ends at 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct Regions {
    boundaries: Vec<f64>,
    /// Representative value per region (interval midpoint or k-means
    /// centre) — used for reporting, e.g. the x-axis of Figure 1.
    representatives: Vec<f64>,
}

impl Regions {
    /// `k` equal-width intervals over `[0, 1]`.
    pub fn equal_width(k: usize) -> Self {
        let k = k.max(1);
        let boundaries: Vec<f64> = (0..=k).map(|i| i as f64 / k as f64).collect();
        let representatives = (0..k)
            .map(|i| (boundaries[i] + boundaries[i + 1]) / 2.0)
            .collect();
        Self {
            boundaries,
            representatives,
        }
    }

    /// Voronoi regions of sorted `centers` within `[0, 1]`.
    pub fn from_centers(centers: &[f64]) -> Self {
        assert!(!centers.is_empty(), "need at least one center");
        debug_assert!(centers.windows(2).all(|w| w[0] <= w[1]));
        let mut boundaries = Vec::with_capacity(centers.len() + 1);
        boundaries.push(0.0);
        for w in centers.windows(2) {
            boundaries.push(((w[0] + w[1]) / 2.0).clamp(0.0, 1.0));
        }
        boundaries.push(1.0);
        Self {
            boundaries,
            representatives: centers.to_vec(),
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// Regions are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The region index containing `value` (values are clamped to `[0, 1]`).
    pub fn region_of(&self, value: f64) -> usize {
        let v = value.clamp(0.0, 1.0);
        // partition_point over inner boundaries.
        let idx = self.boundaries[1..self.boundaries.len() - 1].partition_point(|&b| b <= v);
        idx.min(self.len() - 1)
    }

    /// The `[lo, hi)` bounds of region `i` (the last region is `[lo, hi]`).
    pub fn bounds(&self, i: usize) -> (f64, f64) {
        (self.boundaries[i], self.boundaries[i + 1])
    }

    /// All interval boundaries, `0.0 ..= 1.0`.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Representative value of each region.
    pub fn representatives(&self) -> &[f64] {
        &self.representatives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_matches_paper_example() {
        let r = Regions::equal_width(10);
        assert_eq!(r.len(), 10);
        assert_eq!(r.bounds(0), (0.0, 0.1));
        assert_eq!(r.bounds(9), (0.9, 1.0));
        assert_eq!(r.region_of(0.0), 0);
        assert_eq!(r.region_of(0.05), 0);
        assert_eq!(r.region_of(0.1), 1);
        assert_eq!(r.region_of(0.95), 9);
        assert_eq!(r.region_of(1.0), 9); // closed on the right
    }

    #[test]
    fn values_outside_unit_interval_are_clamped() {
        let r = Regions::equal_width(4);
        assert_eq!(r.region_of(-3.0), 0);
        assert_eq!(r.region_of(7.0), 3);
    }

    #[test]
    fn from_centers_voronoi_cells() {
        let r = Regions::from_centers(&[0.2, 0.8]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.boundaries(), &[0.0, 0.5, 1.0]);
        assert_eq!(r.region_of(0.49), 0);
        assert_eq!(r.region_of(0.51), 1);
        assert_eq!(r.representatives(), &[0.2, 0.8]);
    }

    #[test]
    fn single_center_covers_everything() {
        let r = Regions::from_centers(&[0.4]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.region_of(0.0), 0);
        assert_eq!(r.region_of(1.0), 0);
    }

    #[test]
    fn scheme_fit_equal_width_ignores_values() {
        let r = RegionScheme::equal_width_10().fit(&[0.5, 0.6]);
        assert_eq!(r, Regions::equal_width(10));
    }

    #[test]
    fn scheme_fit_kmeans_adapts_to_data() {
        let values = [0.05, 0.1, 0.08, 0.9, 0.95, 0.85];
        let r = RegionScheme::kmeans(2).fit(&values);
        assert_eq!(r.len(), 2);
        // Boundary must sit between the two value groups.
        let b = r.boundaries()[1];
        assert!(b > 0.2 && b < 0.8, "boundary {b}");
    }

    #[test]
    fn scheme_fit_kmeans_empty_values_falls_back() {
        let r = RegionScheme::kmeans(5).fit(&[]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn every_value_maps_to_exactly_one_region() {
        for r in [
            Regions::equal_width(7),
            Regions::from_centers(&[0.1, 0.4, 0.45, 0.99]),
        ] {
            for i in 0..=100 {
                let v = i as f64 / 100.0;
                let reg = r.region_of(v);
                let (lo, hi) = r.bounds(reg);
                let in_region = if reg == r.len() - 1 {
                    v >= lo && v <= hi
                } else {
                    v >= lo && v < hi
                };
                assert!(in_region, "value {v} -> region {reg} [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn boundaries_are_monotone_and_span_unit_interval() {
        let r = RegionScheme::kmeans(4).fit(&[0.2, 0.3, 0.6, 0.61, 0.62, 0.9]);
        let b = r.boundaries();
        assert_eq!(b[0], 0.0);
        assert_eq!(*b.last().unwrap(), 1.0);
        for w in b.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
