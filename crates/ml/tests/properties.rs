//! Property-based tests for the region / accuracy / threshold machinery.

use proptest::prelude::*;

use weber_ml::accuracy::AccuracyModel;
use weber_ml::crossval::kfold;
use weber_ml::kmeans::kmeans_1d;
use weber_ml::regions::{RegionScheme, Regions};
use weber_ml::sampling::train_test_split;
use weber_ml::threshold::optimal_threshold;
use weber_ml::LabeledValue;

fn samples() -> impl Strategy<Value = Vec<LabeledValue>> {
    proptest::collection::vec((0.0f64..=1.0, proptest::bool::ANY), 0..60).prop_map(|v| {
        v.into_iter()
            .map(|(x, l)| LabeledValue::new(x, l))
            .collect()
    })
}

proptest! {
    #[test]
    fn regions_cover_unit_interval_disjointly(k in 1usize..20, values in proptest::collection::vec(0.0f64..=1.0, 0..40)) {
        for scheme in [RegionScheme::EqualWidth { k }, RegionScheme::kmeans(k)] {
            let regions = scheme.fit(&values);
            // Boundaries monotone, spanning [0, 1].
            let b = regions.boundaries();
            prop_assert_eq!(b[0], 0.0);
            prop_assert_eq!(*b.last().unwrap(), 1.0);
            for w in b.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            // Every value maps into exactly one region whose bounds contain it.
            for i in 0..=50 {
                let v = i as f64 / 50.0;
                let r = regions.region_of(v);
                prop_assert!(r < regions.len());
                let (lo, hi) = regions.bounds(r);
                prop_assert!(v >= lo - 1e-12);
                prop_assert!(v <= hi + 1e-12);
            }
        }
    }

    #[test]
    fn kmeans_centers_are_sorted_and_within_data_range(
        values in proptest::collection::vec(0.0f64..=1.0, 1..60),
        k in 1usize..10,
    ) {
        let km = kmeans_1d(&values, k, 100).unwrap();
        prop_assert!(!km.centers.is_empty());
        prop_assert!(km.centers.len() <= k);
        for w in km.centers.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        let (min, max) = values
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        for &c in &km.centers {
            prop_assert!(c >= min - 1e-12 && c <= max + 1e-12);
        }
    }

    #[test]
    fn accuracy_model_rates_are_probabilities(data in samples(), k in 1usize..12) {
        let model = AccuracyModel::fit(Regions::equal_width(k), &data);
        for &r in model.link_rates() {
            prop_assert!((0.0..=1.0).contains(&r));
        }
        for i in 0..=20 {
            let v = i as f64 / 20.0;
            let p = model.link_probability(v);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(model.decision_accuracy(v) >= 0.5);
            prop_assert_eq!(model.decide(v), p >= 0.5);
        }
        prop_assert_eq!(model.support().iter().sum::<usize>(), data.len());
    }

    #[test]
    fn region_decisions_are_at_least_as_accurate_as_majority_class(data in samples()) {
        let model = AccuracyModel::fit(Regions::equal_width(10), &data);
        let acc = model.training_accuracy(&data);
        if !data.is_empty() {
            let links = data.iter().filter(|s| s.is_link).count() as f64;
            let majority = (links / data.len() as f64).max(1.0 - links / data.len() as f64);
            // Region-majority decisions can never do worse than the global
            // majority class on the data they were fitted on.
            prop_assert!(acc >= majority - 1e-9, "acc {acc} < majority {majority}");
        }
    }

    #[test]
    fn optimal_threshold_is_optimal(data in samples()) {
        let fit = optimal_threshold(&data);
        // The "link nothing" threshold may be the next float above 1.0.
        prop_assert!(fit.threshold >= 0.0 && fit.threshold <= 1.0f64.next_up());
        if !data.is_empty() {
            // No candidate threshold does better.
            let eval = |t: f64| {
                data.iter().filter(|s| (s.value >= t) == s.is_link).count() as f64
                    / data.len() as f64
            };
            for i in 0..=100 {
                let t = i as f64 / 100.0;
                prop_assert!(
                    fit.training_accuracy >= eval(t) - 1e-9,
                    "threshold {t} beats fit: {} > {}",
                    eval(t),
                    fit.training_accuracy
                );
            }
            prop_assert!((fit.training_accuracy - eval(fit.threshold)).abs() < 1e-9);
        }
    }

    #[test]
    fn train_test_split_partitions_indices(n in 0usize..200, frac in 0.0f64..=1.0, seed in 0u64..100) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
        if n > 0 && frac > 0.0 {
            prop_assert!(!train.is_empty());
        }
    }

    #[test]
    fn split_is_seed_deterministic(n in 1usize..100, seed in 0u64..50) {
        prop_assert_eq!(
            train_test_split(n, 0.3, seed),
            train_test_split(n, 0.3, seed)
        );
    }

    #[test]
    fn kfold_test_sets_partition_everything(n in 1usize..80, k in 1usize..12, seed in 0u64..50) {
        let folds = kfold(n, k, seed);
        prop_assert_eq!(folds.len(), k.min(n));
        let mut all: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        for f in &folds {
            prop_assert_eq!(f.train.len() + f.test.len(), n);
            // Disjoint.
            for t in &f.test {
                prop_assert!(!f.train.contains(t));
            }
        }
        // Balanced within one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(hi - lo <= 1);
    }

    #[test]
    fn kfold_is_deterministic(n in 1usize..50, k in 1usize..8, seed in 0u64..30) {
        prop_assert_eq!(kfold(n, k, seed), kfold(n, k, seed));
    }
}
