//! Token-blocking index: normalized term → posting list.
//!
//! Token blocking (Papadakis et al.'s baseline scheme) keys every document
//! by each of its normalized tokens; documents sharing a token land in the
//! same block. Over web text that is recall-oriented by construction — two
//! pages about one person almost always share *some* token — at the price
//! of enormous redundancy, which the meta-blocking stage then prunes.
//!
//! Terms go through the same pipeline as the TF-IDF substrate
//! (`weber-textindex`: tokenize → stopword filter → Porter stem), then a
//! document-frequency filter drops the useless extremes: singleton terms
//! (df < `min_df`) can never pair documents, and stopword-like terms
//! (df > `max_df_frac · n`) would pair everything with everything.

use weber_textindex::{is_stopword, porter_stem, tokenize, Vocabulary};

use crate::par_chunks;

/// One input document for the blocker: raw page text plus optional URL
/// (URL tokens — host and path words — carry strong identity signal and
/// are indexed alongside the text).
#[derive(Debug, Clone, Copy)]
pub struct DocRecord<'a> {
    /// Page text.
    pub text: &'a str,
    /// Page URL, when known.
    pub url: Option<&'a str>,
}

/// The filtered term index over a corpus.
#[derive(Debug)]
pub struct TermIndex {
    /// Per-document sorted distinct term ids, *after* the df filter.
    /// `doc_terms[i].len()` is exactly the number of token blocks that
    /// contain document `i` (what Jaccard edge weighting needs).
    pub doc_terms: Vec<Vec<u32>>,
    /// Posting lists surviving the df filter: `(term, ascending doc ids)`,
    /// sorted by term id. Each list is one token block.
    pub postings: Vec<(u32, Vec<u32>)>,
    /// Distinct normalized terms seen before filtering.
    pub distinct_terms: usize,
}

impl TermIndex {
    /// Number of documents indexed.
    pub fn len(&self) -> usize {
        self.doc_terms.len()
    }

    /// True for an index over no documents.
    pub fn is_empty(&self) -> bool {
        self.doc_terms.is_empty()
    }

    /// Number of token blocks (posting lists kept by the df filter).
    pub fn block_count(&self) -> usize {
        self.postings.len()
    }
}

/// Normalize one document into its term strings: lowercase alphanumeric
/// tokens of the text and URL, stopword-filtered and stemmed. Pure and
/// allocation-local, so corpus tokenization parallelises trivially.
fn normalize_doc(doc: &DocRecord) -> Vec<String> {
    let mut terms: Vec<String> = Vec::new();
    let mut push = |input: &str| {
        for tok in tokenize(input) {
            if is_stopword(&tok.text) {
                continue;
            }
            terms.push(porter_stem(&tok.text));
        }
    };
    push(doc.text);
    if let Some(url) = doc.url {
        push(url);
    }
    terms
}

/// Build the df-filtered term index over `docs`.
///
/// Tokenization/stemming runs on `threads` scoped workers over contiguous
/// document chunks; interning and df accounting are sequential in document
/// order, so the resulting term ids — and everything downstream — are
/// bit-identical for any thread count.
pub fn build_index(
    docs: &[DocRecord],
    min_df: usize,
    max_df_frac: f64,
    threads: usize,
) -> TermIndex {
    let normalized: Vec<Vec<String>> = par_chunks(docs, threads, normalize_doc);

    // Sequential interning keeps term ids independent of thread count.
    let mut vocab = Vocabulary::new();
    let mut doc_terms: Vec<Vec<u32>> = Vec::with_capacity(docs.len());
    for terms in &normalized {
        let mut ids: Vec<u32> = terms.iter().map(|t| vocab.intern(t).0).collect();
        ids.sort_unstable();
        ids.dedup();
        doc_terms.push(ids);
    }
    let distinct_terms = vocab.len();

    let mut df = vec![0u32; distinct_terms];
    for ids in &doc_terms {
        for &t in ids {
            df[t as usize] += 1;
        }
    }

    let n = docs.len();
    let max_df = ((max_df_frac * n as f64).ceil() as u32).max(2);
    let min_df = (min_df.max(2)) as u32;
    let keep: Vec<bool> = df.iter().map(|&d| d >= min_df && d <= max_df).collect();

    let mut postings: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut kept_lists: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for (d, ids) in doc_terms.iter_mut().enumerate() {
        ids.retain(|&t| keep[t as usize]);
        for &t in ids.iter() {
            kept_lists.entry(t).or_default().push(d as u32);
        }
    }
    postings.extend(kept_lists);
    TermIndex {
        doc_terms,
        postings,
        distinct_terms,
    }
}

/// Candidate pairs of plain token blocking: every distinct pair sharing at
/// least one kept term, as sorted `(i, j)` with `i < j`.
pub fn token_pairs(index: &TermIndex) -> Vec<(u32, u32)> {
    let mut set: std::collections::HashSet<u64> = Default::default();
    for (_, docs) in &index.postings {
        for (x, &i) in docs.iter().enumerate() {
            for &j in &docs[x + 1..] {
                set.insert(pack_pair(i, j));
            }
        }
    }
    let mut pairs: Vec<(u32, u32)> = set.into_iter().map(unpack_pair).collect();
    pairs.sort_unstable();
    pairs
}

/// Pack an ordered doc pair into one u64 key (`i < j` assumed; posting
/// lists are ascending so this holds by construction).
pub(crate) fn pack_pair(i: u32, j: u32) -> u64 {
    debug_assert!(i < j);
    (u64::from(i) << 32) | u64::from(j)
}

/// Inverse of [`pack_pair`].
pub(crate) fn unpack_pair(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs<'a>(texts: &'a [&'a str]) -> Vec<DocRecord<'a>> {
        texts
            .iter()
            .map(|t| DocRecord { text: t, url: None })
            .collect()
    }

    #[test]
    fn shared_terms_become_blocks() {
        let d = docs(&[
            "cohen studies databases",
            "cohen teaches databases",
            "gardens grow roses",
            "gardens need roses",
        ]);
        let index = build_index(&d, 2, 1.0, 1);
        assert_eq!(index.len(), 4);
        // "cohen", "databas", "garden", "rose" each pair two documents.
        assert_eq!(index.block_count(), 4);
        let pairs = token_pairs(&index);
        assert_eq!(pairs, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn df_filter_drops_extremes() {
        let d = docs(&[
            "alpha shared unique1",
            "beta shared unique2",
            "gamma shared unique3",
            "delta shared unique4",
        ]);
        // "shared" has df 4 > 0.5·4 = 2 → dropped; unique terms df 1 → dropped.
        let index = build_index(&d, 2, 0.5, 1);
        assert_eq!(index.block_count(), 0);
        assert!(token_pairs(&index).is_empty());
        assert!(index.distinct_terms >= 9);
    }

    #[test]
    fn url_tokens_are_indexed() {
        let d = vec![
            DocRecord {
                text: "a page about things",
                url: Some("http://apexuniversity.edu/cohen/papers"),
            },
            DocRecord {
                text: "a different page entirely",
                url: Some("http://apexuniversity.edu/cohen/talks"),
            },
        ];
        let index = build_index(&d, 2, 1.0, 1);
        // "apexuniversity", "edu", "cohen", "http", "page" pair the docs.
        assert_eq!(token_pairs(&index), vec![(0, 1)]);
    }

    #[test]
    fn parallel_indexing_is_deterministic() {
        let texts: Vec<String> = (0..64)
            .map(|i| format!("doc number {} about topic{} and topic{}", i, i % 7, i % 5))
            .collect();
        let d: Vec<DocRecord> = texts
            .iter()
            .map(|t| DocRecord { text: t, url: None })
            .collect();
        let a = build_index(&d, 2, 0.9, 1);
        let b = build_index(&d, 2, 0.9, 4);
        let c = build_index(&d, 2, 0.9, 7);
        assert_eq!(a.doc_terms, b.doc_terms);
        assert_eq!(a.postings, b.postings);
        assert_eq!(b.doc_terms, c.doc_terms);
        assert_eq!(b.postings, c.postings);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (i, j) in [(0u32, 1u32), (7, 9), (100, 4_000_000)] {
            assert_eq!(unpack_pair(pack_pair(i, j)), (i, j));
        }
    }

    #[test]
    fn empty_corpus_is_empty_index() {
        let index = build_index(&[], 2, 0.5, 2);
        assert!(index.is_empty());
        assert_eq!(index.block_count(), 0);
    }
}
