#![warn(missing_docs)]

//! # weber-block
//!
//! The corpus-scale blocking tier: everything the rest of the stack does
//! resolves *within* a block already keyed by an exact query name. This
//! crate builds those blocks from a raw dirty corpus — a flat pile of web
//! documents where block membership itself must be discovered (the setting
//! of the blocking/filtering literature: Papadakis et al.'s survey,
//! Efthymiou et al.'s web-entity benchmark).
//!
//! Three strategies, all over one shared df-filtered term index
//! ([`index::build_index`]):
//!
//! - **Token blocking** ([`Strategy::Token`]): documents sharing any kept
//!   normalized token are candidates. Maximum recall, maximum redundancy.
//! - **Meta-blocking** ([`Strategy::Meta`]): build the block graph, weight
//!   edges by CBS or Jaccard evidence, prune below the scaled mean weight
//!   ([`meta`]). Keeps the redundancy-heavy pairs, discards the long tail.
//! - **LSH** ([`Strategy::Lsh`]): MinHash signatures of the term sets cut
//!   into band buckets ([`lsh`]) — the PR 3 intra-block prefilter promoted
//!   to a corpus-scale candidate generator.
//!
//! The outcome ([`CandidateBlocks`]) carries the candidate pairs, the
//! connected components of the candidate graph (the blocks a downstream
//! resolver consumes), and comparison-count bookkeeping against the
//! brute-force baseline. Every stage is timed and counted through
//! `weber-obs` (`block.stage.*` histograms, `block.*` counters).

pub mod index;
pub mod lsh;
pub mod meta;

use std::sync::Arc;
use std::time::Instant;

use weber_graph::UnionFind;
use weber_obs::Registry;

pub use index::{build_index, token_pairs, DocRecord, TermIndex};
pub use lsh::{lsh_candidates, LshConfig, LshResult};
pub use meta::{build_block_graph, weight_edge_prune, BlockGraph, WeightScheme};

/// Candidate-generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Plain token blocking.
    Token,
    /// Meta-blocking: block graph + weight-edge pruning.
    #[default]
    Meta,
    /// MinHash/LSH band index.
    Lsh,
}

impl Strategy {
    /// Stable lowercase name (CLI/report key).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Token => "token",
            Strategy::Meta => "meta",
            Strategy::Lsh => "lsh",
        }
    }
}

impl std::str::FromStr for Strategy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "token" => Ok(Strategy::Token),
            "meta" => Ok(Strategy::Meta),
            "lsh" => Ok(Strategy::Lsh),
            other => Err(format!("unknown strategy '{other}' (token|meta|lsh)")),
        }
    }
}

/// Full blocking configuration.
#[derive(Debug, Clone)]
pub struct BlockingConfig {
    /// Candidate-generation strategy.
    pub strategy: Strategy,
    /// Minimum document frequency for a term to form a block (below it a
    /// term can never pair documents; effectively at least 2).
    pub min_df: usize,
    /// Maximum document frequency as a fraction of the corpus; terms above
    /// it are stopword-like and dropped.
    pub max_df_frac: f64,
    /// Meta-blocking edge weighting scheme.
    pub weight: WeightScheme,
    /// Weight-edge pruning threshold factor (× mean edge weight).
    pub prune_factor: f64,
    /// LSH parameters.
    pub lsh: LshConfig,
    /// Worker threads for the parallel stages (0 = available parallelism).
    pub threads: usize,
}

impl Default for BlockingConfig {
    fn default() -> Self {
        Self {
            strategy: Strategy::default(),
            min_df: 2,
            max_df_frac: 0.2,
            weight: WeightScheme::default(),
            prune_factor: 1.5,
            lsh: LshConfig::default(),
            threads: 0,
        }
    }
}

impl BlockingConfig {
    /// This configuration with another strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// Bookkeeping of one blocking run.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingStats {
    /// Documents in the corpus.
    pub docs: usize,
    /// Distinct normalized terms before df filtering.
    pub distinct_terms: usize,
    /// Token blocks (posting lists) surviving the df filter.
    pub token_blocks: usize,
    /// Candidate pairs emitted (the comparisons a downstream resolver
    /// performs).
    pub candidate_pairs: u64,
    /// Distinct pairs that collided in LSH band buckets before
    /// verification (0 for non-LSH strategies).
    pub bucket_pairs: u64,
    /// `n·(n−1)/2` — what resolving without blocking would cost.
    pub brute_force_pairs: u64,
    /// Emitted candidate blocks (connected components with ≥ 2 documents).
    pub blocks_built: usize,
}

impl BlockingStats {
    /// Comparisons avoided versus brute force.
    pub fn comparisons_avoided(&self) -> u64 {
        self.brute_force_pairs.saturating_sub(self.candidate_pairs)
    }

    /// Candidate pairs as a fraction of brute force (0 when the corpus has
    /// fewer than two documents).
    pub fn comparison_frac(&self) -> f64 {
        if self.brute_force_pairs == 0 {
            0.0
        } else {
            self.candidate_pairs as f64 / self.brute_force_pairs as f64
        }
    }
}

/// The outcome of a blocking run.
#[derive(Debug)]
pub struct CandidateBlocks {
    /// Strategy that produced it.
    pub strategy: Strategy,
    /// Candidate pairs, sorted `(i, j)` with `i < j`.
    pub pairs: Vec<(u32, u32)>,
    /// Candidate blocks: connected components of the candidate-pair graph
    /// with at least two documents, each sorted ascending; blocks ordered
    /// by their smallest document id. Documents in no block matched
    /// nothing and stay singletons.
    pub blocks: Vec<Vec<u32>>,
    /// Run bookkeeping.
    pub stats: BlockingStats,
}

impl CandidateBlocks {
    /// Pair recall against ground-truth co-referent pairs: the fraction of
    /// `truth` pairs present in the candidate set.
    pub fn pair_recall(&self, truth: &[(usize, usize)]) -> f64 {
        pair_recall(&self.pairs, truth)
    }
}

/// Pair recall of an arbitrary candidate set against ground-truth pairs
/// (`1.0` for empty truth — nothing to miss).
pub fn pair_recall(candidates: &[(u32, u32)], truth: &[(usize, usize)]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<u64> = candidates
        .iter()
        .map(|&(i, j)| (u64::from(i) << 32) | u64::from(j))
        .collect();
    let hit = truth
        .iter()
        .filter(|&&(i, j)| {
            let (a, b) = (i.min(j) as u64, i.max(j) as u64);
            set.contains(&((a << 32) | b))
        })
        .count();
    hit as f64 / truth.len() as f64
}

/// The blocking engine: a configuration plus a metrics registry.
#[derive(Debug)]
pub struct Blocker {
    config: BlockingConfig,
    metrics: Arc<Registry>,
}

impl Blocker {
    /// A blocker with its own private metrics registry.
    pub fn new(config: BlockingConfig) -> Self {
        Self::with_metrics(config, Arc::new(Registry::new()))
    }

    /// A blocker recording into a caller-supplied registry (so one process
    /// can aggregate several runs, or `weber block` can dump them).
    pub fn with_metrics(config: BlockingConfig, metrics: Arc<Registry>) -> Self {
        Self { config, metrics }
    }

    /// The configuration.
    pub fn config(&self) -> &BlockingConfig {
        &self.config
    }

    /// The metrics registry (counters `block.*`, per-stage histograms
    /// `block.stage.*_us`).
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Run the configured strategy over `docs` and produce candidate
    /// blocks. Deterministic for any `threads` setting.
    pub fn block(&self, docs: &[DocRecord]) -> CandidateBlocks {
        let total = Instant::now();
        let threads = effective_threads(self.config.threads, docs.len());

        let start = Instant::now();
        let index = build_index(docs, self.config.min_df, self.config.max_df_frac, threads);
        self.metrics
            .histogram("block.stage.index_us")
            .record_since(start);

        let mut bucket_pairs = 0u64;
        let pairs = match self.config.strategy {
            Strategy::Token => {
                let start = Instant::now();
                let pairs = token_pairs(&index);
                self.metrics
                    .histogram("block.stage.token_us")
                    .record_since(start);
                pairs
            }
            Strategy::Meta => {
                let start = Instant::now();
                let graph = build_block_graph(&index, self.config.weight, threads);
                self.metrics
                    .histogram("block.stage.graph_us")
                    .record_since(start);
                let start = Instant::now();
                let pairs = weight_edge_prune(&graph, self.config.prune_factor);
                self.metrics
                    .histogram("block.stage.prune_us")
                    .record_since(start);
                pairs
            }
            Strategy::Lsh => {
                let start = Instant::now();
                let result = lsh_candidates(&index.doc_terms, &self.config.lsh, threads);
                self.metrics
                    .histogram("block.stage.lsh_us")
                    .record_since(start);
                bucket_pairs = result.bucket_pairs;
                result.pairs
            }
        };

        let start = Instant::now();
        let blocks = components(docs.len(), &pairs);
        self.metrics
            .histogram("block.stage.components_us")
            .record_since(start);

        let n = docs.len() as u64;
        let stats = BlockingStats {
            docs: docs.len(),
            distinct_terms: index.distinct_terms,
            token_blocks: index.block_count(),
            candidate_pairs: pairs.len() as u64,
            bucket_pairs,
            brute_force_pairs: n * n.saturating_sub(1) / 2,
            blocks_built: blocks.len(),
        };
        self.metrics.counter("block.docs").add(stats.docs as u64);
        self.metrics
            .counter("block.token_blocks")
            .add(stats.token_blocks as u64);
        self.metrics
            .counter("block.candidate_pairs")
            .add(stats.candidate_pairs);
        self.metrics
            .counter("block.comparisons_avoided")
            .add(stats.comparisons_avoided());
        self.metrics
            .counter("block.blocks_built")
            .add(stats.blocks_built as u64);
        self.metrics
            .histogram("block.stage.total_us")
            .record_since(total);
        CandidateBlocks {
            strategy: self.config.strategy,
            pairs,
            blocks,
            stats,
        }
    }
}

/// Connected components of the candidate-pair graph with at least two
/// members: the blocks a downstream resolver consumes. Each block is
/// sorted; blocks are ordered by smallest member.
pub fn components(n: usize, pairs: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut uf = UnionFind::new(n);
    for &(i, j) in pairs {
        uf.union(i as usize, j as usize);
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
    for d in 0..n {
        by_root.entry(uf.find(d)).or_default().push(d as u32);
    }
    let mut blocks: Vec<Vec<u32>> = by_root
        .into_values()
        .filter(|members| members.len() >= 2)
        .collect();
    blocks.sort_unstable_by_key(|b| b[0]);
    blocks
}

/// Resolve a thread-count setting: 0 means available parallelism, and no
/// more workers than work items.
pub(crate) fn effective_threads(threads: usize, items: usize) -> usize {
    let chosen = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    };
    chosen.clamp(1, items.max(1))
}

/// Map `f` over `items` on scoped worker threads in contiguous chunks,
/// reassembled in input order — deterministic for any thread count.
pub(crate) fn par_chunks<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = effective_threads(threads, items.len());
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("blocking worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records<'a>(texts: &'a [&'a str]) -> Vec<DocRecord<'a>> {
        texts
            .iter()
            .map(|t| DocRecord { text: t, url: None })
            .collect()
    }

    #[test]
    fn strategies_parse_and_name() {
        for s in [Strategy::Token, Strategy::Meta, Strategy::Lsh] {
            assert_eq!(s.name().parse::<Strategy>().unwrap(), s);
        }
        assert!("bogus".parse::<Strategy>().is_err());
    }

    #[test]
    fn token_blocking_end_to_end() {
        let docs = records(&[
            "cohen databases indexing",
            "cohen databases querying",
            "roses gardens watering",
            "roses gardens pruning",
        ]);
        let blocker = Blocker::new(BlockingConfig {
            strategy: Strategy::Token,
            max_df_frac: 1.0,
            threads: 1,
            ..BlockingConfig::default()
        });
        let out = blocker.block(&docs);
        assert_eq!(out.pairs, vec![(0, 1), (2, 3)]);
        assert_eq!(out.blocks, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(out.stats.candidate_pairs, 2);
        assert_eq!(out.stats.brute_force_pairs, 6);
        assert_eq!(out.stats.comparisons_avoided(), 4);
        assert!(out.stats.comparison_frac() < 0.5);
        // Metrics recorded.
        let snap = blocker.metrics().snapshot();
        assert_eq!(snap.counter("block.candidate_pairs"), Some(2));
        assert_eq!(snap.counter("block.blocks_built"), Some(2));
        assert!(snap.histogram("block.stage.total_us").unwrap().count >= 1);
    }

    #[test]
    fn recall_accounts_hits_and_misses() {
        let candidates = vec![(0u32, 1u32), (2, 3)];
        assert_eq!(pair_recall(&candidates, &[(0, 1), (2, 3)]), 1.0);
        assert_eq!(pair_recall(&candidates, &[(1, 0), (0, 2)]), 0.5);
        assert_eq!(pair_recall(&candidates, &[]), 1.0);
        assert_eq!(pair_recall(&[], &[(0, 1)]), 0.0);
    }

    #[test]
    fn components_group_transitively() {
        let blocks = components(6, &[(0, 1), (1, 2), (4, 5)]);
        assert_eq!(blocks, vec![vec![0, 1, 2], vec![4, 5]]);
        assert!(components(3, &[]).is_empty());
    }

    #[test]
    fn all_strategies_are_deterministic_across_threads() {
        let texts: Vec<String> = (0..48)
            .map(|i| {
                format!(
                    "person{} writes about subject{} subject{} subject{} in place{}",
                    i % 8,
                    i % 8,
                    (i + 3) % 8,
                    (i + 5) % 8,
                    i % 4
                )
            })
            .collect();
        let docs: Vec<DocRecord> = texts
            .iter()
            .map(|t| DocRecord { text: t, url: None })
            .collect();
        for strategy in [Strategy::Token, Strategy::Meta, Strategy::Lsh] {
            let run = |threads: usize| {
                Blocker::new(BlockingConfig {
                    strategy,
                    max_df_frac: 0.5,
                    threads,
                    ..BlockingConfig::default()
                })
                .block(&docs)
            };
            let a = run(1);
            let b = run(4);
            let c = run(11);
            assert_eq!(a.pairs, b.pairs, "{strategy:?}");
            assert_eq!(b.pairs, c.pairs, "{strategy:?}");
            assert_eq!(a.blocks, b.blocks, "{strategy:?}");
            assert_eq!(a.stats, b.stats, "{strategy:?}");
        }
    }

    #[test]
    fn empty_corpus_yields_empty_outcome() {
        let out = Blocker::new(BlockingConfig::default()).block(&[]);
        assert!(out.pairs.is_empty());
        assert!(out.blocks.is_empty());
        assert_eq!(out.stats.brute_force_pairs, 0);
        assert_eq!(out.stats.comparison_frac(), 0.0);
    }

    #[test]
    fn par_chunks_preserves_order() {
        let items: Vec<usize> = (0..103).collect();
        let doubled = par_chunks(&items, 5, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = Vec::new();
        assert!(par_chunks(&empty, 3, |&x: &usize| x).is_empty());
    }
}
