//! Meta-blocking: the block graph, edge weighting, and pruning.
//!
//! Token blocking is redundancy-positive — co-referent documents share
//! *many* blocks, random ones share few. Meta-blocking (Papadakis et al.)
//! exploits exactly that: build the *block graph* whose nodes are documents
//! and whose edges connect documents co-occurring in at least one block,
//! weight every edge by how much evidence the co-occurrence carries, and
//! prune the light edges. What survives is the candidate-pair set.
//!
//! Two classic weighting schemes are provided:
//!
//! - **CBS** (Common Blocks Scheme): the raw number of blocks two
//!   documents share.
//! - **JS** (Jaccard Scheme): shared blocks over the union of both
//!   documents' blocks — CBS normalized by how block-prolific each
//!   document is.
//!
//! Pruning is **weight-edge pruning** (WEP): discard every edge lighter
//! than the global mean edge weight (scaled by `factor`).

use std::collections::HashMap;

use crate::index::{pack_pair, unpack_pair, TermIndex};

/// Edge weighting scheme for the block graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightScheme {
    /// Common Blocks Scheme: number of shared blocks.
    #[default]
    Cbs,
    /// Jaccard Scheme: shared blocks / union of blocks.
    Jaccard,
}

impl std::str::FromStr for WeightScheme {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cbs" => Ok(Self::Cbs),
            "js" | "jaccard" => Ok(Self::Jaccard),
            other => Err(format!("unknown weight scheme '{other}' (cbs|js)")),
        }
    }
}

/// The weighted block graph: one entry per document pair sharing at least
/// one block, sorted by `(i, j)`.
#[derive(Debug)]
pub struct BlockGraph {
    /// `(i, j, weight)` with `i < j`, sorted.
    pub edges: Vec<(u32, u32, f64)>,
}

impl BlockGraph {
    /// Number of edges (distinct co-occurring pairs).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for a graph with no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Mean edge weight (0 for an empty graph).
    pub fn mean_weight(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|&(_, _, w)| w).sum::<f64>() / self.edges.len() as f64
    }
}

/// Build the block graph from a term index on `threads` scoped workers.
///
/// Posting lists are chunked across workers; each worker accumulates
/// pair → common-block counts locally and the partial maps are merged by
/// addition. Addition is commutative, and the final edge list is sorted,
/// so the graph is bit-identical for any thread count or merge order.
pub fn build_block_graph(index: &TermIndex, scheme: WeightScheme, threads: usize) -> BlockGraph {
    let threads = crate::effective_threads(threads, index.postings.len());
    let chunk = index.postings.len().div_ceil(threads.max(1)).max(1);
    let partials: Vec<HashMap<u64, u32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = index
            .postings
            .chunks(chunk)
            .map(|lists| {
                scope.spawn(move || {
                    let mut common: HashMap<u64, u32> = HashMap::new();
                    for (_, docs) in lists {
                        for (x, &i) in docs.iter().enumerate() {
                            for &j in &docs[x + 1..] {
                                *common.entry(pack_pair(i, j)).or_insert(0) += 1;
                            }
                        }
                    }
                    common
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("block-graph worker panicked"))
            .collect()
    });

    let mut common: HashMap<u64, u32> = HashMap::new();
    for partial in partials {
        for (pair, count) in partial {
            *common.entry(pair).or_insert(0) += count;
        }
    }

    let mut edges: Vec<(u32, u32, f64)> = common
        .into_iter()
        .map(|(pair, shared)| {
            let (i, j) = unpack_pair(pair);
            let weight = match scheme {
                WeightScheme::Cbs => f64::from(shared),
                WeightScheme::Jaccard => {
                    let bi = index.doc_terms[i as usize].len() as f64;
                    let bj = index.doc_terms[j as usize].len() as f64;
                    let union = bi + bj - f64::from(shared);
                    if union > 0.0 {
                        f64::from(shared) / union
                    } else {
                        0.0
                    }
                }
            };
            (i, j, weight)
        })
        .collect();
    edges.sort_unstable_by_key(|&(i, j, _)| (i, j));
    BlockGraph { edges }
}

/// Weight-edge pruning: keep every edge whose weight is at least
/// `factor ×` the global mean edge weight. Returns the surviving pairs,
/// sorted.
pub fn weight_edge_prune(graph: &BlockGraph, factor: f64) -> Vec<(u32, u32)> {
    let threshold = factor * graph.mean_weight();
    graph
        .edges
        .iter()
        .filter(|&&(_, _, w)| w >= threshold)
        .map(|&(i, j, _)| (i, j))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{build_index, DocRecord};

    fn docs<'a>(texts: &'a [&'a str]) -> Vec<DocRecord<'a>> {
        texts
            .iter()
            .map(|t| DocRecord { text: t, url: None })
            .collect()
    }

    /// Two tight pairs sharing several terms each, one weak cross link.
    fn sample<'a>() -> Vec<DocRecord<'a>> {
        docs(&[
            "cohen databases querying indexing shared",
            "cohen databases querying indexing extra",
            "roses gardens pruning watering shared",
            "roses gardens pruning watering other",
        ])
    }

    #[test]
    fn cbs_counts_shared_blocks() {
        let d = sample();
        let index = build_index(&d, 2, 1.0, 1);
        let graph = build_block_graph(&index, WeightScheme::Cbs, 1);
        let heavy: Vec<_> = graph
            .edges
            .iter()
            .filter(|&&(_, _, w)| w >= 4.0)
            .map(|&(i, j, _)| (i, j))
            .collect();
        assert_eq!(heavy, vec![(0, 1), (2, 3)]);
        // The "shared" term links 0–2, 0–3 … with weight 1.
        assert!(graph.len() > 2);
    }

    #[test]
    fn wep_prunes_the_weak_cross_edges() {
        let d = sample();
        let index = build_index(&d, 2, 1.0, 1);
        for scheme in [WeightScheme::Cbs, WeightScheme::Jaccard] {
            let graph = build_block_graph(&index, scheme, 1);
            let kept = weight_edge_prune(&graph, 1.0);
            assert_eq!(kept, vec![(0, 1), (2, 3)], "{scheme:?}");
        }
    }

    #[test]
    fn jaccard_normalizes_by_block_count() {
        let d = sample();
        let index = build_index(&d, 2, 1.0, 1);
        let graph = build_block_graph(&index, WeightScheme::Jaccard, 1);
        for &(_, _, w) in &graph.edges {
            assert!((0.0..=1.0).contains(&w), "JS weight out of range: {w}");
        }
    }

    #[test]
    fn graph_is_deterministic_across_thread_counts() {
        let texts: Vec<String> = (0..80)
            .map(|i| {
                format!(
                    "entity{} feature{} feature{} feature{} background{}",
                    i % 11,
                    i % 11,
                    (i + 1) % 11,
                    (i + 2) % 11,
                    i % 3
                )
            })
            .collect();
        let d: Vec<DocRecord> = texts
            .iter()
            .map(|t| DocRecord { text: t, url: None })
            .collect();
        let index = build_index(&d, 2, 0.9, 1);
        let one = build_block_graph(&index, WeightScheme::Cbs, 1);
        let four = build_block_graph(&index, WeightScheme::Cbs, 4);
        let nine = build_block_graph(&index, WeightScheme::Cbs, 9);
        assert_eq!(one.edges, four.edges);
        assert_eq!(four.edges, nine.edges);
        let p1 = weight_edge_prune(&one, 1.0);
        let p4 = weight_edge_prune(&four, 1.0);
        assert_eq!(p1, p4);
    }

    #[test]
    fn empty_graph_behaves() {
        let index = build_index(&[], 2, 0.5, 1);
        let graph = build_block_graph(&index, WeightScheme::Cbs, 2);
        assert!(graph.is_empty());
        assert_eq!(graph.mean_weight(), 0.0);
        assert!(weight_edge_prune(&graph, 1.0).is_empty());
    }
}
