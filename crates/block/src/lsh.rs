//! Corpus-scale LSH candidate generation over MinHash signatures.
//!
//! PR 3 introduced a MinHash prefilter *inside* a block (skip word-vector
//! similarity for pairs whose signatures disagree). This module turns the
//! same machinery (`weber_textindex::MinHasher`) into a candidate
//! *generator* over the whole corpus: every document's df-filtered term
//! set is MinHash-signed, signatures are cut into bands, documents
//! colliding in any band bucket become bucket candidates, and candidates
//! are verified against the signature-estimated Jaccard before they are
//! emitted.
//!
//! The df filter (shared with token blocking) matters: without it the
//! Zipf head of the background vocabulary inflates every pair's Jaccard
//! and the buckets degenerate.

use std::collections::HashMap;

use weber_textindex::{MinHasher, TermId};

use crate::index::{pack_pair, unpack_pair};
use crate::par_chunks;

/// LSH configuration.
#[derive(Debug, Clone, Copy)]
pub struct LshConfig {
    /// Signature length (number of hash functions). Must be a multiple of
    /// `bands`.
    pub hashes: usize,
    /// Number of bands; rows per band is `hashes / bands`.
    pub bands: usize,
    /// Verification threshold: candidates below this signature-estimated
    /// Jaccard are discarded.
    pub threshold: f64,
    /// MinHash seed.
    pub seed: u64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            hashes: 192,
            bands: 192,
            threshold: 0.05,
            seed: 0x15BAD5EED,
        }
    }
}

/// LSH candidate generation outcome.
#[derive(Debug)]
pub struct LshResult {
    /// Verified candidate pairs, sorted `(i, j)` with `i < j`.
    pub pairs: Vec<(u32, u32)>,
    /// Distinct pairs that collided in at least one band bucket (before
    /// verification) — the honest measure of how much the bands fan out.
    pub bucket_pairs: u64,
}

fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Generate candidate pairs by LSH banding over MinHash signatures of the
/// per-document term sets (`doc_terms` as produced by
/// [`crate::index::build_index`] — already df-filtered and deduplicated).
///
/// Signatures are computed on `threads` scoped workers over contiguous
/// chunks; banding and verification are sequential, so the result is
/// deterministic for any thread count. Documents whose filtered term set
/// is empty take no part (their sentinel signatures would otherwise all
/// collide).
pub fn lsh_candidates(doc_terms: &[Vec<u32>], config: &LshConfig, threads: usize) -> LshResult {
    assert!(
        config.bands > 0 && config.hashes.is_multiple_of(config.bands),
        "bands must divide the signature length"
    );
    let hasher = MinHasher::new(config.hashes, 1, config.seed);
    let signatures: Vec<Option<Vec<u64>>> = par_chunks(doc_terms, threads, |terms| {
        if terms.is_empty() {
            return None;
        }
        let ids: Vec<TermId> = terms.iter().map(|&t| TermId(t)).collect();
        Some(hasher.signature(&ids))
    });

    let rows = config.hashes / config.bands;
    let mut candidates: std::collections::HashSet<u64> = Default::default();
    for band in 0..config.bands {
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (doc, sig) in signatures.iter().enumerate() {
            let Some(sig) = sig else { continue };
            let mut h = 0x100001b3u64 ^ band as u64;
            for &v in &sig[band * rows..(band + 1) * rows] {
                h = mix(h ^ v);
            }
            buckets.entry(h).or_default().push(doc as u32);
        }
        for bucket in buckets.values() {
            for (x, &i) in bucket.iter().enumerate() {
                for &j in &bucket[x + 1..] {
                    candidates.insert(pack_pair(i, j));
                }
            }
        }
    }

    let bucket_pairs = candidates.len() as u64;
    let mut pairs: Vec<(u32, u32)> = candidates
        .into_iter()
        .filter_map(|key| {
            let (i, j) = unpack_pair(key);
            let (Some(a), Some(b)) = (&signatures[i as usize], &signatures[j as usize]) else {
                return None;
            };
            (MinHasher::estimated_jaccard(a, b) >= config.threshold).then_some((i, j))
        })
        .collect();
    pairs.sort_unstable();
    LshResult {
        pairs,
        bucket_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Term sets with two obvious near-duplicate pairs and one loner.
    fn sample_terms() -> Vec<Vec<u32>> {
        let a: Vec<u32> = (0..40).collect();
        let mut a2 = a.clone();
        a2.extend(100..104); // small difference
        let b: Vec<u32> = (200..240).collect();
        let mut b2 = b.clone();
        b2.extend(300..304);
        let loner: Vec<u32> = (500..540).collect();
        vec![a, a2, b, b2, loner]
    }

    #[test]
    fn finds_high_jaccard_pairs_only() {
        let result = lsh_candidates(&sample_terms(), &LshConfig::default(), 1);
        assert_eq!(result.pairs, vec![(0, 1), (2, 3)]);
        assert!(result.bucket_pairs >= 2);
    }

    #[test]
    fn empty_term_sets_never_collide() {
        let terms = vec![vec![], vec![], (0..30).collect(), (0..30).collect()];
        let result = lsh_candidates(&terms, &LshConfig::default(), 1);
        assert_eq!(result.pairs, vec![(2, 3)]);
    }

    #[test]
    fn threshold_one_keeps_only_identical_sets() {
        let config = LshConfig {
            threshold: 1.0,
            ..LshConfig::default()
        };
        let terms = vec![
            (0..30).collect::<Vec<u32>>(),
            (0..30).collect(),
            (0..29).collect(),
        ];
        let result = lsh_candidates(&terms, &config, 1);
        assert_eq!(result.pairs, vec![(0, 1)]);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let terms: Vec<Vec<u32>> = (0..60)
            .map(|i| ((i % 12) * 20..(i % 12) * 20 + 25).collect())
            .collect();
        let one = lsh_candidates(&terms, &LshConfig::default(), 1);
        let four = lsh_candidates(&terms, &LshConfig::default(), 4);
        let many = lsh_candidates(&terms, &LshConfig::default(), 13);
        assert_eq!(one.pairs, four.pairs);
        assert_eq!(four.pairs, many.pairs);
        assert_eq!(one.bucket_pairs, four.bucket_pairs);
    }

    #[test]
    #[should_panic(expected = "bands must divide")]
    fn bands_must_divide_hashes() {
        let config = LshConfig {
            hashes: 10,
            bands: 3,
            ..LshConfig::default()
        };
        lsh_candidates(&[vec![1, 2, 3]], &config, 1);
    }
}
