//! Property-based tests for the text-index substrate.

use proptest::prelude::*;

use weber_textindex::sparse::SparseVector;
use weber_textindex::stem::porter_stem;
use weber_textindex::tfidf::{IdfScheme, TfIdf, TfScheme};
use weber_textindex::token::{tokenize, tokenize_words};
use weber_textindex::vocab::{TermId, Vocabulary};
use weber_textindex::{Analyzer, CorpusIndex};

/// Strategy: a sparse vector with non-negative weights over small term ids.
fn nonneg_vector() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..64, 0.0f64..10.0), 0..20).prop_map(|pairs| {
        SparseVector::from_pairs(pairs.into_iter().map(|(i, w)| (TermId(i), w)).collect())
    })
}

proptest! {
    #[test]
    fn tokenizer_output_is_lowercase_alphanumeric(s in ".{0,200}") {
        for tok in tokenize(&s) {
            prop_assert!(!tok.text.is_empty());
            prop_assert!(tok.text.chars().all(|c| c.is_alphanumeric()));
            prop_assert!(tok.text.chars().all(|c| c.to_lowercase().eq(std::iter::once(c))));
            prop_assert!(tok.start < tok.end && tok.end <= s.len());
        }
    }

    #[test]
    fn tokenizer_is_deterministic(s in ".{0,100}") {
        prop_assert_eq!(tokenize_words(&s), tokenize_words(&s));
    }

    #[test]
    fn stemmer_never_grows_ascii_words(w in "[a-z]{1,20}") {
        let stemmed = porter_stem(&w);
        prop_assert!(stemmed.len() <= w.len());
        prop_assert!(!stemmed.is_empty());
        prop_assert!(stemmed.bytes().all(|b| b.is_ascii_lowercase()));
    }

    #[test]
    fn stemmer_is_deterministic(w in "[a-z]{1,20}") {
        prop_assert_eq!(porter_stem(&w), porter_stem(&w));
    }

    #[test]
    fn cosine_bounds_and_symmetry(a in nonneg_vector(), b in nonneg_vector()) {
        let ab = a.cosine(&b);
        let ba = b.cosine(&a);
        prop_assert!((0.0..=1.0).contains(&ab), "cosine {ab}");
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn cosine_self_similarity_is_one(a in nonneg_vector()) {
        if !a.is_empty() {
            prop_assert!((a.cosine(&a) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn extended_jaccard_bounds_and_symmetry(a in nonneg_vector(), b in nonneg_vector()) {
        let ab = a.extended_jaccard(&b);
        prop_assert!((0.0..=1.0).contains(&ab), "ext-jaccard {ab}");
        prop_assert!((ab - b.extended_jaccard(&a)).abs() < 1e-12);
        // Tanimoto <= cosine for non-negative vectors.
        prop_assert!(ab <= a.cosine(&b) + 1e-9);
    }

    #[test]
    fn pearson_bounds_and_symmetry(a in nonneg_vector(), b in nonneg_vector(), dim in 64usize..256) {
        let ab = a.pearson(&b, dim);
        prop_assert!((0.0..=1.0).contains(&ab), "pearson {ab}");
        prop_assert!((ab - b.pearson(&a, dim)).abs() < 1e-9);
    }

    #[test]
    fn dot_is_bilinear_under_scaling(a in nonneg_vector(), b in nonneg_vector(), k in 0.0f64..10.0) {
        let lhs = a.scale(k).dot(&b);
        let rhs = k * a.dot(&b);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn from_pairs_entries_are_sorted_unique_nonzero(a in nonneg_vector()) {
        let entries = a.entries();
        for w in entries.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(entries.iter().all(|&(_, w)| w != 0.0));
    }

    #[test]
    fn vocabulary_roundtrip(words in proptest::collection::vec("[a-z]{1,8}", 1..50)) {
        let mut v = Vocabulary::new();
        let ids: Vec<TermId> = words.iter().map(|w| v.intern(w)).collect();
        for (w, id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.get(w), Some(*id));
            prop_assert_eq!(v.term(*id), Some(w.as_str()));
        }
        prop_assert!(v.len() <= words.len());
    }

    #[test]
    fn tfidf_weights_are_finite_and_nonnegative(
        tf in 0u32..1000, max_tf in 1u32..1000, df in 0u32..100, extra in 0u32..100,
    ) {
        let n_docs = df + extra;
        for tf_scheme in [TfScheme::Raw, TfScheme::Log, TfScheme::MaxNormalized, TfScheme::Binary] {
            for idf_scheme in [IdfScheme::None, IdfScheme::Plain, IdfScheme::Smooth, IdfScheme::Probabilistic] {
                let w = TfIdf::new(tf_scheme, idf_scheme).weight(tf, max_tf, df, n_docs);
                prop_assert!(w.is_finite());
                prop_assert!(w >= 0.0, "{tf_scheme:?}/{idf_scheme:?} gave {w}");
            }
        }
    }

    #[test]
    fn index_doc_lengths_match_analyzed_tokens(
        texts in proptest::collection::vec("[a-z ]{0,80}", 1..10),
    ) {
        let analyzer = Analyzer::plain();
        let mut index = CorpusIndex::new();
        let mut expected = Vec::new();
        for t in &texts {
            let tokens = analyzer.analyze(t);
            expected.push(tokens.len() as u32);
            index.add_document(&tokens);
        }
        for (i, &len) in expected.iter().enumerate() {
            prop_assert_eq!(index.doc_len(weber_textindex::DocId(i as u32)), len);
        }
        prop_assert_eq!(index.len(), texts.len());
    }
}
