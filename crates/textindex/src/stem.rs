//! Porter stemming algorithm (M.F. Porter, 1980).
//!
//! A faithful implementation of the original five-step suffix-stripping
//! algorithm, used by the analyzer so that TF-IDF vectors conflate
//! morphological variants ("resolution", "resolutions"; "cluster",
//! "clustering", "clustered") exactly as a Lucene English analyzer would.
//!
//! Only ASCII lowercase input is stemmed; tokens containing non-ASCII
//! characters or digits are returned unchanged (names like "miklós" must not
//! be mangled).

/// Stem a single lowercase word with the Porter algorithm.
///
/// Words shorter than 3 characters, or containing characters outside
/// `a..=z`, are returned unchanged.
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut w: Vec<u8> = word.as_bytes().to_vec();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("stemmer operates on ASCII")
}

/// True if the character at `i` is a consonant in Porter's sense.
fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// Porter's measure m of the stem `w[..len]`: the number of VC sequences.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants: one VC found.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= len {
            return m;
        }
    }
}

/// *v* — the stem `w[..len]` contains a vowel.
fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

/// *d — the stem ends with a double consonant.
fn ends_double_consonant(w: &[u8], len: usize) -> bool {
    len >= 2 && w[len - 1] == w[len - 2] && is_consonant(w, len - 1)
}

/// *o — the stem ends cvc where the final c is not w, x or y.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &[u8]) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix
}

/// If the word ends with `suffix` and the remaining stem has measure > `min_m`,
/// replace the suffix with `repl` and return true.
fn replace_if_m(w: &mut Vec<u8>, suffix: &[u8], repl: &[u8], min_m: usize) -> bool {
    if ends_with(w, suffix) {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > min_m {
            w.truncate(stem_len);
            w.extend_from_slice(repl);
        }
        // Porter: once a suffix from the rule set matches, no later rule in
        // the same step applies, even if the condition failed.
        return true;
    }
    false
}

fn step1a(w: &mut Vec<u8>) {
    // SSES -> SS and IES -> I both drop the final two bytes.
    if ends_with(w, b"sses") || ends_with(w, b"ies") {
        w.truncate(w.len() - 2);
    } else if ends_with(w, b"ss") {
        // unchanged
    } else if ends_with(w, b"s") {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    let mut cleanup = false;
    if ends_with(w, b"eed") {
        let stem_len = w.len() - 3;
        if measure(w, stem_len) > 0 {
            w.truncate(w.len() - 1);
        }
    } else if ends_with(w, b"ed") {
        let stem_len = w.len() - 2;
        if has_vowel(w, stem_len) {
            w.truncate(stem_len);
            cleanup = true;
        }
    } else if ends_with(w, b"ing") {
        let stem_len = w.len() - 3;
        if has_vowel(w, stem_len) {
            w.truncate(stem_len);
            cleanup = true;
        }
    }
    if cleanup {
        if ends_with(w, b"at") || ends_with(w, b"bl") || ends_with(w, b"iz") {
            w.push(b'e');
        } else if ends_double_consonant(w, w.len()) && !matches!(w[w.len() - 1], b'l' | b's' | b'z')
        {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, b"y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"tional", b"tion"),
        (b"enci", b"ence"),
        (b"anci", b"ance"),
        (b"izer", b"ize"),
        (b"abli", b"able"),
        (b"alli", b"al"),
        (b"entli", b"ent"),
        (b"eli", b"e"),
        (b"ousli", b"ous"),
        (b"ization", b"ize"),
        (b"ation", b"ate"),
        (b"ator", b"ate"),
        (b"alism", b"al"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"biliti", b"ble"),
    ];
    for (suffix, repl) in RULES {
        if replace_if_m(w, suffix, repl, 0) {
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&[u8], &[u8])] = &[
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"iciti", b"ic"),
        (b"ical", b"ic"),
        (b"ful", b""),
        (b"ness", b""),
    ];
    for (suffix, repl) in RULES {
        if replace_if_m(w, suffix, repl, 0) {
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const RULES: &[&[u8]] = &[
        b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment", b"ent",
        b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
    ];
    // "ion" requires the stem to end in s or t.
    if ends_with(w, b"ion") {
        let stem_len = w.len() - 3;
        if stem_len >= 1 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suffix in RULES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, b"e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w, w.len()) && w[w.len() - 1] == b'l' {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(word: &str) -> String {
        porter_stem(word)
    }

    #[test]
    fn canonical_porter_examples() {
        // Examples from the original paper / reference vocabulary.
        assert_eq!(s("caresses"), "caress");
        assert_eq!(s("ponies"), "poni");
        assert_eq!(s("ties"), "ti");
        assert_eq!(s("caress"), "caress");
        assert_eq!(s("cats"), "cat");
        assert_eq!(s("feed"), "feed");
        assert_eq!(s("agreed"), "agre");
        assert_eq!(s("plastered"), "plaster");
        assert_eq!(s("bled"), "bled");
        assert_eq!(s("motoring"), "motor");
        assert_eq!(s("sing"), "sing");
        assert_eq!(s("conflated"), "conflat");
        assert_eq!(s("troubled"), "troubl");
        assert_eq!(s("sized"), "size");
        assert_eq!(s("hopping"), "hop");
        assert_eq!(s("tanned"), "tan");
        assert_eq!(s("falling"), "fall");
        assert_eq!(s("hissing"), "hiss");
        assert_eq!(s("fizzed"), "fizz");
        assert_eq!(s("failing"), "fail");
        assert_eq!(s("filing"), "file");
        assert_eq!(s("happy"), "happi");
        assert_eq!(s("sky"), "sky");
    }

    #[test]
    fn step2_examples() {
        assert_eq!(s("relational"), "relat");
        assert_eq!(s("conditional"), "condit");
        assert_eq!(s("rational"), "ration");
        assert_eq!(s("valenci"), "valenc");
        assert_eq!(s("digitizer"), "digit");
        assert_eq!(s("operator"), "oper");
        assert_eq!(s("feudalism"), "feudal");
        assert_eq!(s("decisiveness"), "decis");
        assert_eq!(s("hopefulness"), "hope");
        assert_eq!(s("formaliti"), "formal");
        assert_eq!(s("sensitiviti"), "sensit");
        assert_eq!(s("sensibiliti"), "sensibl");
    }

    #[test]
    fn step3_and_4_examples() {
        assert_eq!(s("triplicate"), "triplic");
        assert_eq!(s("formative"), "form");
        assert_eq!(s("formalize"), "formal");
        assert_eq!(s("electrical"), "electr");
        assert_eq!(s("hopeful"), "hope");
        assert_eq!(s("goodness"), "good");
        assert_eq!(s("revival"), "reviv");
        assert_eq!(s("allowance"), "allow");
        assert_eq!(s("inference"), "infer");
        assert_eq!(s("airliner"), "airlin");
        assert_eq!(s("adoption"), "adopt");
        assert_eq!(s("adjustment"), "adjust");
        assert_eq!(s("effective"), "effect");
        assert_eq!(s("bowdlerize"), "bowdler");
    }

    #[test]
    fn step5_examples() {
        assert_eq!(s("probate"), "probat");
        assert_eq!(s("rate"), "rate");
        assert_eq!(s("cease"), "ceas");
        assert_eq!(s("controll"), "control");
        assert_eq!(s("roll"), "roll");
    }

    #[test]
    fn domain_vocabulary_conflates() {
        assert_eq!(s("clustering"), s("clustered"));
        assert_eq!(s("resolution"), s("resolutions"));
        assert_eq!(s("databases"), s("database"));
        assert_eq!(s("similarity"), s("similarities"));
    }

    #[test]
    fn short_and_nonascii_words_unchanged() {
        assert_eq!(s("go"), "go");
        assert_eq!(s("be"), "be");
        assert_eq!(s("miklós"), "miklós");
        assert_eq!(s("weps2"), "weps2");
    }

    #[test]
    fn measure_counts_vc_sequences() {
        // From Porter's paper: tr=0, ee=0, tree=0, by=0, trouble=1, oats=1,
        // trees=1, ivy=1, troubles=2, private=2, oaten=2.
        assert_eq!(measure(b"tr", 2), 0);
        assert_eq!(measure(b"tree", 4), 0);
        assert_eq!(measure(b"trouble", 7), 1);
        assert_eq!(measure(b"oats", 4), 1);
        assert_eq!(measure(b"ivy", 3), 1);
        assert_eq!(measure(b"troubles", 8), 2);
        assert_eq!(measure(b"private", 7), 2);
        assert_eq!(measure(b"oaten", 5), 2);
    }

    #[test]
    fn y_is_contextual() {
        // Leading y is a consonant; after a consonant it is a vowel.
        assert!(is_consonant(b"yes", 0));
        assert!(!is_consonant(b"by", 1));
        assert!(!is_consonant(b"say", 1)); // 'a' is a vowel
    }

    #[test]
    fn idempotent_on_already_stemmed() {
        for w in ["caress", "cat", "plaster", "motor", "fall"] {
            assert_eq!(s(&s(w)), s(w));
        }
    }
}
