//! The analysis pipeline: tokenize → stopword-filter → stem → intern.
//!
//! An [`Analyzer`] owns a shared [`Vocabulary`] so that every document
//! analyzed through it maps identical (stemmed) terms to identical
//! [`TermId`]s — the precondition for meaningful sparse-vector similarity.

use std::sync::RwLock;
use std::sync::RwLockReadGuard;

use crate::stem::porter_stem;
use crate::stopwords::is_stopword;
use crate::token::tokenize;
use crate::vocab::{TermId, Vocabulary};

/// A configurable text analyzer with a shared vocabulary.
///
/// Thread-safe: the vocabulary is behind an `RwLock`, so one analyzer can be
/// shared across worker threads when indexing a corpus in parallel.
#[derive(Debug, Default)]
pub struct Analyzer {
    vocab: RwLock<Vocabulary>,
    filter_stopwords: bool,
    stem: bool,
}

impl Analyzer {
    /// An analyzer with explicit settings.
    pub fn new(filter_stopwords: bool, stem: bool) -> Self {
        Self {
            vocab: RwLock::new(Vocabulary::new()),
            filter_stopwords,
            stem,
        }
    }

    /// The standard English pipeline: stopword filtering + Porter stemming.
    pub fn english() -> Self {
        Self::new(true, true)
    }

    /// A pipeline that only lowercases and tokenizes.
    pub fn plain() -> Self {
        Self::new(false, false)
    }

    /// Analyze `text` into a sequence of interned term ids.
    pub fn analyze(&self, text: &str) -> Vec<TermId> {
        let mut vocab = self.vocab.write().expect("vocabulary lock poisoned");
        tokenize(text)
            .into_iter()
            .filter(|t| !self.filter_stopwords || !is_stopword(&t.text))
            .map(|t| {
                if self.stem {
                    vocab.intern(&porter_stem(&t.text))
                } else {
                    vocab.intern(&t.text)
                }
            })
            .collect()
    }

    /// Normalise a single term through the same pipeline (no interning).
    /// Returns `None` if the term is filtered out.
    pub fn normalize_term(&self, term: &str) -> Option<String> {
        let toks = tokenize(term);
        let tok = toks.first()?;
        if self.filter_stopwords && is_stopword(&tok.text) {
            return None;
        }
        Some(if self.stem {
            porter_stem(&tok.text)
        } else {
            tok.text.clone()
        })
    }

    /// Read access to the shared vocabulary.
    pub fn vocabulary(&self) -> RwLockReadGuard<'_, Vocabulary> {
        self.vocab.read().expect("vocabulary lock poisoned")
    }

    /// Number of distinct terms interned so far.
    pub fn vocabulary_size(&self) -> usize {
        self.vocabulary().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwords_are_filtered() {
        let a = Analyzer::english();
        let ids = a.analyze("the quick brown fox");
        assert_eq!(ids.len(), 3); // "the" dropped
    }

    #[test]
    fn stemming_conflates_variants() {
        let a = Analyzer::english();
        let x = a.analyze("clustering");
        let y = a.analyze("clustered");
        assert_eq!(x, y);
    }

    #[test]
    fn plain_analyzer_keeps_everything() {
        let a = Analyzer::plain();
        let ids = a.analyze("the running dogs");
        assert_eq!(ids.len(), 3);
        let vocab = a.vocabulary();
        assert_eq!(vocab.term(ids[1]), Some("running"));
    }

    #[test]
    fn shared_vocabulary_across_documents() {
        let a = Analyzer::english();
        let x = a.analyze("database systems");
        let y = a.analyze("database research");
        assert_eq!(x[0], y[0]);
        assert_eq!(a.vocabulary_size(), 3);
    }

    #[test]
    fn normalize_term_matches_analyze() {
        let a = Analyzer::english();
        assert_eq!(a.normalize_term("Databases"), Some("databas".to_string()));
        assert_eq!(a.normalize_term("the"), None);
        assert_eq!(a.normalize_term(""), None);
    }

    #[test]
    fn analyzer_is_shareable_across_threads() {
        let a = std::sync::Arc::new(Analyzer::english());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let a = a.clone();
                std::thread::spawn(move || a.analyze(&format!("document number {i} text")))
            })
            .collect();
        for h in handles {
            assert!(!h.join().unwrap().is_empty());
        }
        // "document", "number", "text" + 4 distinct digits
        assert_eq!(a.vocabulary_size(), 7);
    }
}
