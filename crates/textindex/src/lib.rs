#![warn(missing_docs)]

//! # weber-textindex
//!
//! A small, self-contained text indexing substrate: tokenisation, stopword
//! filtering, Porter stemming, vocabulary interning, TF-IDF weighting and
//! sparse document vectors with the three vector similarities used by the
//! paper (cosine, Pearson correlation, extended Jaccard).
//!
//! This crate replaces the role Apache Lucene plays in the original system
//! ("for representing a webpage as document vector we use the services
//! provided by lucene"): it turns raw page text into TF-IDF weighted sparse
//! vectors that the similarity functions F8/F9/F10 consume.
//!
//! ## Quick example
//!
//! ```
//! use weber_textindex::{Analyzer, CorpusIndex, TfIdf};
//!
//! let analyzer = Analyzer::english();
//! let mut index = CorpusIndex::new();
//! let a = index.add_document(&analyzer.analyze("Databases and query processing"));
//! let b = index.add_document(&analyzer.analyze("Query optimisation in databases"));
//! let vectors = index.tfidf_vectors(TfIdf::default());
//! let sim = vectors[a.0 as usize].cosine(&vectors[b.0 as usize]);
//! assert!(sim > 0.0 && sim <= 1.0);
//! ```

pub mod analyzer;
pub mod incremental;
pub mod index;
pub mod minhash;
pub mod sparse;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod token;
pub mod vocab;

pub use analyzer::Analyzer;
pub use incremental::{VectorStore, WordVectorScheme};
pub use index::{CorpusIndex, DocId};
pub use minhash::{near_duplicates, MinHasher};
pub use sparse::SparseVector;
pub use stem::porter_stem;
pub use stopwords::is_stopword;
pub use tfidf::{IdfScheme, TfIdf, TfScheme};
pub use token::{normalize_phrase, slug, tokenize};
pub use vocab::{TermId, Vocabulary};
