//! Sparse vectors over term ids, with the similarity measures the paper's
//! TF-IDF based functions use: cosine (F8), Pearson correlation (F9) and
//! extended Jaccard / Tanimoto (F10).
//!
//! Entries are kept sorted by term id so that dot products and merges are
//! linear-time merge joins with no allocation.

use crate::vocab::TermId;

/// An immutable sparse vector: sorted `(TermId, weight)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(TermId, f64)>,
}

impl SparseVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from possibly unsorted, possibly duplicated `(id, weight)` pairs.
    /// Duplicate ids are summed; zero weights are dropped.
    pub fn from_pairs(mut pairs: Vec<(TermId, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(TermId, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => entries.push((id, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        Self { entries }
    }

    /// Replace this vector's contents from already-sorted, deduplicated
    /// `(id, weight)` pairs, reusing the existing allocation. Zero weights
    /// are dropped, matching [`from_pairs`](Self::from_pairs), so an
    /// in-place refresh stays indistinguishable from a fresh build.
    pub fn refill(&mut self, pairs: impl IntoIterator<Item = (TermId, f64)>) {
        self.entries.clear();
        self.entries
            .extend(pairs.into_iter().filter(|&(_, w)| w != 0.0));
        debug_assert!(
            self.entries.windows(2).all(|w| w[0].0 < w[1].0),
            "refill requires sorted, deduplicated term ids"
        );
    }

    /// Build from raw term counts.
    pub fn from_counts(counts: impl IntoIterator<Item = (TermId, u32)>) -> Self {
        Self::from_pairs(
            counts
                .into_iter()
                .map(|(id, c)| (id, f64::from(c)))
                .collect(),
        )
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(TermId, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True if the vector has no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight at `id`, or 0.
    pub fn get(&self, id: TermId) -> f64 {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|pos| self.entries[pos].1)
            .unwrap_or(0.0)
    }

    /// Sum of all weights.
    pub fn sum(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product via a sorted merge join.
    pub fn dot(&self, other: &Self) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        let mut acc = 0.0;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Cosine similarity in `[0, 1]` for non-negative vectors.
    ///
    /// Returns 0 when either vector is empty (the paper treats pages with
    /// missing features as maximally uninformative, i.e. no similarity
    /// evidence).
    pub fn cosine(&self, other: &Self) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(0.0, 1.0)
    }

    /// Pearson correlation similarity over a `dim`-dimensional space,
    /// rescaled from `[-1, 1]` to `[0, 1]` so it composes with the other
    /// similarity functions.
    ///
    /// The correlation treats every coordinate outside the union of supports
    /// as zero, so the means are `sum / dim`. Returns 0 if either vector is
    /// constant over the space (zero variance) or `dim == 0`.
    pub fn pearson(&self, other: &Self, dim: usize) -> f64 {
        if dim == 0 {
            return 0.0;
        }
        let n = dim as f64;
        let (sa, sb) = (self.sum(), other.sum());
        // sum((a_i - ma)(b_i - mb)) = dot(a,b) - ma*sb - mb*sa + n*ma*mb
        //                           = dot(a,b) - sa*sb/n.
        let cov = self.dot(other) - sa * sb / n;
        let var_a = self.entries.iter().map(|&(_, w)| w * w).sum::<f64>() - sa * sa / n;
        let var_b = other.entries.iter().map(|&(_, w)| w * w).sum::<f64>() - sb * sb / n;
        if var_a <= 0.0 || var_b <= 0.0 {
            return 0.0;
        }
        let r = (cov / (var_a.sqrt() * var_b.sqrt())).clamp(-1.0, 1.0);
        (r + 1.0) / 2.0
    }

    /// Extended Jaccard (Tanimoto) similarity:
    /// `dot / (|a|^2 + |b|^2 - dot)`, in `[0, 1]` for non-negative vectors.
    ///
    /// Returns 0 when both vectors are empty.
    pub fn extended_jaccard(&self, other: &Self) -> f64 {
        let dot = self.dot(other);
        let denom = self.norm().powi(2) + other.norm().powi(2) - dot;
        if denom <= 0.0 {
            return 0.0;
        }
        (dot / denom).clamp(0.0, 1.0)
    }

    /// Element-wise sum of two vectors.
    pub fn add(&self, other: &Self) -> Self {
        let mut pairs = self.entries.clone();
        pairs.extend_from_slice(&other.entries);
        Self::from_pairs(pairs)
    }

    /// Scale every weight by `factor`.
    pub fn scale(&self, factor: f64) -> Self {
        Self::from_pairs(
            self.entries
                .iter()
                .map(|&(id, w)| (id, w * factor))
                .collect(),
        )
    }

    /// A unit-norm copy, or an empty vector if the norm is zero.
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            Self::new()
        } else {
            self.scale(1.0 / n)
        }
    }
}

impl FromIterator<(TermId, f64)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (TermId, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(i, w)| (TermId(i), w)).collect())
    }

    #[test]
    fn from_pairs_sorts_dedups_and_drops_zeros() {
        let a = v(&[(3, 1.0), (1, 2.0), (3, 2.0), (5, 0.0)]);
        assert_eq!(a.entries(), &[(TermId(1), 2.0), (TermId(3), 3.0)]);
    }

    #[test]
    fn refill_replaces_contents_and_drops_zeros() {
        let mut a = v(&[(0, 1.0), (4, 2.0)]);
        a.refill([(TermId(1), 3.0), (TermId(2), 0.0), (TermId(7), 5.0)]);
        assert_eq!(a, v(&[(1, 3.0), (7, 5.0)]));
        a.refill(std::iter::empty());
        assert!(a.is_empty());
    }

    #[test]
    fn dot_matches_dense_computation() {
        let a = v(&[(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = v(&[(1, 5.0), (2, 4.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 4.0 + 3.0 * 1.0);
    }

    #[test]
    fn cosine_identity_and_orthogonality() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        let b = v(&[(2, 1.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&SparseVector::new()), 0.0);
    }

    #[test]
    fn cosine_hand_computed() {
        let a = v(&[(0, 1.0), (1, 1.0)]);
        let b = v(&[(0, 1.0)]);
        assert!((a.cosine(&b) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = v(&[(0, 1.0), (1, 2.0), (2, 3.0)]);
        let b = a.scale(2.0);
        // Scaled copies are perfectly correlated -> similarity 1.
        assert!((a.pearson(&b, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_anticorrelation_maps_to_zero() {
        // Over dim=2: a=(1,-1), b=(-1,1) are perfectly anti-correlated.
        let a = v(&[(0, 1.0), (1, -1.0)]);
        let b = v(&[(0, -1.0), (1, 1.0)]);
        assert!((a.pearson(&b, 2) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        let a = v(&[(0, 1.0)]);
        let flat = SparseVector::new();
        assert_eq!(a.pearson(&flat, 5), 0.0);
        assert_eq!(a.pearson(&a, 0), 0.0);
    }

    #[test]
    fn pearson_matches_dense_reference() {
        // Dense reference over dim=4.
        let a = v(&[(0, 2.0), (1, 1.0)]);
        let b = v(&[(0, 1.0), (2, 3.0)]);
        let ad = [2.0, 1.0, 0.0, 0.0];
        let bd = [1.0, 0.0, 3.0, 0.0];
        let n = 4.0;
        let (ma, mb) = (ad.iter().sum::<f64>() / n, bd.iter().sum::<f64>() / n);
        let cov: f64 = ad.iter().zip(&bd).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = ad.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = bd.iter().map(|y| (y - mb) * (y - mb)).sum();
        let expect = (cov / (va.sqrt() * vb.sqrt()) + 1.0) / 2.0;
        assert!((a.pearson(&b, 4) - expect).abs() < 1e-12);
    }

    #[test]
    fn extended_jaccard_identity_and_disjoint() {
        let a = v(&[(0, 1.0), (1, 2.0)]);
        let b = v(&[(5, 3.0)]);
        assert!((a.extended_jaccard(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.extended_jaccard(&b), 0.0);
        assert_eq!(
            SparseVector::new().extended_jaccard(&SparseVector::new()),
            0.0
        );
    }

    #[test]
    fn extended_jaccard_hand_computed() {
        // a=(1,0), b=(1,1): dot=1, |a|²=1, |b|²=2 -> 1/(1+2-1)=0.5.
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 1.0), (1, 1.0)]);
        assert!((a.extended_jaccard(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_and_scale() {
        let a = v(&[(0, 1.0), (1, 2.0)]);
        let b = v(&[(1, 3.0), (2, 4.0)]);
        let s = a.add(&b);
        assert_eq!(s.get(TermId(0)), 1.0);
        assert_eq!(s.get(TermId(1)), 5.0);
        assert_eq!(s.get(TermId(2)), 4.0);
        assert_eq!(a.scale(2.0).get(TermId(1)), 4.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        assert!(SparseVector::new().normalized().is_empty());
    }

    #[test]
    fn get_missing_is_zero() {
        let a = v(&[(2, 7.0)]);
        assert_eq!(a.get(TermId(0)), 0.0);
        assert_eq!(a.get(TermId(2)), 7.0);
    }
}
