//! String interning: a bidirectional map between terms and dense `u32` ids.
//!
//! Dense ids keep sparse vectors and posting lists compact (`u32` instead of
//! `String`), which matters on the hot similarity paths.

use std::collections::HashMap;

/// A dense identifier for an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// An append-only term interner.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    by_id: Vec<String>,
}

impl Vocabulary {
    /// Create an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = TermId(self.by_id.len() as u32);
        self.by_id.push(term.to_string());
        self.by_term.insert(term.to_string(), id);
        id
    }

    /// Look up an already-interned term without inserting.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// The term string for `id`, if `id` was produced by this vocabulary.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.by_id.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Iterate `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, s)| (TermId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("alpha");
        let b = v.intern("beta");
        assert_ne!(a, b);
        assert_eq!(v.intern("alpha"), a);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        for (i, w) in ["a", "b", "c"].iter().enumerate() {
            assert_eq!(v.intern(w), TermId(i as u32));
        }
    }

    #[test]
    fn roundtrip_term_lookup() {
        let mut v = Vocabulary::new();
        let id = v.intern("entity");
        assert_eq!(v.term(id), Some("entity"));
        assert_eq!(v.get("entity"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.term(TermId(999)), None);
    }

    #[test]
    fn iter_yields_all_pairs() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs, vec![(TermId(0), "x"), (TermId(1), "y")]);
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
