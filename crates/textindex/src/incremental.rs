//! Incremental word-vector materialisation with dirty-term tracking.
//!
//! A growing block invalidates TF-IDF weights in a very structured way: the
//! weight of term `t` in document `d` is `tf_part(t, d) · idf_factor(t)`,
//! where the tf part depends only on `d` itself (fixed once the document is
//! indexed) and the idf factor depends only on the corpus-wide `(df, N)`
//! statistics. [`VectorStore`] exploits that split: it caches each
//! document's tf-part *pattern* forever, keeps the idf factor table from
//! the last sync, and on [`sync`](VectorStore::sync) refreshes only the
//! vectors whose terms' idf factors actually changed — in place, via
//! [`SparseVector::refill`]. The refreshed weights are the *same f64
//! products* a from-scratch [`CorpusIndex::tfidf_vectors`] build computes,
//! so incremental and batch materialisation are bit-identical, not merely
//! close.
//!
//! The store also exposes a monotone [`generation`](VectorStore::generation)
//! counter that advances exactly when some *existing* vector changed value.
//! Downstream caches (per-function similarity graphs) key on it to decide
//! whether previously computed pairwise values are still valid.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::index::CorpusIndex;
use crate::sparse::SparseVector;
use crate::tfidf::TfIdf;
use crate::vocab::TermId;

/// How word vectors for the TF-IDF based similarity functions are weighted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WordVectorScheme {
    /// A TF-IDF scheme (the paper's choice).
    TfIdf(TfIdf),
    /// BM25 weighting (length-normalised, saturating; extension).
    Bm25 {
        /// Term-frequency saturation parameter (standard: 1.2).
        k1: f64,
        /// Length-normalisation strength (standard: 0.75).
        b: f64,
    },
}

impl Default for WordVectorScheme {
    fn default() -> Self {
        WordVectorScheme::TfIdf(TfIdf::default())
    }
}

impl WordVectorScheme {
    /// Standard BM25 parameters.
    pub fn bm25() -> Self {
        WordVectorScheme::Bm25 { k1: 1.2, b: 0.75 }
    }
}

/// Incrementally maintained word vectors over a [`CorpusIndex`].
///
/// Call [`sync`](VectorStore::sync) after adding documents to the index;
/// vectors then match a batch materialisation of the same index exactly.
#[derive(Debug, Default)]
pub struct VectorStore {
    scheme: WordVectorScheme,
    /// Per document: sorted `(term, tf-part)` pairs, computed once when the
    /// document first appears (TF-IDF schemes; unused under BM25).
    patterns: Vec<Vec<(TermId, f64)>>,
    /// Materialised vectors, aligned with the index's documents.
    vectors: Vec<SparseVector>,
    /// The idf factor per term as of the last sync.
    idf: HashMap<TermId, f64>,
    /// Advances exactly when a sync changes an already-materialised vector.
    generation: u64,
}

impl VectorStore {
    /// An empty store under `scheme`.
    pub fn new(scheme: WordVectorScheme) -> Self {
        Self {
            scheme,
            patterns: Vec::new(),
            vectors: Vec::new(),
            idf: HashMap::new(),
            generation: 0,
        }
    }

    /// The weighting scheme vectors are materialised under.
    pub fn scheme(&self) -> WordVectorScheme {
        self.scheme
    }

    /// Number of materialised vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if no vectors are materialised.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The vector of document `i` (as of the last sync).
    pub fn vector(&self, i: usize) -> &SparseVector {
        &self.vectors[i]
    }

    /// All vectors, in document order (as of the last sync).
    pub fn vectors(&self) -> &[SparseVector] {
        &self.vectors
    }

    /// A counter that advances exactly when a sync changed the value of an
    /// already-materialised vector. Appending documents whose terms leave
    /// every existing idf factor untouched (e.g. under
    /// [`IdfScheme::None`](crate::tfidf::IdfScheme::None)) does not advance
    /// it, so similarity values cached against earlier documents stay valid.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Bring the store up to date with `index`: materialise vectors for
    /// newly added documents and refresh existing vectors whose terms' idf
    /// factors changed. Equivalent — bit for bit — to rebuilding every
    /// vector from scratch under the store's scheme.
    pub fn sync(&mut self, index: &CorpusIndex) {
        debug_assert!(
            index.len() >= self.vectors.len(),
            "index shrank under the store"
        );
        match self.scheme {
            WordVectorScheme::TfIdf(t) => self.sync_tfidf(index, t),
            WordVectorScheme::Bm25 { k1, b } => {
                // BM25 weights depend on avgdl and N in a non-separable way;
                // fall back to a full rebuild.
                let old_len = self.vectors.len();
                self.vectors = index.bm25_vectors(k1, b);
                if old_len > 0 && index.len() > old_len {
                    self.generation += 1;
                }
            }
        }
    }

    fn sync_tfidf(&mut self, index: &CorpusIndex, t: TfIdf) {
        let old_len = self.vectors.len();
        // Cache the tf-part pattern of each new document once.
        for doc in old_len..index.len() {
            let (counts, max_tf) = index.doc_counts(doc);
            self.patterns.push(
                counts
                    .iter()
                    .map(|&(term, tf)| (term, t.tf_weight(tf, max_tf)))
                    .collect(),
            );
        }
        // Refresh the idf factor table, recording which factors changed.
        // Terms seen for the first time cannot occur in older documents, so
        // they are inserted without being marked dirty.
        let n_docs = index.len() as u32;
        let cached_before = self.idf.len();
        let mut dirty: HashSet<TermId> = HashSet::new();
        for (&term, &df) in index.df_table() {
            let factor = t.idf_weight(df, n_docs);
            match self.idf.entry(term) {
                Entry::Occupied(mut e) => {
                    if *e.get() != factor {
                        e.insert(factor);
                        dirty.insert(term);
                    }
                }
                Entry::Vacant(e) => {
                    e.insert(factor);
                }
            }
        }
        let all_dirty = cached_before > 0 && dirty.len() == cached_before;
        // Refill existing vectors that carry a dirty term; the tf parts are
        // strictly positive, so a changed factor always changes the weight.
        let mut changed_existing = false;
        for doc in 0..old_len {
            let pattern = &self.patterns[doc];
            if pattern.is_empty() {
                continue;
            }
            if all_dirty || pattern.iter().any(|&(term, _)| dirty.contains(&term)) {
                let idf = &self.idf;
                self.vectors[doc].refill(pattern.iter().map(|&(term, w)| (term, w * idf[&term])));
                changed_existing = true;
            }
        }
        if changed_existing {
            self.generation += 1;
        }
        // Materialise vectors for the new documents.
        for pattern in &self.patterns[old_len..] {
            let idf = &self.idf;
            self.vectors.push(
                pattern
                    .iter()
                    .map(|&(term, w)| (term, w * idf[&term]))
                    .collect(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::{IdfScheme, TfScheme};
    use crate::Analyzer;

    const TEXTS: &[&str] = &[
        "entity resolution on the web",
        "web document collections and resolution",
        "gardening tips for spring",
        "entity linking for web entities",
        "the the the", // all stopwords -> empty document
        "spring gardening with databases",
    ];

    fn all_tfidf_schemes() -> Vec<TfIdf> {
        let mut out = Vec::new();
        for tf in [
            TfScheme::Raw,
            TfScheme::Log,
            TfScheme::MaxNormalized,
            TfScheme::Binary,
        ] {
            for idf in [
                IdfScheme::None,
                IdfScheme::Plain,
                IdfScheme::Smooth,
                IdfScheme::Probabilistic,
            ] {
                out.push(TfIdf::new(tf, idf));
            }
        }
        out
    }

    #[test]
    fn incremental_sync_is_bit_identical_to_batch_for_every_scheme() {
        for scheme in all_tfidf_schemes() {
            let analyzer = Analyzer::english();
            let mut index = CorpusIndex::new();
            let mut store = VectorStore::new(WordVectorScheme::TfIdf(scheme));
            for text in TEXTS {
                index.add_document(&analyzer.analyze(text));
                store.sync(&index);
                let batch = index.tfidf_vectors(scheme);
                assert_eq!(store.len(), batch.len());
                for (got, want) in store.vectors().iter().zip(&batch) {
                    assert_eq!(got, want, "scheme {scheme:?} diverged from batch");
                }
            }
        }
    }

    #[test]
    fn sync_handles_multiple_documents_per_call() {
        let scheme = TfIdf::default();
        let analyzer = Analyzer::english();
        let mut index = CorpusIndex::new();
        let mut store = VectorStore::new(WordVectorScheme::TfIdf(scheme));
        index.add_document(&analyzer.analyze(TEXTS[0]));
        store.sync(&index);
        for text in &TEXTS[1..] {
            index.add_document(&analyzer.analyze(text));
        }
        store.sync(&index);
        assert_eq!(store.vectors(), index.tfidf_vectors(scheme).as_slice());
    }

    #[test]
    fn generation_advances_only_when_existing_vectors_change() {
        let analyzer = Analyzer::english();
        let mut index = CorpusIndex::new();
        let mut store = VectorStore::new(WordVectorScheme::default());
        index.add_document(&analyzer.analyze(TEXTS[0]));
        store.sync(&index);
        // First sync materialises vectors but changes no existing one.
        assert_eq!(store.generation(), 0);
        index.add_document(&analyzer.analyze(TEXTS[1]));
        store.sync(&index);
        // Smooth idf depends on N, so every factor (and doc 0) changed.
        assert_eq!(store.generation(), 1);
        // A sync with nothing new is a no-op.
        store.sync(&index);
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn constant_idf_never_advances_the_generation() {
        let scheme = TfIdf::new(TfScheme::Log, IdfScheme::None);
        let analyzer = Analyzer::english();
        let mut index = CorpusIndex::new();
        let mut store = VectorStore::new(WordVectorScheme::TfIdf(scheme));
        for text in TEXTS {
            index.add_document(&analyzer.analyze(text));
            store.sync(&index);
        }
        // idf factors are constant 1.0: old vectors never change value.
        assert_eq!(store.generation(), 0);
        assert_eq!(store.vectors(), index.tfidf_vectors(scheme).as_slice());
    }

    #[test]
    fn plain_idf_drops_ubiquitous_terms_like_a_batch_build() {
        // With Plain idf and df == N the factor is 0; the refreshed vector
        // must drop the entry exactly as `from_pairs` would.
        let scheme = TfIdf::new(TfScheme::Raw, IdfScheme::Plain);
        let analyzer = Analyzer::plain();
        let mut index = CorpusIndex::new();
        let mut store = VectorStore::new(WordVectorScheme::TfIdf(scheme));
        index.add_document(&analyzer.analyze("shared rare"));
        store.sync(&index);
        index.add_document(&analyzer.analyze("shared other"));
        store.sync(&index);
        assert_eq!(store.vectors(), index.tfidf_vectors(scheme).as_slice());
        let shared = analyzer.vocabulary().get("shared").unwrap();
        assert_eq!(store.vector(0).get(shared), 0.0);
    }

    #[test]
    fn bm25_falls_back_to_full_rebuild() {
        let analyzer = Analyzer::english();
        let mut index = CorpusIndex::new();
        let mut store = VectorStore::new(WordVectorScheme::bm25());
        index.add_document(&analyzer.analyze(TEXTS[0]));
        store.sync(&index);
        assert_eq!(store.generation(), 0);
        index.add_document(&analyzer.analyze(TEXTS[1]));
        store.sync(&index);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.vectors(), index.bm25_vectors(1.2, 0.75).as_slice());
    }
}
