//! TF-IDF weighting schemes.
//!
//! The paper's functions F8–F10 operate on "TF-IDF (based weights) words
//! vector"s; this module provides the standard weighting variants so the
//! exact scheme is a configuration choice rather than a hard-coded formula.

/// Term-frequency component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TfScheme {
    /// Raw count `tf`.
    Raw,
    /// `1 + ln(tf)` for `tf > 0` (sublinear scaling; Lucene-like).
    #[default]
    Log,
    /// `tf / max_tf_in_doc` (augmented is `0.5 + 0.5 * this`).
    MaxNormalized,
    /// Binary presence: 1 if the term occurs.
    Binary,
}

/// Inverse-document-frequency component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdfScheme {
    /// No document-frequency damping (weight 1).
    None,
    /// `ln(N / df)`.
    Plain,
    /// `ln(1 + N / df)` — always positive, robust when `df == N`.
    #[default]
    Smooth,
    /// `ln((N - df + 0.5) / (df + 0.5))` clamped at 0 (BM25-style).
    Probabilistic,
}

/// A full TF-IDF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TfIdf {
    /// Term-frequency scheme.
    pub tf: TfScheme,
    /// Inverse-document-frequency scheme.
    pub idf: IdfScheme,
}

impl TfIdf {
    /// Construct from components.
    pub fn new(tf: TfScheme, idf: IdfScheme) -> Self {
        Self { tf, idf }
    }

    /// The TF component for a term occurring `tf` times in a document whose
    /// most frequent term occurs `max_tf` times.
    pub fn tf_weight(&self, tf: u32, max_tf: u32) -> f64 {
        if tf == 0 {
            return 0.0;
        }
        match self.tf {
            TfScheme::Raw => f64::from(tf),
            TfScheme::Log => 1.0 + f64::from(tf).ln(),
            TfScheme::MaxNormalized => f64::from(tf) / f64::from(max_tf.max(1)),
            TfScheme::Binary => 1.0,
        }
    }

    /// The IDF component for a term appearing in `df` of `n_docs` documents.
    pub fn idf_weight(&self, df: u32, n_docs: u32) -> f64 {
        if df == 0 {
            return 0.0;
        }
        let (df, n) = (f64::from(df), f64::from(n_docs));
        match self.idf {
            IdfScheme::None => 1.0,
            IdfScheme::Plain => (n / df).ln().max(0.0),
            IdfScheme::Smooth => (1.0 + n / df).ln(),
            IdfScheme::Probabilistic => ((n - df + 0.5) / (df + 0.5)).ln().max(0.0),
        }
    }

    /// Combined weight.
    pub fn weight(&self, tf: u32, max_tf: u32, df: u32, n_docs: u32) -> f64 {
        self.tf_weight(tf, max_tf) * self.idf_weight(df, n_docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tf_is_zero_weight() {
        let w = TfIdf::default();
        assert_eq!(w.weight(0, 10, 5, 100), 0.0);
    }

    #[test]
    fn raw_and_log_tf() {
        let raw = TfIdf::new(TfScheme::Raw, IdfScheme::None);
        assert_eq!(raw.tf_weight(7, 10), 7.0);
        let log = TfIdf::new(TfScheme::Log, IdfScheme::None);
        assert!((log.tf_weight(1, 10) - 1.0).abs() < 1e-12);
        assert!((log.tf_weight(10, 10) - (1.0 + 10f64.ln())).abs() < 1e-12);
    }

    #[test]
    fn binary_and_max_normalized_tf() {
        let b = TfIdf::new(TfScheme::Binary, IdfScheme::None);
        assert_eq!(b.tf_weight(42, 100), 1.0);
        let m = TfIdf::new(TfScheme::MaxNormalized, IdfScheme::None);
        assert_eq!(m.tf_weight(5, 10), 0.5);
        assert_eq!(m.tf_weight(5, 0), 5.0); // max_tf clamped to 1
    }

    #[test]
    fn idf_schemes_hand_computed() {
        let t = TfIdf::new(TfScheme::Raw, IdfScheme::Plain);
        assert!((t.idf_weight(10, 100) - 10f64.ln()).abs() < 1e-12);
        let s = TfIdf::new(TfScheme::Raw, IdfScheme::Smooth);
        assert!((s.idf_weight(10, 100) - 11f64.ln()).abs() < 1e-12);
        let p = TfIdf::new(TfScheme::Raw, IdfScheme::Probabilistic);
        assert!((p.idf_weight(10, 100) - (90.5f64 / 10.5).ln()).abs() < 1e-12);
    }

    #[test]
    fn ubiquitous_terms_get_low_idf() {
        let plain = TfIdf::new(TfScheme::Raw, IdfScheme::Plain);
        assert_eq!(plain.idf_weight(100, 100), 0.0);
        let smooth = TfIdf::new(TfScheme::Raw, IdfScheme::Smooth);
        assert!(smooth.idf_weight(100, 100) > 0.0); // never fully zero
        let prob = TfIdf::new(TfScheme::Raw, IdfScheme::Probabilistic);
        assert_eq!(prob.idf_weight(100, 100), 0.0);
    }

    #[test]
    fn rarer_terms_weigh_more() {
        for idf in [
            IdfScheme::Plain,
            IdfScheme::Smooth,
            IdfScheme::Probabilistic,
        ] {
            let t = TfIdf::new(TfScheme::Raw, idf);
            assert!(
                t.idf_weight(1, 100) > t.idf_weight(50, 100),
                "{idf:?} must be monotone decreasing in df"
            );
        }
    }

    #[test]
    fn unseen_term_idf_is_zero() {
        let t = TfIdf::default();
        assert_eq!(t.idf_weight(0, 100), 0.0);
    }
}
