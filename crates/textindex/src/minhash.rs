//! MinHash signatures and LSH banding for near-duplicate detection.
//!
//! Web crawls contain mirrors: the same page syndicated on several hosts
//! (the corpus generator reproduces this). Near-duplicates carry no
//! independent evidence, so a production resolver wants to find them
//! cheaply — MinHash estimates the Jaccard similarity of token-shingle
//! sets in O(signature length), and LSH banding finds candidate pairs
//! without comparing all `n²` documents.

use crate::vocab::TermId;

/// A MinHash signature scheme: `k` hash permutations simulated by seeded
/// mixing of a single 64-bit hash.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Vec<u64>,
    /// Shingle width in tokens.
    shingle: usize,
}

fn mix(mut x: u64) -> u64 {
    // splitmix64 finaliser — a strong 64-bit mixer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

impl MinHasher {
    /// A scheme with `k` hash functions over `shingle`-token shingles.
    /// Panics if `k == 0` or `shingle == 0`.
    pub fn new(k: usize, shingle: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash function");
        assert!(shingle > 0, "shingle width must be positive");
        let seeds = (0..k as u64)
            .map(|i| mix(seed ^ i.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1)))
            .collect();
        Self { seeds, shingle }
    }

    /// Signature length.
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Compute the signature of a token sequence. An empty or
    /// shorter-than-shingle document yields the all-`u64::MAX` signature
    /// (matching nothing except other empty documents).
    pub fn signature(&self, tokens: &[TermId]) -> Vec<u64> {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        if tokens.len() < self.shingle {
            return sig;
        }
        for window in tokens.windows(self.shingle) {
            // Hash the shingle once, then derive k values.
            let mut h = 0xcbf29ce484222325u64;
            for t in window {
                h = mix(h ^ u64::from(t.0));
            }
            for (s, seed) in sig.iter_mut().zip(&self.seeds) {
                let v = mix(h ^ seed);
                if v < *s {
                    *s = v;
                }
            }
        }
        sig
    }

    /// Estimated Jaccard similarity of the shingle sets behind two
    /// signatures: the fraction of agreeing components.
    pub fn estimated_jaccard(a: &[u64], b: &[u64]) -> f64 {
        assert_eq!(a.len(), b.len(), "signatures must share a scheme");
        if a.is_empty() {
            return 0.0;
        }
        let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
        agree as f64 / a.len() as f64
    }
}

/// Find candidate near-duplicate pairs by LSH banding: signatures are cut
/// into `bands` bands; documents sharing any band hash become candidates,
/// which are then verified against `threshold` by the signature estimate.
///
/// Returns verified pairs `(i, j, estimated_jaccard)` with `i < j`, sorted.
/// `bands` must divide the signature length.
pub fn near_duplicates(
    signatures: &[Vec<u64>],
    bands: usize,
    threshold: f64,
) -> Vec<(usize, usize, f64)> {
    use std::collections::HashMap;
    let Some(first) = signatures.first() else {
        return Vec::new();
    };
    let k = first.len();
    assert!(
        bands > 0 && k % bands == 0,
        "bands must divide the signature length"
    );
    let rows = k / bands;
    let mut candidates: std::collections::BTreeSet<(usize, usize)> = Default::default();
    for band in 0..bands {
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (doc, sig) in signatures.iter().enumerate() {
            assert_eq!(sig.len(), k, "signatures must share a scheme");
            let mut h = 0x100001b3u64 ^ band as u64;
            for &v in &sig[band * rows..(band + 1) * rows] {
                h = mix(h ^ v);
            }
            buckets.entry(h).or_default().push(doc);
        }
        for bucket in buckets.values() {
            for (x, &i) in bucket.iter().enumerate() {
                for &j in &bucket[x + 1..] {
                    candidates.insert((i.min(j), i.max(j)));
                }
            }
        }
    }
    candidates
        .into_iter()
        .filter_map(|(i, j)| {
            let est = MinHasher::estimated_jaccard(&signatures[i], &signatures[j]);
            (est >= threshold).then_some((i, j, est))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(ids: &[u32]) -> Vec<TermId> {
        ids.iter().map(|&i| TermId(i)).collect()
    }

    #[test]
    fn identical_documents_have_identical_signatures() {
        let mh = MinHasher::new(64, 3, 7);
        let doc = toks(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let a = mh.signature(&doc);
        let b = mh.signature(&doc);
        assert_eq!(a, b);
        assert_eq!(MinHasher::estimated_jaccard(&a, &b), 1.0);
    }

    #[test]
    fn disjoint_documents_rarely_agree() {
        let mh = MinHasher::new(128, 2, 7);
        let a = mh.signature(&toks(&(0..50).collect::<Vec<_>>()));
        let b = mh.signature(&toks(&(100..150).collect::<Vec<_>>()));
        assert!(MinHasher::estimated_jaccard(&a, &b) < 0.1);
    }

    #[test]
    fn estimate_tracks_true_jaccard() {
        // Two documents sharing half their shingles.
        let mh = MinHasher::new(256, 1, 3);
        let a: Vec<TermId> = toks(&(0..100).collect::<Vec<_>>());
        let b: Vec<TermId> = toks(&(50..150).collect::<Vec<_>>());
        // True Jaccard of 1-shingles: 50 / 150 = 1/3.
        let est = MinHasher::estimated_jaccard(&mh.signature(&a), &mh.signature(&b));
        assert!((est - 1.0 / 3.0).abs() < 0.12, "estimate {est}");
    }

    #[test]
    fn near_duplicates_finds_the_mirror() {
        let mh = MinHasher::new(64, 3, 1);
        let original: Vec<TermId> = toks(&(0..60).collect::<Vec<_>>());
        let mut mirror = original.clone();
        mirror.extend(toks(&[200, 201])); // appended syndication note
        let unrelated: Vec<TermId> = toks(&(300..360).collect::<Vec<_>>());
        let sigs = vec![
            mh.signature(&original),
            mh.signature(&mirror),
            mh.signature(&unrelated),
        ];
        let pairs = near_duplicates(&sigs, 16, 0.5);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
        assert!(pairs[0].2 > 0.8);
    }

    #[test]
    fn short_documents_do_not_spuriously_match() {
        let mh = MinHasher::new(32, 3, 1);
        let tiny = mh.signature(&toks(&[1]));
        let other = mh.signature(&toks(&[2]));
        // Both all-MAX sentinels: they "agree", but that's the defined
        // semantics for sub-shingle docs, so banding would pair them; the
        // caller filters empty docs. Verify the sentinel shape.
        assert!(tiny.iter().all(|&v| v == u64::MAX));
        assert_eq!(MinHasher::estimated_jaccard(&tiny, &other), 1.0);
    }

    #[test]
    fn near_duplicates_degenerate_inputs() {
        assert!(near_duplicates(&[], 4, 0.5).is_empty());
        let mh = MinHasher::new(16, 2, 1);
        let one = vec![mh.signature(&toks(&[1, 2, 3]))];
        assert!(near_duplicates(&one, 4, 0.5).is_empty());
    }

    #[test]
    #[should_panic(expected = "bands must divide")]
    fn bands_must_divide_signature() {
        let sigs = vec![vec![0u64; 10]];
        near_duplicates(&sigs, 3, 0.5);
    }

    #[test]
    #[should_panic(expected = "share a scheme")]
    fn mismatched_signatures_panic() {
        MinHasher::estimated_jaccard(&[1, 2], &[1, 2, 3]);
    }
}
