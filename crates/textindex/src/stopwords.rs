//! English stopword list and filtering.
//!
//! The list is the classic SMART-derived short list used by most analyzers;
//! it is intentionally compact — the corpus generator produces text whose
//! function words come from this list, so filtering it removes exactly the
//! non-discriminative mass, as a Lucene `StandardAnalyzer` would.

/// Alphabetically sorted stopword table (binary-searchable).
pub static STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "ought",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Returns true if `word` (expected lowercase) is an English stopword.
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} >= {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "of", "is", "a"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["database", "entity", "resolution", "cohen", "zurich"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase_contract() {
        // Callers must lowercase first; uppercase forms are not in the table.
        assert!(!is_stopword("The"));
    }
}
