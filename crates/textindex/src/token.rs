//! Unicode-aware word tokenisation.
//!
//! The tokenizer splits on any character that is not alphanumeric, lowercases
//! the result, and records byte offsets so downstream extractors (e.g. the
//! dictionary NER in `weber-extract`) can map matches back into the source
//! text.

/// A single token produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lowercased token text.
    pub text: String,
    /// Byte offset of the token start in the original input.
    pub start: usize,
    /// Byte offset one past the token end in the original input.
    pub end: usize,
}

impl Token {
    /// Length of the token in bytes of the lowercased form.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the token text is empty (never true for tokens from
    /// [`tokenize`]).
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

/// Split `input` into lowercase alphanumeric tokens with byte offsets.
///
/// Apostrophes inside words are dropped together with their suffix when the
/// suffix is a possessive (`'s`), matching common analyzer behaviour; other
/// punctuation always terminates a token.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut start = 0usize;
    for (idx, ch) in input.char_indices() {
        if ch.is_alphanumeric() {
            if cur.is_empty() {
                start = idx;
            }
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            tokens.push(Token {
                text: std::mem::take(&mut cur),
                start,
                end: idx,
            });
        }
    }
    if !cur.is_empty() {
        tokens.push(Token {
            text: cur,
            start,
            end: input.len(),
        });
    }
    // Strip possessive "s" tokens produced by "X's" if preceded by an
    // apostrophe in the source: "cohen's" -> ["cohen"].
    strip_possessives(input, tokens)
}

fn strip_possessives(input: &str, tokens: Vec<Token>) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut out: Vec<Token> = Vec::with_capacity(tokens.len());
    for tok in tokens {
        let is_possessive_s = tok.text == "s"
            && tok.start > 0
            && matches!(bytes.get(tok.start - 1), Some(b'\'') | Some(b'\xe2'));
        let follows_word = out
            .last()
            .is_some_and(|p: &Token| tok.start >= 1 && p.end + 1 >= tok.start);
        if is_possessive_s && follows_word {
            continue;
        }
        out.push(tok);
    }
    out
}

/// Convenience: tokenize and return just the token strings.
pub fn tokenize_words(input: &str) -> Vec<String> {
    tokenize(input).into_iter().map(|t| t.text).collect()
}

/// Canonical phrase form for blocking keys and name comparison: lowercase
/// alphanumeric tokens joined by single spaces (`"  W.  Cohen's Page "` →
/// `"w cohen page"`).
///
/// This is *the* name-normalization helper of the workspace — `weber-corpus`
/// (dirty-corpus surface forms), `weber-block` (token blocking keys) and the
/// gazetteer-facing code all share it instead of keeping parallel
/// lowercase/cleanup copies.
pub fn normalize_phrase(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for tok in tokenize(input) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&tok.text);
    }
    out
}

/// Collapse a phrase into a single lowercase alphanumeric slug with no
/// separators (`"Apex University"` → `"apexuniversity"`) — the form used
/// for synthetic host names and file-system-safe keys.
pub fn slug(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for tok in tokenize(input) {
        out.push_str(&tok.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        let words = tokenize_words("Hello, world! Entity-resolution.");
        assert_eq!(words, ["hello", "world", "entity", "resolution"]);
    }

    #[test]
    fn lowercases_and_keeps_digits() {
        let words = tokenize_words("WePS-2 dataset from 2009");
        assert_eq!(words, ["weps", "2", "dataset", "from", "2009"]);
    }

    #[test]
    fn records_byte_offsets() {
        let toks = tokenize("ab cd");
        assert_eq!(toks[0].start, 0);
        assert_eq!(toks[0].end, 2);
        assert_eq!(toks[1].start, 3);
        assert_eq!(toks[1].end, 5);
    }

    #[test]
    fn empty_input_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn unicode_is_lowercased() {
        let words = tokenize_words("Zoltán MIKLÓS");
        assert_eq!(words, ["zoltán", "miklós"]);
    }

    #[test]
    fn possessive_s_is_dropped() {
        let words = tokenize_words("Cohen's papers");
        assert_eq!(words, ["cohen", "papers"]);
    }

    #[test]
    fn trailing_token_without_delimiter() {
        let words = tokenize_words("end token");
        assert_eq!(words, ["end", "token"]);
    }

    #[test]
    fn normalize_phrase_canonicalizes() {
        assert_eq!(normalize_phrase("  W.  Cohen's  Page "), "w cohen page");
        assert_eq!(normalize_phrase("apex-university"), "apex university");
        assert_eq!(normalize_phrase(""), "");
        // Already-canonical input is a fixed point.
        assert_eq!(normalize_phrase("w cohen page"), "w cohen page");
    }

    #[test]
    fn slug_strips_separators() {
        assert_eq!(slug("Apex University"), "apexuniversity");
        assert_eq!(slug("granite-labs"), "granitelabs");
        assert_eq!(slug(""), "");
    }

    #[test]
    fn token_len_matches_text() {
        let toks = tokenize("alpha beta");
        assert_eq!(toks[0].len(), 5);
        assert!(!toks[0].is_empty());
    }
}
