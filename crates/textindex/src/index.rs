//! A corpus index: per-document term frequencies, corpus document
//! frequencies, and TF-IDF vector materialisation.

use std::collections::HashMap;

use crate::sparse::SparseVector;
use crate::tfidf::TfIdf;
use crate::vocab::TermId;

/// A dense identifier for a document within one [`CorpusIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Per-document term statistics.
#[derive(Debug, Clone, Default)]
struct DocStats {
    /// Term counts, sorted by term id.
    counts: Vec<(TermId, u32)>,
    /// Highest single-term count in the document.
    max_tf: u32,
    /// Total number of token occurrences.
    len: u32,
}

/// An in-memory inverted-statistics index over analyzed documents.
///
/// Documents are added as token-id sequences (see
/// [`Analyzer::analyze`](crate::Analyzer)); the index tracks term and
/// document frequencies and can materialise TF-IDF [`SparseVector`]s for all
/// documents under any [`TfIdf`] scheme.
#[derive(Debug, Default)]
pub struct CorpusIndex {
    docs: Vec<DocStats>,
    /// Document frequency per term.
    df: HashMap<TermId, u32>,
}

impl CorpusIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an analyzed document (sequence of term ids); returns its id.
    pub fn add_document(&mut self, terms: &[TermId]) -> DocId {
        let mut counts: HashMap<TermId, u32> = HashMap::with_capacity(terms.len());
        let len = terms.len() as u32;
        for &t in terms {
            *counts.entry(t).or_insert(0) += 1;
        }
        for &t in counts.keys() {
            *self.df.entry(t).or_insert(0) += 1;
        }
        let max_tf = counts.values().copied().max().unwrap_or(0);
        let mut counts: Vec<(TermId, u32)> = counts.into_iter().collect();
        counts.sort_unstable_by_key(|&(t, _)| t);
        let id = DocId(self.docs.len() as u32);
        self.docs.push(DocStats {
            counts,
            max_tf,
            len,
        });
        id
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True if no documents have been added.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct terms seen across the corpus.
    pub fn vocabulary_size(&self) -> usize {
        self.df.len()
    }

    /// Document frequency of `term`.
    pub fn document_frequency(&self, term: TermId) -> u32 {
        self.df.get(&term).copied().unwrap_or(0)
    }

    /// Token count of document `doc`, or 0 for an unknown id.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.docs.get(doc.0 as usize).map_or(0, |d| d.len)
    }

    /// The sorted `(term, count)` pairs of document `doc` together with its
    /// highest single-term count, for incremental weight materialisation.
    pub(crate) fn doc_counts(&self, doc: usize) -> (&[(TermId, u32)], u32) {
        let stats = &self.docs[doc];
        (&stats.counts, stats.max_tf)
    }

    /// The document-frequency table, for incremental idf refresh.
    pub(crate) fn df_table(&self) -> &HashMap<TermId, u32> {
        &self.df
    }

    /// Term frequency of `term` in `doc`.
    pub fn term_frequency(&self, doc: DocId, term: TermId) -> u32 {
        self.docs
            .get(doc.0 as usize)
            .and_then(|d| {
                d.counts
                    .binary_search_by_key(&term, |&(t, _)| t)
                    .ok()
                    .map(|pos| d.counts[pos].1)
            })
            .unwrap_or(0)
    }

    /// Materialise the TF-IDF vector of one document.
    pub fn tfidf_vector(&self, doc: DocId, scheme: TfIdf) -> SparseVector {
        let n_docs = self.docs.len() as u32;
        let Some(stats) = self.docs.get(doc.0 as usize) else {
            return SparseVector::new();
        };
        stats
            .counts
            .iter()
            .map(|&(term, tf)| {
                let df = self.document_frequency(term);
                (term, scheme.weight(tf, stats.max_tf, df, n_docs))
            })
            .collect()
    }

    /// Materialise TF-IDF vectors for every document, in doc-id order.
    pub fn tfidf_vectors(&self, scheme: TfIdf) -> Vec<SparseVector> {
        (0..self.docs.len() as u32)
            .map(|i| self.tfidf_vector(DocId(i), scheme))
            .collect()
    }

    /// Mean document length in tokens (0 for an empty index).
    pub fn average_doc_len(&self) -> f64 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.docs.iter().map(|d| f64::from(d.len)).sum::<f64>() / self.docs.len() as f64
    }

    /// Materialise the BM25-weighted vector of one document:
    /// `idf · tf·(k1+1) / (tf + k1·(1 − b + b·dl/avgdl))` with the
    /// probabilistic idf. Standard parameters are `k1 = 1.2`, `b = 0.75`.
    ///
    /// BM25 saturates term frequency and normalises for document length,
    /// which makes long noisy pages less dominant than raw TF-IDF does.
    pub fn bm25_vector(&self, doc: DocId, k1: f64, b: f64) -> SparseVector {
        let n_docs = self.docs.len() as u32;
        let avgdl = self.average_doc_len().max(1.0);
        let Some(stats) = self.docs.get(doc.0 as usize) else {
            return SparseVector::new();
        };
        let dl = f64::from(stats.len);
        let idf_scheme = TfIdf::new(crate::tfidf::TfScheme::Raw, crate::tfidf::IdfScheme::Smooth);
        stats
            .counts
            .iter()
            .map(|&(term, tf)| {
                let tf = f64::from(tf);
                let idf = idf_scheme.idf_weight(self.document_frequency(term), n_docs);
                let weight = idf * tf * (k1 + 1.0) / (tf + k1 * (1.0 - b + b * dl / avgdl));
                (term, weight)
            })
            .collect()
    }

    /// BM25 vectors for every document, in doc-id order.
    pub fn bm25_vectors(&self, k1: f64, b: f64) -> Vec<SparseVector> {
        (0..self.docs.len() as u32)
            .map(|i| self.bm25_vector(DocId(i), k1, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::{IdfScheme, TfScheme};
    use crate::Analyzer;

    fn build(texts: &[&str]) -> (CorpusIndex, Analyzer) {
        let analyzer = Analyzer::english();
        let mut index = CorpusIndex::new();
        for t in texts {
            index.add_document(&analyzer.analyze(t));
        }
        (index, analyzer)
    }

    #[test]
    fn counts_terms_and_docs() {
        let (index, _) = build(&["data data systems", "systems research"]);
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        assert_eq!(index.vocabulary_size(), 3);
    }

    #[test]
    fn term_and_document_frequencies() {
        let analyzer = Analyzer::english();
        let mut index = CorpusIndex::new();
        let d0 = index.add_document(&analyzer.analyze("alpha alpha beta"));
        let d1 = index.add_document(&analyzer.analyze("beta gamma"));
        let alpha = analyzer.vocabulary().get("alpha").unwrap();
        let beta = analyzer.vocabulary().get("beta").unwrap();
        assert_eq!(index.term_frequency(d0, alpha), 2);
        assert_eq!(index.term_frequency(d1, alpha), 0);
        assert_eq!(index.document_frequency(beta), 2);
        assert_eq!(index.document_frequency(alpha), 1);
        assert_eq!(index.doc_len(d0), 3);
    }

    #[test]
    fn tfidf_vector_raw_plain_hand_computed() {
        let analyzer = Analyzer::new(false, false); // no stopwords/stemming
        let mut index = CorpusIndex::new();
        let d0 = index.add_document(&analyzer.analyze("cat cat dog"));
        index.add_document(&analyzer.analyze("dog fish"));
        let scheme = TfIdf::new(TfScheme::Raw, IdfScheme::Plain);
        let v = index.tfidf_vector(d0, scheme);
        let cat = analyzer.vocabulary().get("cat").unwrap();
        let dog = analyzer.vocabulary().get("dog").unwrap();
        // cat: tf=2, df=1, N=2 -> 2*ln(2); dog: tf=1, df=2 -> ln(1)=0.
        assert!((v.get(cat) - 2.0 * 2f64.ln()).abs() < 1e-12);
        assert_eq!(v.get(dog), 0.0);
    }

    #[test]
    fn unknown_doc_yields_empty_vector() {
        let (index, _) = build(&["a b c"]);
        assert!(index.tfidf_vector(DocId(99), TfIdf::default()).is_empty());
        assert_eq!(index.doc_len(DocId(99)), 0);
    }

    #[test]
    fn tfidf_vectors_cover_all_docs() {
        let (index, _) = build(&["one two", "two three", "three four"]);
        let vs = index.tfidf_vectors(TfIdf::default());
        assert_eq!(vs.len(), 3);
        assert!(vs.iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn identical_docs_have_cosine_one() {
        let (index, _) = build(&["entity resolution web", "entity resolution web"]);
        let vs = index.tfidf_vectors(TfIdf::default());
        assert!((vs[0].cosine(&vs[1]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bm25_weights_are_positive_and_saturating() {
        let analyzer = Analyzer::plain();
        let mut index = CorpusIndex::new();
        // "cat" occurs 1x in d0 and 10x in d1; saturation means the weight
        // ratio is far below 10x.
        let d0 = index.add_document(&analyzer.analyze("cat dog"));
        let many_cats = "cat ".repeat(10) + "dog";
        let d1 = index.add_document(&analyzer.analyze(&many_cats));
        let cat = analyzer.vocabulary().get("cat").unwrap();
        let v0 = index.bm25_vector(d0, 1.2, 0.75);
        let v1 = index.bm25_vector(d1, 1.2, 0.75);
        assert!(v0.get(cat) > 0.0);
        assert!(v1.get(cat) > v0.get(cat));
        assert!(
            v1.get(cat) / v0.get(cat) < 4.0,
            "BM25 must saturate: ratio {}",
            v1.get(cat) / v0.get(cat)
        );
    }

    #[test]
    fn bm25_normalises_for_document_length() {
        let analyzer = Analyzer::plain();
        let mut index = CorpusIndex::new();
        // Same tf for "rare", but d1 is much longer.
        let d0 = index.add_document(&analyzer.analyze("rare word here"));
        let long = format!("rare {}", "filler ".repeat(50));
        let d1 = index.add_document(&analyzer.analyze(&long));
        let rare = analyzer.vocabulary().get("rare").unwrap();
        let v0 = index.bm25_vector(d0, 1.2, 0.75);
        let v1 = index.bm25_vector(d1, 1.2, 0.75);
        assert!(
            v0.get(rare) > v1.get(rare),
            "short doc should weight the term higher"
        );
    }

    #[test]
    fn bm25_unknown_doc_and_avgdl() {
        let (index, _) = build(&["xx yy zz", "ww vv"]);
        assert!(index.bm25_vector(DocId(99), 1.2, 0.75).is_empty());
        assert!((index.average_doc_len() - 2.5).abs() < 1e-12);
        assert_eq!(CorpusIndex::new().average_doc_len(), 0.0);
        assert_eq!(index.bm25_vectors(1.2, 0.75).len(), 2);
    }

    #[test]
    fn empty_document_is_allowed() {
        let analyzer = Analyzer::english();
        let mut index = CorpusIndex::new();
        let d = index.add_document(&analyzer.analyze("the of and")); // all stopwords
        assert_eq!(index.doc_len(d), 0);
        assert!(index.tfidf_vector(d, TfIdf::default()).is_empty());
    }
}
