//! Property-based tests for the evaluation measures.

use proptest::prelude::*;

use weber_eval::bcubed::bcubed;
use weber_eval::entropy::{mutual_information, nmi, partition_entropy, v_measure};
use weber_eval::pairwise::pairwise;
use weber_eval::purity::{fp_measure, inverse_purity, purity};
use weber_eval::rand_index::{adjusted_rand_index, rand_index};
use weber_eval::MetricSet;
use weber_graph::Partition;

fn labels(n: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0u32..(n as u32).max(1), n)
}

/// A relabelling of a partition (permuted label names) must not change any
/// measure — clustering metrics only see the grouping.
fn shuffle_labels(ls: &[u32], offset: u32) -> Vec<u32> {
    ls.iter().map(|&l| (l + offset) % 97 + 1000).collect()
}

proptest! {
    #[test]
    fn all_measures_stay_in_unit_interval(a in labels(12), b in labels(12)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        for v in [
            purity(&p, &t),
            inverse_purity(&p, &t),
            fp_measure(&p, &t),
            rand_index(&p, &t),
            bcubed(&p, &t).precision,
            bcubed(&p, &t).recall,
            bcubed(&p, &t).f_measure(),
            pairwise(&p, &t).precision(),
            pairwise(&p, &t).recall(),
            pairwise(&p, &t).f_measure(),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "measure out of range: {v}");
        }
    }

    #[test]
    fn perfect_prediction_scores_one(a in labels(12)) {
        let p = Partition::from_labels(a);
        let m = MetricSet::evaluate(&p, &p);
        prop_assert_eq!(m, MetricSet { fp: 1.0, f: 1.0, rand: 1.0 });
        prop_assert!((adjusted_rand_index(&p, &p) - 1.0).abs() < 1e-9);
        prop_assert_eq!(bcubed(&p, &p).f_measure(), 1.0);
    }

    #[test]
    fn measures_are_invariant_under_relabelling(a in labels(10), b in labels(10), off in 1u32..96) {
        let p1 = Partition::from_labels(a.clone());
        let p2 = Partition::from_labels(shuffle_labels(&a, off));
        let t = Partition::from_labels(b);
        // Internal hash-map iteration order may differ between labelings,
        // so floating-point sums can differ in the last bits.
        prop_assert!((fp_measure(&p1, &t) - fp_measure(&p2, &t)).abs() < 1e-12);
        prop_assert!((rand_index(&p1, &t) - rand_index(&p2, &t)).abs() < 1e-12);
        prop_assert!(
            (pairwise(&p1, &t).f_measure() - pairwise(&p2, &t).f_measure()).abs() < 1e-12
        );
        prop_assert!((bcubed(&p1, &t).f_measure() - bcubed(&p2, &t).f_measure()).abs() < 1e-12);
    }

    #[test]
    fn rand_and_fp_are_symmetric_in_their_arguments(a in labels(10), b in labels(10)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        prop_assert!((rand_index(&p, &t) - rand_index(&t, &p)).abs() < 1e-12);
        prop_assert!((fp_measure(&p, &t) - fp_measure(&t, &p)).abs() < 1e-12);
        prop_assert!(
            (adjusted_rand_index(&p, &t) - adjusted_rand_index(&t, &p)).abs() < 1e-9
        );
    }

    #[test]
    fn purity_and_inverse_purity_are_dual(a in labels(10), b in labels(10)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        prop_assert_eq!(purity(&p, &t), inverse_purity(&t, &p));
    }

    #[test]
    fn purity_is_one_iff_clusters_are_pure(a in labels(10), b in labels(10)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        let pure = purity(&p, &t);
        // Every predicted cluster is a subset of a truth cluster iff
        // purity == 1.
        let clusters_pure = p.clusters().iter().all(|c| {
            c.windows(2).all(|w| t.same_cluster(w[0], w[1]))
                || c.iter().all(|&i| c.iter().all(|&j| t.same_cluster(i, j)))
        });
        prop_assert_eq!((pure - 1.0).abs() < 1e-12, clusters_pure);
    }

    #[test]
    fn singletons_have_perfect_pairwise_precision(b in labels(12)) {
        let t = Partition::from_labels(b);
        let p = Partition::singletons(12);
        prop_assert_eq!(pairwise(&p, &t).precision(), 1.0);
        prop_assert_eq!(bcubed(&p, &t).precision, 1.0);
        prop_assert_eq!(purity(&p, &t), 1.0);
    }

    #[test]
    fn single_cluster_has_perfect_recall(b in labels(12)) {
        let t = Partition::from_labels(b);
        let p = Partition::single_cluster(12);
        prop_assert_eq!(pairwise(&p, &t).recall(), 1.0);
        prop_assert_eq!(bcubed(&p, &t).recall, 1.0);
        prop_assert_eq!(inverse_purity(&p, &t), 1.0);
    }

    #[test]
    fn rand_index_equals_pairwise_agreement(a in labels(9), b in labels(9)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        let s = pairwise(&p, &t);
        let expected = (s.true_positives + s.true_negatives) as f64 / s.total_pairs() as f64;
        prop_assert!((rand_index(&p, &t) - expected).abs() < 1e-12);
    }

    #[test]
    fn entropy_measures_are_bounded(a in labels(10), b in labels(10)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        let v = nmi(&p, &t);
        prop_assert!((0.0..=1.0).contains(&v), "nmi {v}");
        let mi = mutual_information(&p, &t);
        prop_assert!(mi >= -1e-9);
        prop_assert!(mi <= partition_entropy(&p) + 1e-9);
        prop_assert!(mi <= partition_entropy(&t) + 1e-9);
        let vm = v_measure(&p, &t);
        prop_assert!((0.0..=1.0).contains(&vm.homogeneity));
        prop_assert!((0.0..=1.0).contains(&vm.completeness));
        prop_assert!((0.0..=1.0).contains(&vm.v()));
    }

    #[test]
    fn nmi_is_symmetric_and_maximal_on_self(a in labels(10), b in labels(10)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        prop_assert!((nmi(&p, &t) - nmi(&t, &p)).abs() < 1e-9);
        prop_assert!((nmi(&p, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn f_measure_is_harmonic_mean(a in labels(9), b in labels(9)) {
        let (p, t) = (Partition::from_labels(a), Partition::from_labels(b));
        let s = pairwise(&p, &t);
        let (pr, rc) = (s.precision(), s.recall());
        if pr + rc > 0.0 {
            let expected = 2.0 * pr * rc / (pr + rc);
            prop_assert!((s.f_measure() - expected).abs() < 1e-12);
        }
    }
}
