//! Pairwise precision / recall / F-measure.
//!
//! Every unordered document pair is a binary classification instance: "same
//! person" or not. Precision and recall are computed over those instances;
//! the F-measure is their harmonic mean — the `F`-rows of Table II.

use weber_graph::Partition;

use crate::check_same_len;

/// Confusion counts and derived scores over document pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairwiseScores {
    /// Pairs linked in both predicted and truth.
    pub true_positives: u64,
    /// Pairs linked in predicted but not in truth.
    pub false_positives: u64,
    /// Pairs linked in truth but not in predicted.
    pub false_negatives: u64,
    /// Pairs linked in neither.
    pub true_negatives: u64,
}

impl PairwiseScores {
    /// Precision = TP / (TP + FP); 1.0 when no pairs were predicted
    /// (vacuously precise).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when the truth contains no pairs.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1: harmonic mean of precision and recall.
    pub fn f_measure(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// Weighted F-measure with parameter `beta` (`beta > 1` favours recall).
    pub fn f_beta(&self, beta: f64) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        let b2 = beta * beta;
        if p + r == 0.0 {
            0.0
        } else {
            (1.0 + b2) * p * r / (b2 * p + r)
        }
    }

    /// Total number of pairs covered.
    pub fn total_pairs(&self) -> u64 {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }
}

/// Compute pairwise confusion counts of `predicted` against `truth`.
pub fn pairwise(predicted: &Partition, truth: &Partition) -> PairwiseScores {
    check_same_len(predicted, truth);
    let n = predicted.len();
    let mut s = PairwiseScores {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        true_negatives: 0,
    };
    for i in 0..n {
        for j in i + 1..n {
            match (predicted.same_cluster(i, j), truth.same_cluster(i, j)) {
                (true, true) => s.true_positives += 1,
                (true, false) => s.false_positives += 1,
                (false, true) => s.false_negatives += 1,
                (false, false) => s.true_negatives += 1,
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(labels: &[u32]) -> Partition {
        Partition::from_labels(labels.to_vec())
    }

    #[test]
    fn perfect_prediction() {
        let truth = p(&[0, 0, 1, 1, 2]);
        let s = pairwise(&truth, &truth);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f_measure(), 1.0);
    }

    #[test]
    fn singletons_have_full_precision_zero_recall() {
        let truth = p(&[0, 0, 0]);
        let pred = p(&[0, 1, 2]);
        let s = pairwise(&pred, &truth);
        assert_eq!(s.precision(), 1.0); // vacuous
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.f_measure(), 0.0);
    }

    #[test]
    fn one_big_cluster_has_full_recall() {
        let truth = p(&[0, 0, 1, 1]);
        let pred = p(&[0, 0, 0, 0]);
        let s = pairwise(&pred, &truth);
        assert_eq!(s.recall(), 1.0);
        // 6 predicted pairs, 2 true -> precision 1/3.
        assert!((s.precision() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_confusion() {
        // truth: {0,1},{2,3}; pred: {0,1,2},{3}
        let truth = p(&[0, 0, 1, 1]);
        let pred = p(&[0, 0, 0, 1]);
        let s = pairwise(&pred, &truth);
        // predicted pairs: (0,1),(0,2),(1,2); true pairs: (0,1),(2,3)
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 2);
        assert_eq!(s.false_negatives, 1);
        assert_eq!(s.true_negatives, 2);
        assert_eq!(s.total_pairs(), 6);
        assert!((s.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.recall() - 0.5).abs() < 1e-12);
        let f = 2.0 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5);
        assert!((s.f_measure() - f).abs() < 1e-12);
    }

    #[test]
    fn f_beta_weights_recall() {
        let truth = p(&[0, 0, 1, 1]);
        let pred = p(&[0, 0, 0, 0]);
        let s = pairwise(&pred, &truth);
        assert!(s.f_beta(2.0) > s.f_beta(0.5)); // recall-heavy case
    }

    #[test]
    fn empty_partitions() {
        let s = pairwise(&p(&[]), &p(&[]));
        assert_eq!(s.total_pairs(), 0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f_measure(), 1.0);
    }

    #[test]
    #[should_panic(expected = "same documents")]
    fn mismatched_lengths_panic() {
        pairwise(&p(&[0, 1]), &p(&[0, 1, 2]));
    }
}
