//! Rand index and adjusted Rand index.

use weber_graph::Partition;

use crate::pairwise::pairwise;

/// The Rand index: fraction of document pairs on which the two partitions
/// agree (both linked or both separated). 1.0 for empty partitions.
pub fn rand_index(predicted: &Partition, truth: &Partition) -> f64 {
    let s = pairwise(predicted, truth);
    let total = s.total_pairs();
    if total == 0 {
        return 1.0;
    }
    (s.true_positives + s.true_negatives) as f64 / total as f64
}

/// The adjusted Rand index (Hubert & Arabie): Rand index corrected for
/// chance. 1 for identical partitions, ~0 for independent ones; may be
/// negative. Defined as 1.0 when both partitions are trivial (the expected
/// and maximum index coincide).
pub fn adjusted_rand_index(predicted: &Partition, truth: &Partition) -> f64 {
    crate::check_same_len(predicted, truth);
    let n = predicted.len();
    if n == 0 {
        return 1.0;
    }
    // Contingency table counts.
    use std::collections::HashMap;
    let mut table: HashMap<(u32, u32), u64> = HashMap::new();
    for i in 0..n {
        *table
            .entry((predicted.label_of(i), truth.label_of(i)))
            .or_insert(0) += 1;
    }
    let choose2 = |x: u64| x * x.saturating_sub(1) / 2;
    let sum_table: u64 = table.values().map(|&v| choose2(v)).sum();
    let sum_pred: u64 = predicted
        .cluster_sizes()
        .iter()
        .map(|&s| choose2(s as u64))
        .sum();
    let sum_truth: u64 = truth
        .cluster_sizes()
        .iter()
        .map(|&s| choose2(s as u64))
        .sum();
    let total = choose2(n as u64) as f64;
    let expected = sum_pred as f64 * sum_truth as f64 / total;
    let max_index = 0.5 * (sum_pred + sum_truth) as f64;
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_table as f64 - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(labels: &[u32]) -> Partition {
        Partition::from_labels(labels.to_vec())
    }

    #[test]
    fn identical_partitions_score_one() {
        let a = p(&[0, 0, 1, 2, 2]);
        assert_eq!(rand_index(&a, &a), 1.0);
        assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_rand_index() {
        // truth {0,1},{2,3}; pred {0,1,2},{3}: TP=1, TN=2 of 6 pairs.
        let truth = p(&[0, 0, 1, 1]);
        let pred = p(&[0, 0, 0, 1]);
        assert!((rand_index(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn opposite_extremes() {
        let truth = p(&[0, 0, 0, 0]);
        let singles = p(&[0, 1, 2, 3]);
        assert_eq!(rand_index(&singles, &truth), 0.0);
    }

    #[test]
    fn ari_is_zeroish_for_random_like_and_negative_possible() {
        // Perfectly crossed partitions: ARI < Rand.
        let a = p(&[0, 0, 1, 1]);
        let b = p(&[0, 1, 0, 1]);
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari <= 0.0 + 1e-12, "ari = {ari}");
    }

    #[test]
    fn ari_degenerate_cases() {
        let all = p(&[0, 0, 0]);
        assert_eq!(adjusted_rand_index(&all, &all), 1.0);
        let singles = p(&[0, 1, 2]);
        assert_eq!(adjusted_rand_index(&singles, &singles), 1.0);
    }

    #[test]
    fn empty_partitions() {
        assert_eq!(rand_index(&p(&[]), &p(&[])), 1.0);
        assert_eq!(adjusted_rand_index(&p(&[]), &p(&[])), 1.0);
    }

    #[test]
    fn rand_symmetry() {
        let a = p(&[0, 0, 1, 1, 2]);
        let b = p(&[0, 1, 1, 2, 2]);
        assert!((rand_index(&a, &b) - rand_index(&b, &a)).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
    }
}
