//! B-Cubed precision / recall / F.
//!
//! The official measure of the WePS-2 evaluation (the paper reports Fp for
//! comparability with earlier work; we include B-Cubed as an extension so a
//! downstream user can score against the campaign's own metric).
//!
//! For each document `d`, B³ precision is the fraction of documents sharing
//! `d`'s predicted cluster that truly co-refer with `d`; B³ recall is the
//! fraction of documents truly co-referring with `d` that share its
//! predicted cluster. Both include `d` itself. Scores are averaged over
//! documents and combined by harmonic mean.

use weber_graph::Partition;

use crate::check_same_len;

/// B-Cubed precision, recall and their harmonic mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BCubedScores {
    /// Averaged per-document B³ precision.
    pub precision: f64,
    /// Averaged per-document B³ recall.
    pub recall: f64,
}

impl BCubedScores {
    /// Harmonic mean of B³ precision and recall.
    pub fn f_measure(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Compute B-Cubed scores of `predicted` against `truth`.
///
/// Empty partitions score 1.0 / 1.0 (vacuously perfect).
pub fn bcubed(predicted: &Partition, truth: &Partition) -> BCubedScores {
    check_same_len(predicted, truth);
    let n = predicted.len();
    if n == 0 {
        return BCubedScores {
            precision: 1.0,
            recall: 1.0,
        };
    }
    // intersection[(c, l)] = |C ∩ L| for predicted cluster c, truth cluster l.
    use std::collections::HashMap;
    let mut intersection: HashMap<(u32, u32), usize> = HashMap::new();
    for i in 0..n {
        *intersection
            .entry((predicted.label_of(i), truth.label_of(i)))
            .or_insert(0) += 1;
    }
    let pred_sizes = predicted.cluster_sizes();
    let truth_sizes = truth.cluster_sizes();
    // Every document in cell (c, l) has precision |C∩L|/|C| and recall
    // |C∩L|/|L|, so we can aggregate per cell.
    let (mut p_sum, mut r_sum) = (0.0f64, 0.0f64);
    for (&(c, l), &cnt) in &intersection {
        let cnt_f = cnt as f64;
        p_sum += cnt_f * cnt_f / pred_sizes[c as usize] as f64;
        r_sum += cnt_f * cnt_f / truth_sizes[l as usize] as f64;
    }
    BCubedScores {
        precision: p_sum / n as f64,
        recall: r_sum / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(labels: &[u32]) -> Partition {
        Partition::from_labels(labels.to_vec())
    }

    #[test]
    fn perfect_prediction() {
        let truth = p(&[0, 0, 1, 2]);
        let s = bcubed(&truth, &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f_measure(), 1.0);
    }

    #[test]
    fn singletons_have_perfect_precision() {
        let truth = p(&[0, 0, 0, 0]);
        let pred = p(&[0, 1, 2, 3]);
        let s = bcubed(&pred, &truth);
        assert_eq!(s.precision, 1.0);
        assert!((s.recall - 0.25).abs() < 1e-12);
    }

    #[test]
    fn one_cluster_has_perfect_recall() {
        let truth = p(&[0, 0, 1, 1]);
        let pred = p(&[0, 0, 0, 0]);
        let s = bcubed(&pred, &truth);
        assert_eq!(s.recall, 1.0);
        assert!((s.precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_mixed_case() {
        // truth: {0,1},{2,3}; pred: {0,1,2},{3}
        let truth = p(&[0, 0, 1, 1]);
        let pred = p(&[0, 0, 0, 1]);
        let s = bcubed(&pred, &truth);
        // precision: docs 0,1: 2/3 each; doc 2: 1/3; doc 3: 1 -> (2/3+2/3+1/3+1)/4
        let expect_p = (2.0 / 3.0 + 2.0 / 3.0 + 1.0 / 3.0 + 1.0) / 4.0;
        // recall: docs 0,1: 2/2=1; doc 2: 1/2; doc 3: 1/2 -> (1+1+0.5+0.5)/4
        let expect_r = 3.0 / 4.0;
        assert!((s.precision - expect_p).abs() < 1e-12);
        assert!((s.recall - expect_r).abs() < 1e-12);
    }

    #[test]
    fn empty_is_vacuously_perfect() {
        let s = bcubed(&p(&[]), &p(&[]));
        assert_eq!(s.f_measure(), 1.0);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let a = p(&[0, 1, 0, 1, 2, 2, 0]);
        let b = p(&[0, 0, 1, 1, 1, 2, 2]);
        let s = bcubed(&a, &b);
        assert!((0.0..=1.0).contains(&s.precision));
        assert!((0.0..=1.0).contains(&s.recall));
        assert!((0.0..=1.0).contains(&s.f_measure()));
    }
}
