//! Purity, inverse purity and the Fp-measure.
//!
//! Fp — "the harmonic mean of purity and inverse purity" — is the measure
//! the paper reports in Figures 2–3 and Tables II–III. Purity asks how
//! homogeneous the predicted clusters are; inverse purity asks how well each
//! true entity is kept together.

use std::collections::HashMap;

use weber_graph::Partition;

use crate::check_same_len;

/// Purity, inverse purity and Fp, computed together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PurityScores {
    /// Purity of `predicted` against `truth`.
    pub purity: f64,
    /// Inverse purity (purity of `truth` against `predicted`).
    pub inverse_purity: f64,
}

impl PurityScores {
    /// Fp: harmonic mean of purity and inverse purity.
    pub fn fp(&self) -> f64 {
        let (p, ip) = (self.purity, self.inverse_purity);
        if p + ip == 0.0 {
            0.0
        } else {
            2.0 * p * ip / (p + ip)
        }
    }
}

/// Purity of `predicted` w.r.t. `truth`:
/// `1/n · Σ_C max_L |C ∩ L|` over predicted clusters `C`, truth clusters `L`.
///
/// Returns 1.0 for empty partitions (vacuously pure).
pub fn purity(predicted: &Partition, truth: &Partition) -> f64 {
    check_same_len(predicted, truth);
    let n = predicted.len();
    if n == 0 {
        return 1.0;
    }
    // overlap[(c, l)] = |C ∩ L|
    let mut overlap: HashMap<(u32, u32), usize> = HashMap::new();
    for i in 0..n {
        *overlap
            .entry((predicted.label_of(i), truth.label_of(i)))
            .or_insert(0) += 1;
    }
    let mut max_per_cluster: HashMap<u32, usize> = HashMap::new();
    for (&(c, _), &count) in &overlap {
        let e = max_per_cluster.entry(c).or_insert(0);
        *e = (*e).max(count);
    }
    max_per_cluster.values().sum::<usize>() as f64 / n as f64
}

/// Inverse purity: how well each true cluster is covered by a single
/// predicted cluster. Equals `purity(truth, predicted)`.
pub fn inverse_purity(predicted: &Partition, truth: &Partition) -> f64 {
    purity(truth, predicted)
}

/// Compute both purity directions at once.
pub fn purity_scores(predicted: &Partition, truth: &Partition) -> PurityScores {
    PurityScores {
        purity: purity(predicted, truth),
        inverse_purity: inverse_purity(predicted, truth),
    }
}

/// The Fp-measure: harmonic mean of purity and inverse purity.
///
/// ```
/// use weber_graph::Partition;
/// use weber_eval::fp_measure;
///
/// let truth = Partition::from_labels(vec![0, 0, 1, 1]);
/// let perfect = truth.clone();
/// assert_eq!(fp_measure(&perfect, &truth), 1.0);
///
/// let lumped = Partition::single_cluster(4); // inverse-pure, not pure
/// let fp = fp_measure(&lumped, &truth);
/// assert!(fp > 0.0 && fp < 1.0);
/// ```
pub fn fp_measure(predicted: &Partition, truth: &Partition) -> f64 {
    purity_scores(predicted, truth).fp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(labels: &[u32]) -> Partition {
        Partition::from_labels(labels.to_vec())
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let truth = p(&[0, 0, 1, 2, 2]);
        assert_eq!(purity(&truth, &truth), 1.0);
        assert_eq!(inverse_purity(&truth, &truth), 1.0);
        assert_eq!(fp_measure(&truth, &truth), 1.0);
    }

    #[test]
    fn singletons_are_pure_but_not_inverse_pure() {
        let truth = p(&[0, 0, 0, 0]);
        let pred = p(&[0, 1, 2, 3]);
        assert_eq!(purity(&pred, &truth), 1.0);
        // Each true cluster's best predicted cluster covers 1 of 4 docs.
        assert!((inverse_purity(&pred, &truth) - 0.25).abs() < 1e-12);
        let fp = 2.0 * 1.0 * 0.25 / 1.25;
        assert!((fp_measure(&pred, &truth) - fp).abs() < 1e-12);
    }

    #[test]
    fn one_cluster_is_inverse_pure_but_not_pure() {
        let truth = p(&[0, 0, 1, 1]);
        let pred = p(&[0, 0, 0, 0]);
        assert!((purity(&pred, &truth) - 0.5).abs() < 1e-12);
        assert_eq!(inverse_purity(&pred, &truth), 1.0);
    }

    #[test]
    fn textbook_example() {
        // IR book style example: 3 predicted clusters over 6 items.
        // truth: A={0,1,2}, B={3,4}, C={5}
        let truth = p(&[0, 0, 0, 1, 1, 2]);
        // pred: {0,1,3}, {2,4}, {5}
        let pred = p(&[0, 0, 1, 0, 1, 2]);
        // purity: cluster1 max overlap 2 (A), cluster2 max 1, cluster3 1 -> 4/6
        assert!((purity(&pred, &truth) - 4.0 / 6.0).abs() < 1e-12);
        // inverse purity: A best covered by cluster1 (2), B best 1, C 1 -> 4/6
        assert!((inverse_purity(&pred, &truth) - 4.0 / 6.0).abs() < 1e-12);
        assert!((fp_measure(&pred, &truth) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn fp_is_symmetric_under_swapping_roles() {
        let a = p(&[0, 0, 1, 1, 2]);
        let b = p(&[0, 1, 1, 2, 2]);
        assert!((fp_measure(&a, &b) - fp_measure(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_partitions_are_vacuously_perfect() {
        assert_eq!(fp_measure(&p(&[]), &p(&[])), 1.0);
    }

    #[test]
    fn purity_bounds() {
        let truth = p(&[0, 1, 0, 1, 0, 1]);
        let pred = p(&[0, 0, 0, 1, 1, 1]);
        let v = purity(&pred, &truth);
        assert!(v > 0.0 && v < 1.0);
    }
}
