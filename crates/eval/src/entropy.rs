//! Entropy-based clustering measures: NMI and the V-measure family.
//!
//! The paper's future work (§VII) proposes "considering entropy based
//! metrics" to handle the effect of incomplete page information; this
//! module provides the standard information-theoretic measures so that
//! extension can be evaluated: mutual information, **normalized mutual
//! information** (NMI), and **homogeneity / completeness / V-measure**
//! (Rosenberg & Hirschberg, 2007).

use std::collections::HashMap;

use weber_graph::Partition;

use crate::check_same_len;

fn entropy_from_sizes(sizes: &[usize], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let n = n as f64;
    -sizes
        .iter()
        .filter(|&&s| s > 0)
        .map(|&s| {
            let p = s as f64 / n;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Shannon entropy (nats) of a partition's cluster-size distribution.
pub fn partition_entropy(p: &Partition) -> f64 {
    entropy_from_sizes(&p.cluster_sizes(), p.len())
}

/// Mutual information (nats) between two partitions of the same items.
pub fn mutual_information(a: &Partition, b: &Partition) -> f64 {
    check_same_len(a, b);
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let mut joint: HashMap<(u32, u32), usize> = HashMap::new();
    for i in 0..n {
        *joint.entry((a.label_of(i), b.label_of(i))).or_insert(0) += 1;
    }
    let (sa, sb) = (a.cluster_sizes(), b.cluster_sizes());
    let nf = n as f64;
    joint
        .iter()
        .map(|(&(x, y), &c)| {
            let pxy = c as f64 / nf;
            let px = sa[x as usize] as f64 / nf;
            let py = sb[y as usize] as f64 / nf;
            pxy * (pxy / (px * py)).ln()
        })
        .sum()
}

/// Normalized mutual information with arithmetic-mean normalisation:
/// `2·I(A;B) / (H(A) + H(B))`. Defined as 1 when both partitions are
/// trivial (identical information content of zero).
pub fn nmi(a: &Partition, b: &Partition) -> f64 {
    check_same_len(a, b);
    let (ha, hb) = (partition_entropy(a), partition_entropy(b));
    if ha + hb == 0.0 {
        return 1.0;
    }
    (2.0 * mutual_information(a, b) / (ha + hb)).clamp(0.0, 1.0)
}

/// Homogeneity, completeness and their harmonic mean (V-measure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VMeasure {
    /// 1 − H(truth | predicted) / H(truth): each predicted cluster contains
    /// members of a single true class.
    pub homogeneity: f64,
    /// 1 − H(predicted | truth) / H(predicted): all members of a true class
    /// land in the same predicted cluster.
    pub completeness: f64,
}

impl VMeasure {
    /// The V-measure: harmonic mean of homogeneity and completeness.
    pub fn v(&self) -> f64 {
        if self.homogeneity + self.completeness == 0.0 {
            0.0
        } else {
            2.0 * self.homogeneity * self.completeness / (self.homogeneity + self.completeness)
        }
    }
}

/// Compute homogeneity/completeness of `predicted` against `truth`.
pub fn v_measure(predicted: &Partition, truth: &Partition) -> VMeasure {
    check_same_len(predicted, truth);
    let (hp, ht) = (partition_entropy(predicted), partition_entropy(truth));
    let mi = mutual_information(predicted, truth);
    // H(T|P) = H(T) - I(T;P); homogeneity = 1 - H(T|P)/H(T).
    let homogeneity = if ht == 0.0 {
        1.0
    } else {
        (mi / ht).clamp(0.0, 1.0)
    };
    let completeness = if hp == 0.0 {
        1.0
    } else {
        (mi / hp).clamp(0.0, 1.0)
    };
    VMeasure {
        homogeneity,
        completeness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(labels: &[u32]) -> Partition {
        Partition::from_labels(labels.to_vec())
    }

    #[test]
    fn entropy_of_uniform_partition() {
        let part = p(&[0, 0, 1, 1]);
        assert!((partition_entropy(&part) - (2f64).ln()).abs() < 1e-12);
        assert_eq!(partition_entropy(&p(&[0, 0, 0])), 0.0);
    }

    #[test]
    fn identical_partitions_have_full_nmi_and_v() {
        let a = p(&[0, 0, 1, 2, 2]);
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
        let v = v_measure(&a, &a);
        assert!((v.homogeneity - 1.0).abs() < 1e-12);
        assert!((v.completeness - 1.0).abs() < 1e-12);
        assert!((v.v() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_have_low_nmi() {
        // Perfectly crossed 2x2 design: labels share no information.
        let a = p(&[0, 0, 1, 1]);
        let b = p(&[0, 1, 0, 1]);
        assert!(nmi(&a, &b) < 1e-12);
        assert!(mutual_information(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn singletons_are_homogeneous_not_complete() {
        let truth = p(&[0, 0, 1, 1]);
        let singles = p(&[0, 1, 2, 3]);
        let v = v_measure(&singles, &truth);
        assert!((v.homogeneity - 1.0).abs() < 1e-12);
        assert!(v.completeness < 1.0);
    }

    #[test]
    fn one_cluster_is_complete_not_homogeneous() {
        let truth = p(&[0, 0, 1, 1]);
        let lump = p(&[0, 0, 0, 0]);
        let v = v_measure(&lump, &truth);
        assert!((v.completeness - 1.0).abs() < 1e-12);
        assert!(v.homogeneity < 1.0);
    }

    #[test]
    fn trivial_partitions_edge_cases() {
        let a = p(&[0, 0, 0]);
        assert_eq!(nmi(&a, &a), 1.0);
        let v = v_measure(&a, &a);
        assert_eq!(v.v(), 1.0);
        let empty = p(&[]);
        assert_eq!(nmi(&empty, &empty), 1.0);
        assert_eq!(mutual_information(&empty, &empty), 0.0);
    }

    #[test]
    fn mi_is_symmetric_and_bounded_by_entropies() {
        let a = p(&[0, 1, 1, 2, 0, 2, 1]);
        let b = p(&[0, 0, 1, 1, 2, 2, 0]);
        let mi = mutual_information(&a, &b);
        assert!((mi - mutual_information(&b, &a)).abs() < 1e-12);
        assert!(mi <= partition_entropy(&a) + 1e-12);
        assert!(mi <= partition_entropy(&b) + 1e-12);
        assert!(mi >= -1e-12);
    }

    #[test]
    fn nmi_is_in_unit_interval() {
        let a = p(&[0, 1, 0, 2, 1, 2]);
        let b = p(&[1, 1, 0, 0, 2, 2]);
        let v = nmi(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }
}
