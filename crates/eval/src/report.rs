//! Aggregation helpers: the metric triple the paper reports, and averaging
//! over repeated runs.

use weber_graph::Partition;

use crate::pairwise::pairwise;
use crate::purity::fp_measure;
use crate::rand_index::rand_index;

/// The three measures reported throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSet {
    /// Fp: harmonic mean of purity and inverse purity.
    pub fp: f64,
    /// Pairwise F-measure.
    pub f: f64,
    /// Rand index.
    pub rand: f64,
}

impl MetricSet {
    /// Score `predicted` against `truth` on all three measures.
    pub fn evaluate(predicted: &Partition, truth: &Partition) -> Self {
        Self {
            fp: fp_measure(predicted, truth),
            f: pairwise(predicted, truth).f_measure(),
            rand: rand_index(predicted, truth),
        }
    }
}

/// Incremental averaging of [`MetricSet`]s over runs (the paper averages 5
/// random training draws).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunAverage {
    sum: MetricSet,
    runs: usize,
}

impl RunAverage {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one run's scores.
    pub fn push(&mut self, m: MetricSet) {
        self.sum.fp += m.fp;
        self.sum.f += m.f;
        self.sum.rand += m.rand;
        self.runs += 1;
    }

    /// Number of runs accumulated.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The component-wise mean; `None` before any run is pushed.
    pub fn mean(&self) -> Option<MetricSet> {
        if self.runs == 0 {
            return None;
        }
        let n = self.runs as f64;
        Some(MetricSet {
            fp: self.sum.fp / n,
            f: self.sum.f / n,
            rand: self.sum.rand / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(labels: &[u32]) -> Partition {
        Partition::from_labels(labels.to_vec())
    }

    #[test]
    fn evaluate_perfect() {
        let truth = p(&[0, 0, 1]);
        let m = MetricSet::evaluate(&truth, &truth);
        assert_eq!(
            m,
            MetricSet {
                fp: 1.0,
                f: 1.0,
                rand: 1.0
            }
        );
    }

    #[test]
    fn run_average_means() {
        let mut avg = RunAverage::new();
        assert!(avg.mean().is_none());
        avg.push(MetricSet {
            fp: 0.8,
            f: 0.6,
            rand: 1.0,
        });
        avg.push(MetricSet {
            fp: 0.6,
            f: 0.8,
            rand: 0.0,
        });
        let m = avg.mean().unwrap();
        assert!((m.fp - 0.7).abs() < 1e-12);
        assert!((m.f - 0.7).abs() < 1e-12);
        assert!((m.rand - 0.5).abs() < 1e-12);
        assert_eq!(avg.runs(), 2);
    }

    #[test]
    fn evaluate_is_consistent_with_components() {
        let a = p(&[0, 0, 1, 1]);
        let b = p(&[0, 0, 0, 1]);
        let m = MetricSet::evaluate(&b, &a);
        assert!((m.fp - fp_measure(&b, &a)).abs() < 1e-15);
        assert!((m.rand - rand_index(&b, &a)).abs() < 1e-15);
    }
}
