#![warn(missing_docs)]

//! # weber-eval
//!
//! Quality measures for entity resolution, over [`Partition`]s from
//! `weber-graph`:
//!
//! - pairwise **precision / recall / F-measure** ([`mod@pairwise`]),
//! - **purity**, **inverse purity** and their harmonic mean **Fp**
//!   ([`mod@purity`]) — the paper's headline measure,
//! - the **Rand index** (and adjusted Rand) ([`mod@rand_index`]),
//! - **B-Cubed** precision/recall/F ([`mod@bcubed`]) — the official WePS-2
//!   measure, included as an extension,
//! - entropy-based measures — **NMI** and the **V-measure** family
//!   ([`entropy`]) — the direction the paper's future-work section names,
//! - small report/aggregation helpers ([`report`]).
//!
//! All measures take `(predicted, truth)` in that order and return values in
//! `[0, 1]` (adjusted Rand can be negative, as defined).

pub mod bcubed;
pub mod entropy;
pub mod pairwise;
pub mod purity;
pub mod rand_index;
pub mod report;

pub use bcubed::bcubed;
pub use entropy::{mutual_information, nmi, v_measure, VMeasure};
pub use pairwise::{pairwise, PairwiseScores};
pub use purity::{fp_measure, inverse_purity, purity, PurityScores};
pub use rand_index::{adjusted_rand_index, rand_index};
pub use report::{MetricSet, RunAverage};

use weber_graph::Partition;

/// Validate that two partitions cover the same item count.
///
/// All metric entry points call this; mismatched lengths are a programmer
/// error and panic with a clear message.
pub(crate) fn check_same_len(predicted: &Partition, truth: &Partition) {
    assert_eq!(
        predicted.len(),
        truth.len(),
        "predicted and truth partitions must cover the same documents"
    );
}
