//! The paper's evaluation protocol (§V-A2): "we use 10% of the complete
//! dataset as the training set … we repeated the experiments for 5 runs and
//! the averages of the observed results are presented. On each run we
//! randomly choose the training subset."

use weber_eval::{MetricSet, RunAverage};

use crate::blocking::PreparedDataset;
use crate::error::CoreError;
use crate::resolver::{Resolver, ResolverConfig};
use crate::supervision::Supervision;

/// Protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Fraction of each block used as the training set (paper: 0.1).
    pub train_fraction: f64,
    /// Number of repeated runs with fresh training draws (paper: 5).
    pub runs: u64,
    /// Base seed; run `r` uses `base_seed + r`.
    pub base_seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            train_fraction: 0.1,
            runs: 5,
            base_seed: 0,
        }
    }
}

impl ExperimentConfig {
    /// Validate parameters.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.train_fraction) {
            return Err(CoreError::InvalidTrainFraction(self.train_fraction));
        }
        Ok(())
    }
}

/// The outcome of one experiment: macro-averaged metrics plus per-name
/// detail (for Table III-style breakdowns).
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Mean metrics over names (each name itself averaged over runs).
    pub mean: MetricSet,
    /// Per-name `(query_name, run-averaged metrics)`.
    pub per_name: Vec<(String, MetricSet)>,
}

/// Run the protocol: for each run seed, resolve every block and score it
/// against ground truth; average per name over runs, then macro-average
/// over names.
///
/// Blocks are independent, so they are resolved on scoped worker threads;
/// the result is bit-identical to the sequential order because every
/// (block, run) cell is seeded independently.
pub fn run_experiment(
    prepared: &PreparedDataset,
    resolver_config: &ResolverConfig,
    experiment: &ExperimentConfig,
) -> Result<ExperimentOutcome, CoreError> {
    experiment.validate()?;
    let resolver = Resolver::new(resolver_config.clone())?;
    let per_block = |nb: &crate::blocking::PreparedNameBlock| -> Result<RunAverage, CoreError> {
        let mut avg = RunAverage::new();
        for run in 0..experiment.runs.max(1) {
            let seed = experiment.base_seed.wrapping_add(run);
            let supervision =
                Supervision::sample_from_truth(&nb.truth, experiment.train_fraction, seed);
            let resolution = resolver.resolve(&nb.block, &supervision)?;
            avg.push(MetricSet::evaluate(&resolution.partition, &nb.truth));
        }
        Ok(avg)
    };
    let results: Vec<Result<RunAverage, CoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = prepared
            .blocks
            .iter()
            .map(|nb| scope.spawn(|| per_block(nb)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });
    let mut per_name_avg: Vec<RunAverage> = Vec::with_capacity(results.len());
    for r in results {
        per_name_avg.push(r?);
    }
    let per_name: Vec<(String, MetricSet)> = prepared
        .blocks
        .iter()
        .zip(&per_name_avg)
        .map(|(nb, avg)| {
            (
                nb.block.query_name().to_string(),
                avg.mean().expect("at least one run"),
            )
        })
        .collect();
    let mut overall = RunAverage::new();
    for (_, m) in &per_name {
        overall.push(*m);
    }
    let mean = overall.mean().unwrap_or_default();
    Ok(ExperimentOutcome { mean, per_name })
}

/// Run rotating k-fold supervision: split each block into `k` folds; in
/// round `f`, the documents of fold `f` are labelled (a `1/k` supervision
/// share, e.g. `k = 10` reproduces the paper's 10%) and the resolution is
/// scored on the whole block. Unlike the repeated random draws of
/// [`run_experiment`], every document serves in the training role exactly
/// once across rounds, removing draw-to-draw variance at equal cost.
pub fn run_cross_validation(
    prepared: &PreparedDataset,
    resolver_config: &ResolverConfig,
    k: usize,
    seed: u64,
) -> Result<ExperimentOutcome, CoreError> {
    let resolver = Resolver::new(resolver_config.clone())?;
    let per_block = |nb: &crate::blocking::PreparedNameBlock| -> Result<RunAverage, CoreError> {
        let mut avg = RunAverage::new();
        for fold in weber_ml::kfold(nb.block.len(), k, seed) {
            let supervision = Supervision::new(
                fold.test
                    .iter()
                    .map(|&d| (d, nb.truth.label_of(d)))
                    .collect(),
            );
            let resolution = resolver.resolve(&nb.block, &supervision)?;
            avg.push(MetricSet::evaluate(&resolution.partition, &nb.truth));
        }
        Ok(avg)
    };
    let results: Vec<Result<RunAverage, CoreError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = prepared
            .blocks
            .iter()
            .map(|nb| scope.spawn(|| per_block(nb)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cross-validation worker panicked"))
            .collect()
    });
    let mut per_name = Vec::with_capacity(results.len());
    for (nb, r) in prepared.blocks.iter().zip(results) {
        per_name.push((
            nb.block.query_name().to_string(),
            r?.mean().expect("k >= 1 folds"),
        ));
    }
    let mut overall = RunAverage::new();
    for (_, m) in &per_name {
        overall.push(*m);
    }
    Ok(ExperimentOutcome {
        mean: overall.mean().unwrap_or_default(),
        per_name,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocking::prepare_dataset;
    use crate::decision::DecisionCriterion;
    use weber_corpus::{generate, presets};
    use weber_simfun::functions::{subset_i10, FunctionId};
    use weber_textindex::tfidf::TfIdf;

    fn prepared() -> PreparedDataset {
        prepare_dataset(&generate(&presets::tiny(55)), TfIdf::default())
    }

    #[test]
    fn experiment_produces_per_name_and_mean() {
        let p = prepared();
        let cfg = ResolverConfig::accuracy_suite(subset_i10());
        let exp = ExperimentConfig {
            train_fraction: 0.2,
            runs: 2,
            base_seed: 1,
        };
        let out = run_experiment(&p, &cfg, &exp).unwrap();
        assert_eq!(out.per_name.len(), p.blocks.len());
        for (_, m) in &out.per_name {
            assert!((0.0..=1.0).contains(&m.fp));
            assert!((0.0..=1.0).contains(&m.f));
            assert!((0.0..=1.0).contains(&m.rand));
        }
        // Mean is the macro-average.
        let fp_mean =
            out.per_name.iter().map(|(_, m)| m.fp).sum::<f64>() / out.per_name.len() as f64;
        assert!((out.mean.fp - fp_mean).abs() < 1e-12);
    }

    #[test]
    fn invalid_fraction_is_rejected() {
        let p = prepared();
        let cfg = ResolverConfig::default();
        let exp = ExperimentConfig {
            train_fraction: 1.5,
            runs: 1,
            base_seed: 0,
        };
        assert!(matches!(
            run_experiment(&p, &cfg, &exp),
            Err(CoreError::InvalidTrainFraction(_))
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = prepared();
        let cfg = ResolverConfig::individual(FunctionId::F8, DecisionCriterion::Threshold);
        let exp = ExperimentConfig {
            train_fraction: 0.2,
            runs: 2,
            base_seed: 3,
        };
        let a = run_experiment(&p, &cfg, &exp).unwrap();
        let b = run_experiment(&p, &cfg, &exp).unwrap();
        assert_eq!(a.mean, b.mean);
    }

    #[test]
    fn cross_validation_covers_all_blocks_and_is_deterministic() {
        let p = prepared();
        let cfg = ResolverConfig::accuracy_suite(subset_i10());
        let a = run_cross_validation(&p, &cfg, 4, 7).unwrap();
        let b = run_cross_validation(&p, &cfg, 4, 7).unwrap();
        assert_eq!(a.per_name.len(), p.blocks.len());
        assert_eq!(a.mean, b.mean);
        for (_, m) in &a.per_name {
            assert!((0.0..=1.0).contains(&m.fp));
        }
    }

    #[test]
    fn cross_validation_is_comparable_to_random_draws() {
        // Rotating 1/4 supervision vs random 25% draws: both protocols see
        // the same labelling budget, so their means should be in the same
        // ballpark.
        let p = prepared();
        let cfg = ResolverConfig::accuracy_suite(subset_i10());
        let cv = run_cross_validation(&p, &cfg, 4, 1).unwrap().mean;
        let rand = run_experiment(
            &p,
            &cfg,
            &ExperimentConfig {
                train_fraction: 0.25,
                runs: 4,
                base_seed: 1,
            },
        )
        .unwrap()
        .mean;
        assert!(
            (cv.fp - rand.fp).abs() < 0.2,
            "cv {:.3} vs random {:.3} diverged",
            cv.fp,
            rand.fp
        );
    }

    #[test]
    fn combined_is_at_least_as_good_as_weak_functions() {
        // Not a theorem, but on the tiny corpus the combined C-suite should
        // beat the typically weak URL-only function.
        let p = prepared();
        let exp = ExperimentConfig {
            train_fraction: 0.25,
            runs: 3,
            base_seed: 7,
        };
        let combined = run_experiment(&p, &ResolverConfig::accuracy_suite(subset_i10()), &exp)
            .unwrap()
            .mean;
        let url_only = run_experiment(
            &p,
            &ResolverConfig::individual(FunctionId::F2, DecisionCriterion::Threshold),
            &exp,
        )
        .unwrap()
        .mean;
        assert!(
            combined.fp >= url_only.fp,
            "combined {} vs F2-only {}",
            combined.fp,
            url_only.fp
        );
    }
}
