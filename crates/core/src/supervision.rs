//! The labelled training subset ("we use 10% of the complete dataset as the
//! training set").

use std::collections::HashMap;

use weber_graph::Partition;
use weber_ml::sampling::train_test_split;
use weber_ml::LabeledValue;

use crate::error::CoreError;

/// Ground-truth labels for a subset of a block's documents.
#[derive(Debug, Clone, Default)]
pub struct Supervision {
    /// Sorted labelled document indices.
    docs: Vec<usize>,
    /// Document → entity label, for the labelled documents.
    labels: HashMap<usize, u32>,
}

impl Supervision {
    /// Supervision over an explicit labelled subset.
    pub fn new(labels: HashMap<usize, u32>) -> Self {
        let mut docs: Vec<usize> = labels.keys().copied().collect();
        docs.sort_unstable();
        Self { docs, labels }
    }

    /// Draw a random `fraction` of the block as the training subset, taking
    /// labels from `truth` (the paper's protocol).
    pub fn sample_from_truth(truth: &Partition, fraction: f64, seed: u64) -> Self {
        let (train, _) = train_test_split(truth.len(), fraction, seed);
        let labels = train.iter().map(|&d| (d, truth.label_of(d))).collect();
        Self {
            docs: train,
            labels,
        }
    }

    /// No supervision at all (decisions fall back to defaults).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The labelled document indices, sorted.
    pub fn docs(&self) -> &[usize] {
        &self.docs
    }

    /// Number of labelled documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are labelled.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The entity label of `doc`, if it is labelled.
    pub fn label_of(&self, doc: usize) -> Option<u32> {
        self.labels.get(&doc).copied()
    }

    /// Whether documents `a` and `b` are known to co-refer (both must be
    /// labelled).
    pub fn same_entity(&self, a: usize, b: usize) -> Option<bool> {
        Some(self.labels.get(&a)? == self.labels.get(&b)?)
    }

    /// Validate against a block size.
    pub fn validate(&self, block_len: usize) -> Result<(), CoreError> {
        for &d in &self.docs {
            if d >= block_len {
                return Err(CoreError::SupervisionOutOfRange { doc: d, block_len });
            }
        }
        Ok(())
    }

    /// All labelled training pairs `(i, j, same_entity)` with `i < j`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, bool)> + '_ {
        self.docs.iter().enumerate().flat_map(move |(a, &i)| {
            self.docs[a + 1..].iter().map(move |&j| {
                (
                    i,
                    j,
                    self.same_entity(i, j).expect("both endpoints are labelled"),
                )
            })
        })
    }

    /// The training sample for one similarity function: its value on every
    /// labelled pair, tagged with link existence.
    pub fn labeled_values(&self, value: impl Fn(usize, usize) -> f64) -> Vec<LabeledValue> {
        self.pairs()
            .map(|(i, j, link)| LabeledValue::new(value(i, j), link))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Partition {
        Partition::from_labels(vec![0, 0, 1, 1, 2, 2, 0, 1, 2, 0])
    }

    #[test]
    fn sample_from_truth_takes_fraction() {
        let s = Supervision::sample_from_truth(&truth(), 0.3, 7);
        assert_eq!(s.len(), 3);
        assert!(s.validate(10).is_ok());
        for &d in s.docs() {
            assert!(d < 10);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = Supervision::sample_from_truth(&truth(), 0.5, 3);
        let b = Supervision::sample_from_truth(&truth(), 0.5, 3);
        assert_eq!(a.docs(), b.docs());
        let c = Supervision::sample_from_truth(&truth(), 0.5, 4);
        assert_ne!(a.docs(), c.docs());
    }

    #[test]
    fn same_entity_uses_truth_labels() {
        let s = Supervision::sample_from_truth(&truth(), 1.0, 0);
        assert_eq!(s.same_entity(0, 1), Some(true));
        assert_eq!(s.same_entity(0, 2), Some(false));
    }

    #[test]
    fn label_of_reports_only_labelled_docs() {
        let s = Supervision::new([(0, 7), (3, 9)].into_iter().collect());
        assert_eq!(s.label_of(0), Some(7));
        assert_eq!(s.label_of(3), Some(9));
        assert_eq!(s.label_of(1), None);
    }

    #[test]
    fn same_entity_is_none_for_unlabelled() {
        let s = Supervision::new([(0, 0), (1, 0)].into_iter().collect());
        assert_eq!(s.same_entity(0, 5), None);
    }

    #[test]
    fn pairs_cover_all_labelled_combinations() {
        let s = Supervision::new([(0, 0), (2, 0), (5, 1)].into_iter().collect());
        let pairs: Vec<_> = s.pairs().collect();
        assert_eq!(pairs, vec![(0, 2, true), (0, 5, false), (2, 5, false)]);
    }

    #[test]
    fn labeled_values_evaluates_function() {
        let s = Supervision::new([(0, 0), (1, 0), (2, 1)].into_iter().collect());
        let values = s.labeled_values(|i, j| (i + j) as f64 / 10.0);
        assert_eq!(values.len(), 3);
        assert_eq!(values[0].value, 0.1);
        assert!(values[0].is_link);
        assert!(!values[2].is_link);
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let s = Supervision::new([(9, 0)].into_iter().collect());
        assert!(matches!(
            s.validate(5),
            Err(CoreError::SupervisionOutOfRange {
                doc: 9,
                block_len: 5
            })
        ));
    }

    #[test]
    fn empty_supervision() {
        let s = Supervision::empty();
        assert!(s.is_empty());
        assert_eq!(s.pairs().count(), 0);
    }
}
