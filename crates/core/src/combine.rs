//! Combination strategies (§IV-B): turning many evidence layers into one
//! combined graph.
//!
//! - **Weighted average** (the paper's `W` column): overlay the decision
//!   graphs as a multigraph, weight edges with the accuracy estimations
//!   "which we consider as estimations of the probability of a link",
//!   average, and threshold — with the threshold itself optimised on the
//!   training set.
//! - **Best graph** (dynamic classifier selection; the `C*`/`I*` columns
//!   take the best decision criterion per function set): "a very simple
//!   method is to estimate the overall accuracy of all G_Dj graphs, and
//!   chose the best one as G_combined. Interestingly, this combination
//!   technique performed the best on our datasets."
//! - **Majority vote** (classifier-fusion baseline from the related work,
//!   used in ablations).

use weber_graph::decision::DecisionGraph;
use weber_graph::multigraph::MultiGraph;
use weber_graph::weighted::WeightedGraph;
use weber_ml::threshold::optimal_threshold;
use weber_ml::LabeledValue;

use crate::layers::EvidenceLayer;
use crate::supervision::Supervision;

/// How a layer's voting weight is derived for the weighted average.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightScheme {
    /// The layer's pairwise training accuracy — the paper's choice ("we
    /// weight the edges with the individual accuracy estimations").
    #[default]
    Accuracy,
    /// Accuracy excess over chance, `max(acc − ½, ε)` — layers at chance
    /// get (almost) no vote, sharpening the average (Woods-style local
    /// competence; ablation extension).
    Excess,
    /// The layer's estimated end-to-end quality (training Fp of the closed
    /// graph; ablation extension).
    SelectionScore,
    /// Uniform weights (plain averaging baseline).
    Uniform,
}

impl WeightScheme {
    fn weight(&self, layer: &EvidenceLayer) -> f64 {
        match self {
            WeightScheme::Accuracy => layer.accuracy,
            WeightScheme::Excess => (layer.accuracy - 0.5).max(0.01),
            WeightScheme::SelectionScore => layer.selection_score,
            WeightScheme::Uniform => 1.0,
        }
    }
}

/// How to combine the evidence layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CombinationStrategy {
    /// Weighted average of link probabilities, thresholded; the threshold
    /// is fitted on the training pairs (paper's `W`).
    WeightedAverage(WeightScheme),
    /// Select the single layer with the highest estimated accuracy
    /// (paper's best performer, used for the `I*`/`C*` columns).
    #[default]
    BestGraph,
    /// Edge iff more than half of the layers assert it.
    MajorityVote,
}

/// The combined evidence: the decision graph plus the per-pair combined
/// scores (needed by score-based clustering back-ends).
#[derive(Debug, Clone)]
pub struct Combined {
    /// The combined decision graph `G_combined`.
    pub decisions: DecisionGraph,
    /// Per-pair combined link scores in `[0, 1]`.
    pub scores: WeightedGraph,
    /// Which layer was selected, for [`CombinationStrategy::BestGraph`].
    pub selected_layer: Option<usize>,
    /// The combination threshold used, when applicable.
    pub threshold: Option<f64>,
}

impl CombinationStrategy {
    /// Combine `layers` over a block of `n` documents.
    ///
    /// Panics if `layers` is empty (the resolver validates its
    /// configuration before reaching this point).
    pub fn combine(
        &self,
        layers: &[EvidenceLayer],
        supervision: &Supervision,
        n: usize,
    ) -> Combined {
        assert!(!layers.is_empty(), "cannot combine zero layers");
        match self {
            CombinationStrategy::BestGraph => {
                // Select by estimated end-to-end quality (training Fp of
                // the closed graph), tie-broken by pairwise accuracy.
                let best = layers
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        a.1.selection_score
                            .total_cmp(&b.1.selection_score)
                            .then(a.1.accuracy.total_cmp(&b.1.accuracy))
                    })
                    .map(|(i, _)| i)
                    .expect("layers is non-empty");
                let layer = &layers[best];
                Combined {
                    decisions: layer.decisions.clone(),
                    scores: layer.link_probability.clone(),
                    selected_layer: Some(best),
                    threshold: None,
                }
            }
            CombinationStrategy::WeightedAverage(scheme) => {
                let mut mg = MultiGraph::new();
                for layer in layers {
                    let mut ml = layer.to_multigraph_layer();
                    ml.weight = scheme.weight(layer);
                    mg.add_layer(ml);
                }
                let scores = mg.combined_scores();
                // Optimise the combination threshold on the training pairs.
                let samples: Vec<LabeledValue> =
                    supervision.labeled_values(|i, j| scores.get(i, j));
                let fit = optimal_threshold(&samples);
                let decisions = DecisionGraph::from_weighted(&scores, |_, _, s| s >= fit.threshold);
                Combined {
                    decisions,
                    scores,
                    selected_layer: None,
                    threshold: Some(fit.threshold),
                }
            }
            CombinationStrategy::MajorityVote => {
                let half = layers.len() as f64 / 2.0;
                let votes = WeightedGraph::from_fn(n, |i, j| {
                    layers.iter().filter(|l| l.decisions.has_edge(i, j)).count() as f64
                });
                let decisions = DecisionGraph::from_weighted(&votes, |_, _, v| v > half);
                let scores =
                    WeightedGraph::from_fn(n, |i, j| votes.get(i, j) / layers.len() as f64);
                Combined {
                    decisions,
                    scores,
                    selected_layer: None,
                    threshold: Some(0.5),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::{DecisionCriterion, FittedDecision};
    use weber_ml::threshold::ThresholdFit;

    /// A hand-built layer asserting a given edge set with given accuracy.
    fn layer(n: usize, edges: &[(usize, usize)], accuracy: f64) -> EvidenceLayer {
        let mut decisions = DecisionGraph::new(n);
        for &(i, j) in edges {
            decisions.add_edge(i, j);
        }
        let link_probability = WeightedGraph::from_fn(n, |i, j| {
            if decisions.has_edge(i, j) {
                accuracy
            } else {
                1.0 - accuracy
            }
        });
        EvidenceLayer {
            function: "F1",
            criterion: DecisionCriterion::Threshold,
            fitted: FittedDecision::Threshold {
                fit: ThresholdFit {
                    threshold: 0.5,
                    training_accuracy: accuracy,
                },
            },
            similarities: WeightedGraph::new(n),
            decisions,
            link_probability,
            accuracy,
            selection_score: accuracy,
        }
    }

    #[test]
    fn best_graph_selects_highest_accuracy() {
        let layers = vec![
            layer(3, &[(0, 1)], 0.6),
            layer(3, &[(1, 2)], 0.9),
            layer(3, &[(0, 2)], 0.7),
        ];
        let c = CombinationStrategy::BestGraph.combine(&layers, &Supervision::empty(), 3);
        assert_eq!(c.selected_layer, Some(1));
        assert!(c.decisions.has_edge(1, 2));
        assert!(!c.decisions.has_edge(0, 1));
    }

    #[test]
    fn majority_vote_requires_strict_majority() {
        let layers = vec![
            layer(3, &[(0, 1)], 0.8),
            layer(3, &[(0, 1)], 0.8),
            layer(3, &[(1, 2)], 0.8),
        ];
        let c = CombinationStrategy::MajorityVote.combine(&layers, &Supervision::empty(), 3);
        assert!(c.decisions.has_edge(0, 1)); // 2 of 3 votes
        assert!(!c.decisions.has_edge(1, 2)); // 1 of 3
        assert!((c.scores.get(0, 1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn majority_vote_even_split_is_no_edge() {
        let layers = vec![layer(2, &[(0, 1)], 0.9), layer(2, &[], 0.9)];
        let c = CombinationStrategy::MajorityVote.combine(&layers, &Supervision::empty(), 2);
        assert!(!c.decisions.has_edge(0, 1)); // 1 of 2 is not > half
    }

    #[test]
    fn weighted_average_follows_accurate_layers() {
        // Accurate layer: confident link on (0,1), confident no-link
        // elsewhere. Weak layer: asserts (1,2) but with near-chance
        // probability estimates.
        let mut accurate = layer(3, &[(0, 1)], 0.9);
        accurate.link_probability =
            WeightedGraph::from_fn(3, |i, j| if (i, j) == (0, 1) { 0.9 } else { 0.1 });
        let mut weak = layer(3, &[(1, 2)], 0.52);
        weak.link_probability = WeightedGraph::from_fn(3, |_, _| 0.52);
        // Supervision that confirms (0,1) is a link and (1,2) is not.
        let sup = Supervision::new([(0, 0), (1, 0), (2, 1)].into_iter().collect());
        let c = CombinationStrategy::WeightedAverage(WeightScheme::Accuracy).combine(
            &[accurate, weak],
            &sup,
            3,
        );
        assert!(c.scores.get(0, 1) > c.scores.get(1, 2));
        assert!(c.decisions.has_edge(0, 1));
        assert!(!c.decisions.has_edge(1, 2));
        assert!(c.threshold.is_some());
    }

    #[test]
    fn weighted_average_without_supervision_still_produces_scores() {
        let layers = vec![layer(3, &[(0, 1)], 0.8)];
        let c = CombinationStrategy::WeightedAverage(WeightScheme::Accuracy).combine(
            &layers,
            &Supervision::empty(),
            3,
        );
        assert!((c.scores.get(0, 1) - 0.8).abs() < 1e-12);
        // Default threshold 0.5 from the empty fit.
        assert_eq!(c.threshold, Some(0.5));
        assert!(c.decisions.has_edge(0, 1));
    }

    #[test]
    #[should_panic(expected = "zero layers")]
    fn combining_nothing_panics() {
        CombinationStrategy::BestGraph.combine(&[], &Supervision::empty(), 3);
    }

    #[test]
    fn weight_schemes_map_accuracy_as_documented() {
        let l = layer(2, &[], 0.8);
        assert_eq!(WeightScheme::Accuracy.weight(&l), 0.8);
        assert!((WeightScheme::Excess.weight(&l) - 0.3).abs() < 1e-12);
        assert_eq!(WeightScheme::SelectionScore.weight(&l), 0.8); // helper sets = accuracy
        assert_eq!(WeightScheme::Uniform.weight(&l), 1.0);
        // Chance-level layers get (almost) no excess vote.
        let chance = layer(2, &[], 0.5);
        assert_eq!(WeightScheme::Excess.weight(&chance), 0.01);
        let bad = layer(2, &[], 0.3);
        assert_eq!(WeightScheme::Excess.weight(&bad), 0.01);
    }

    #[test]
    fn weighted_average_scheme_changes_scores() {
        // Two layers disagree on (0,1); sharpened weights shift the score
        // toward the accurate layer.
        let strong = layer(2, &[(0, 1)], 0.9);
        let weak = layer(2, &[], 0.55);
        let layers = [strong, weak];
        let acc = CombinationStrategy::WeightedAverage(WeightScheme::Accuracy)
            .combine(&layers, &Supervision::empty(), 2)
            .scores
            .get(0, 1);
        let exc = CombinationStrategy::WeightedAverage(WeightScheme::Excess)
            .combine(&layers, &Supervision::empty(), 2)
            .scores
            .get(0, 1);
        assert!(
            exc > acc,
            "excess weighting should trust the strong layer more: {exc} vs {acc}"
        );
    }
}
