//! Blocking: grouping documents so only same-name pairs are compared.
//!
//! "To avoid computational bottlenecks, we apply a basic blocking
//! technique, so essentially we only compute the similarity values between
//! documents, which are about a person with the same name." In both
//! datasets the documents arrive pre-blocked (they were retrieved per
//! query name); [`prepare_dataset`] turns such a dataset into prepared
//! blocks, and [`key_blocks`] offers generic key-based blocking for
//! arbitrary collections.

use std::collections::BTreeMap;

use weber_corpus::dataset::Dataset;
use weber_extract::pipeline::Extractor;
use weber_graph::Partition;
use weber_simfun::block::{PreparedBlock, WordVectorScheme};
use weber_textindex::tfidf::TfIdf;

/// Generic key-based blocking: indices of `items` grouped by `key`,
/// deterministic (sorted by key).
pub fn key_blocks<T, K: Ord>(items: &[T], mut key: impl FnMut(&T) -> K) -> Vec<Vec<usize>> {
    let mut map: BTreeMap<K, Vec<usize>> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        map.entry(key(item)).or_default().push(i);
    }
    map.into_values().collect()
}

/// Sorted-neighbourhood blocking (Hernández & Stolfo's merge/purge,
/// reference \[2\] of the paper): sort items by a key and emit every pair
/// within a sliding window of size `window` as a comparison candidate.
///
/// Unlike exact-key blocking this tolerates key noise (misspelled names
/// sort nearby); the window size trades recall against the number of
/// candidate pairs. Pairs are returned as `(i, j)` with `i < j` in the
/// original index space, deduplicated and sorted.
pub fn sorted_neighborhood<T, K: Ord>(
    items: &[T],
    mut key: impl FnMut(&T) -> K,
    window: usize,
) -> Vec<(usize, usize)> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_cached_key(|&i| key(&items[i]));
    let mut pairs = Vec::new();
    let w = window.max(2);
    for (pos, &i) in order.iter().enumerate() {
        for &j in order[pos + 1..].iter().take(w - 1) {
            pairs.push((i.min(j), i.max(j)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

/// One prepared block with its ground truth.
#[derive(Debug)]
pub struct PreparedNameBlock {
    /// The block, ready for similarity computation.
    pub block: PreparedBlock,
    /// Ground-truth partition.
    pub truth: Partition,
}

/// A fully prepared dataset: extraction and TF-IDF done for every block.
#[derive(Debug)]
pub struct PreparedDataset {
    /// Dataset label (e.g. `"www05-like"`).
    pub label: String,
    /// Prepared blocks, in dataset order.
    pub blocks: Vec<PreparedNameBlock>,
}

/// Run the extraction pipeline over every document of `dataset` and prepare
/// all blocks. The extractor is built from the dataset's own gazetteer —
/// the dictionary-NER setting of the paper.
pub fn prepare_dataset(dataset: &Dataset, tfidf: TfIdf) -> PreparedDataset {
    prepare_dataset_with(dataset, WordVectorScheme::TfIdf(tfidf))
}

/// [`prepare_dataset`] under an explicit word-vector weighting scheme
/// (TF-IDF variants or BM25). Blocks are extracted on scoped worker
/// threads; the extractor's shared vocabularies are thread-safe.
pub fn prepare_dataset_with(dataset: &Dataset, scheme: WordVectorScheme) -> PreparedDataset {
    weber_obs::time_stage("core.stage.feature_extraction_us", || {
        prepare_dataset_inner(dataset, scheme)
    })
}

fn prepare_dataset_inner(dataset: &Dataset, scheme: WordVectorScheme) -> PreparedDataset {
    let extractor = Extractor::new(&dataset.gazetteer);
    let blocks: Vec<PreparedNameBlock> = std::thread::scope(|scope| {
        let handles: Vec<_> = dataset
            .blocks
            .iter()
            .map(|b| {
                let extractor = &extractor;
                scope.spawn(move || {
                    let features = b
                        .documents
                        .iter()
                        .map(|d| extractor.extract(&d.text, d.url.as_deref()))
                        .collect();
                    PreparedNameBlock {
                        block: PreparedBlock::with_scheme(b.query_name.clone(), features, scheme),
                        truth: b.truth(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("extraction worker panicked"))
            .collect()
    });
    PreparedDataset {
        label: dataset.label.clone(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_corpus::{generate, presets};

    #[test]
    fn key_blocks_groups_by_key() {
        let items = ["apple", "avocado", "banana", "blueberry", "cherry"];
        let blocks = key_blocks(&items, |s| s.as_bytes()[0]);
        assert_eq!(blocks, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn key_blocks_empty_input() {
        let items: [&str; 0] = [];
        assert!(key_blocks(&items, |s| s.len()).is_empty());
    }

    #[test]
    fn sorted_neighborhood_window_two_pairs_adjacent() {
        let items = ["cohen", "kohen", "aberer", "yerva"];
        // Sorted: aberer(2), cohen(0), kohen(1), yerva(3).
        let pairs = sorted_neighborhood(&items, |s| s.to_string(), 2);
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn sorted_neighborhood_catches_near_misspellings() {
        let items = ["cohen", "zzz", "cohen1", "aaa"];
        let pairs = sorted_neighborhood(&items, |s| s.to_string(), 2);
        // "cohen" and "cohen1" sort adjacently despite differing keys.
        assert!(pairs.contains(&(0, 2)));
    }

    #[test]
    fn sorted_neighborhood_full_window_is_all_pairs() {
        let items = [3, 1, 2];
        let pairs = sorted_neighborhood(&items, |&x| x, 3);
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn sorted_neighborhood_handles_tiny_inputs() {
        let items: [u32; 0] = [];
        assert!(sorted_neighborhood(&items, |&x| x, 4).is_empty());
        let one = [7u32];
        assert!(sorted_neighborhood(&one, |&x| x, 4).is_empty());
        // window below 2 is clamped to 2.
        let two = [9u32, 4u32];
        assert_eq!(sorted_neighborhood(&two, |&x| x, 0), vec![(0, 1)]);
    }

    #[test]
    fn prepare_dataset_aligns_blocks_and_truth() {
        let dataset = generate(&presets::tiny(17));
        let prepared = prepare_dataset(&dataset, TfIdf::default());
        assert_eq!(prepared.label, "tiny");
        assert_eq!(prepared.blocks.len(), dataset.blocks.len());
        for (p, raw) in prepared.blocks.iter().zip(&dataset.blocks) {
            assert_eq!(p.block.len(), raw.len());
            assert_eq!(p.truth.len(), raw.len());
            assert_eq!(p.block.query_name(), raw.query_name);
        }
    }

    #[test]
    fn prepared_features_carry_signal() {
        let dataset = generate(&presets::tiny(18));
        let prepared = prepare_dataset(&dataset, TfIdf::default());
        // At least some pages must have person mentions and concepts —
        // otherwise extraction is broken.
        let any_persons = prepared.blocks.iter().any(|b| {
            (0..b.block.len()).any(|i| b.block.features(i).most_frequent_person().is_some())
        });
        let any_concepts = prepared
            .blocks
            .iter()
            .any(|b| (0..b.block.len()).any(|i| !b.block.features(i).concepts.is_empty()));
        assert!(any_persons);
        assert!(any_concepts);
    }
}
