//! The resolver: Algorithm 1 end to end.

use std::sync::Arc;

use weber_graph::Partition;
use weber_simfun::block::PreparedBlock;
use weber_simfun::functions::{function, subset_i10, FunctionId, SimilarityFunction};

use crate::clustering::ClusteringMethod;
use crate::combine::CombinationStrategy;
use crate::decision::DecisionCriterion;
use crate::error::CoreError;
use crate::layers::{build_layers_with, LayerOptions};
use crate::supervision::Supervision;

/// Configuration of a resolution run: which functions, which decision
/// criteria, how to combine, how to cluster.
#[derive(Clone)]
pub struct ResolverConfig {
    /// Similarity functions to evaluate: any of the paper's F1–F10 (via
    /// [`function`]) and/or custom [`SimilarityFunction`] implementations.
    pub functions: Vec<Arc<dyn SimilarityFunction>>,
    /// Decision criteria `D_j` to fit per function.
    pub criteria: Vec<DecisionCriterion>,
    /// Combination strategy over the resulting layers.
    pub combination: CombinationStrategy,
    /// Final clustering back-end.
    pub clustering: ClusteringMethod,
    /// Additionally build one input-partitioned layer per function
    /// (feature-presence cells with per-cell thresholds; §IV-A's
    /// "regions based on some properties of the input").
    pub input_partitioned: bool,
    /// Optional MinHash prefilter threshold for word-vector similarity
    /// functions (F8–F10): pairs whose estimated token-set Jaccard falls
    /// below the threshold short-circuit to similarity 0 without touching
    /// the TF-IDF vectors. `None` (the default) disables the prefilter;
    /// `Some(0.0)` is provably identical to `None`.
    pub word_vector_prefilter: Option<f64>,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        Self::accuracy_suite(subset_i10())
    }
}

impl std::fmt::Debug for ResolverConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResolverConfig")
            .field(
                "functions",
                &self.functions.iter().map(|x| x.name()).collect::<Vec<_>>(),
            )
            .field("criteria", &self.criteria)
            .field("combination", &self.combination)
            .field("clustering", &self.clustering)
            .field("input_partitioned", &self.input_partitioned)
            .field("word_vector_prefilter", &self.word_vector_prefilter)
            .finish()
    }
}

fn instantiate(ids: Vec<FunctionId>) -> Vec<Arc<dyn SimilarityFunction>> {
    ids.into_iter().map(function).collect()
}

impl ResolverConfig {
    /// A single function under a single criterion (the per-function bars of
    /// Figures 2–3 / columns F1–F10 of Table III).
    pub fn individual(id: FunctionId, criterion: DecisionCriterion) -> Self {
        Self {
            functions: vec![function(id)],
            criteria: vec![criterion],
            combination: CombinationStrategy::BestGraph,
            clustering: ClusteringMethod::TransitiveClosure,
            input_partitioned: false,
            word_vector_prefilter: None,
        }
    }

    /// Threshold-only decisions over a function set, best graph selected —
    /// the `I*` columns of Table II.
    pub fn threshold_suite(functions: Vec<FunctionId>) -> Self {
        Self {
            functions: instantiate(functions),
            criteria: vec![DecisionCriterion::Threshold],
            combination: CombinationStrategy::BestGraph,
            clustering: ClusteringMethod::TransitiveClosure,
            input_partitioned: false,
            word_vector_prefilter: None,
        }
    }

    /// All standard decision criteria (threshold + region accuracy), best
    /// graph selected — the `C*` columns of Table II.
    pub fn accuracy_suite(functions: Vec<FunctionId>) -> Self {
        Self {
            functions: instantiate(functions),
            criteria: DecisionCriterion::standard_set(),
            combination: CombinationStrategy::BestGraph,
            clustering: ClusteringMethod::TransitiveClosure,
            input_partitioned: false,
            word_vector_prefilter: None,
        }
    }

    /// Add a custom similarity function to the suite.
    pub fn with_function(mut self, f: Arc<dyn SimilarityFunction>) -> Self {
        self.functions.push(f);
        self
    }

    /// Enable the input-partitioned layers.
    pub fn with_input_partitioning(mut self) -> Self {
        self.input_partitioned = true;
        self
    }

    /// Enable the MinHash prefilter for word-vector functions (F8–F10):
    /// pairs whose estimated token-set Jaccard is below `threshold` are
    /// scored 0 without computing the exact vector similarity. Thresholds
    /// are validated to `[0, 1]` by [`validate`](Self::validate).
    pub fn with_word_vector_prefilter(mut self, threshold: f64) -> Self {
        self.word_vector_prefilter = Some(threshold);
        self
    }

    /// Accuracy-weighted average combination — the `W` column of Table II.
    ///
    /// Uses accuracy-excess layer weights and correlation clustering: the
    /// `ablation_combination` sweep shows that averaged probabilistic
    /// scores need a clustering that penalises inconsistency — under plain
    /// transitive closure a handful of above-threshold false edges cascade
    /// into giant wrong merges (Rand index collapses to ~0.2–0.5), while
    /// correlation clustering over the same scores recovers the paper's
    /// "W between I and C" behaviour.
    pub fn weighted_average(functions: Vec<FunctionId>) -> Self {
        Self {
            functions: instantiate(functions),
            criteria: DecisionCriterion::standard_set(),
            combination: CombinationStrategy::WeightedAverage(crate::combine::WeightScheme::Excess),
            clustering: ClusteringMethod::Correlation(
                weber_graph::correlation::CorrelationConfig::default(),
            ),
            input_partitioned: false,
            word_vector_prefilter: None,
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.functions.is_empty() {
            return Err(CoreError::NoFunctions);
        }
        if self.criteria.is_empty() {
            return Err(CoreError::NoCriteria);
        }
        if let Some(t) = self.word_vector_prefilter {
            if !(0.0..=1.0).contains(&t) || t.is_nan() {
                return Err(CoreError::InvalidPrefilterThreshold(t));
            }
        }
        Ok(())
    }
}

/// Diagnostics for one evidence layer of a resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Name of the similarity function.
    pub function: &'static str,
    /// Short label of the decision criterion (`"thr"`, `"eq10"`, `"km10"`).
    pub criterion: String,
    /// Estimated pairwise accuracy `acc(G^i_{D_j})`.
    pub accuracy: f64,
    /// Estimated end-to-end quality (training Fp of the closed graph).
    pub selection_score: f64,
    /// Number of asserted edges in the layer's decision graph.
    pub edges: usize,
}

/// The output of resolving one block.
#[derive(Debug, Clone)]
pub struct Resolution {
    /// The final entity resolution.
    pub partition: Partition,
    /// Per-layer diagnostics, in (function × criterion) order.
    pub layers: Vec<LayerReport>,
    /// Index (into `layers`) of the layer best-graph selection chose.
    pub selected_layer: Option<usize>,
    /// The combination threshold, for weighted-average / majority-vote.
    pub combination_threshold: Option<f64>,
}

impl Resolution {
    /// The layer report of the selected layer, if best-graph ran.
    pub fn selected(&self) -> Option<&LayerReport> {
        self.selected_layer.map(|i| &self.layers[i])
    }
}

/// The entity resolver (Algorithm 1).
///
/// ```
/// use weber_core::blocking::prepare_dataset;
/// use weber_core::resolver::{Resolver, ResolverConfig};
/// use weber_core::supervision::Supervision;
/// use weber_corpus::{generate, presets};
/// use weber_textindex::tfidf::TfIdf;
///
/// let prepared = prepare_dataset(&generate(&presets::tiny(7)), TfIdf::default());
/// let resolver = Resolver::new(ResolverConfig::default()).unwrap();
/// let block = &prepared.blocks[0];
/// let supervision = Supervision::sample_from_truth(&block.truth, 0.25, 42);
/// let resolution = resolver.resolve(&block.block, &supervision).unwrap();
/// assert_eq!(resolution.partition.len(), block.block.len());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    config: ResolverConfig,
}

impl Resolver {
    /// Create a resolver; fails on an invalid configuration.
    pub fn new(config: ResolverConfig) -> Result<Self, CoreError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &ResolverConfig {
        &self.config
    }

    /// Resolve every block of a prepared dataset, drawing each block's
    /// supervision from its ground truth at `train_fraction` with `seed`
    /// (the paper's protocol for one run). Blocks run on scoped worker
    /// threads; results come back in dataset order.
    pub fn resolve_all(
        &self,
        prepared: &crate::blocking::PreparedDataset,
        train_fraction: f64,
        seed: u64,
    ) -> Result<Vec<Resolution>, CoreError> {
        if !(0.0..=1.0).contains(&train_fraction) {
            return Err(CoreError::InvalidTrainFraction(train_fraction));
        }
        let results: Vec<Result<Resolution, CoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = prepared
                .blocks
                .iter()
                .map(|nb| {
                    scope.spawn(move || {
                        let sup = Supervision::sample_from_truth(&nb.truth, train_fraction, seed);
                        self.resolve(&nb.block, &sup)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("resolver worker panicked"))
                .collect()
        });
        results.into_iter().collect()
    }

    /// Resolve one prepared block with the given supervision.
    pub fn resolve(
        &self,
        block: &PreparedBlock,
        supervision: &Supervision,
    ) -> Result<Resolution, CoreError> {
        supervision.validate(block.len())?;
        let options = LayerOptions {
            word_vector_prefilter: self.config.word_vector_prefilter,
        };
        let mut layers = build_layers_with(
            block,
            &self.config.functions,
            &self.config.criteria,
            supervision,
            options,
        );
        if self.config.input_partitioned {
            layers.extend(crate::layers::build_input_partitioned_layers_with(
                block,
                &self.config.functions,
                supervision,
                options,
            ));
        }
        let (combined, partition) = weber_obs::time_stage("core.stage.clustering_us", || {
            let combined = self
                .config
                .combination
                .combine(&layers, supervision, block.len());
            let partition = self.config.clustering.cluster(&combined);
            (combined, partition)
        });
        let reports = layers
            .iter()
            .map(|l| LayerReport {
                function: l.function,
                criterion: l.criterion.label(),
                accuracy: l.accuracy,
                selection_score: l.selection_score,
                edges: l.decisions.edge_count(),
            })
            .collect();
        Ok(Resolution {
            partition,
            layers: reports,
            selected_layer: combined.selected_layer,
            combination_threshold: combined.threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_corpus::{generate, presets};
    use weber_eval::MetricSet;
    use weber_extract::pipeline::Extractor;
    use weber_textindex::tfidf::TfIdf;

    fn prepared() -> Vec<(PreparedBlock, Partition)> {
        let dataset = generate(&presets::tiny(33));
        let extractor = Extractor::new(&dataset.gazetteer);
        dataset
            .blocks
            .iter()
            .map(|b| {
                let features = b
                    .documents
                    .iter()
                    .map(|d| extractor.extract(&d.text, d.url.as_deref()))
                    .collect();
                (
                    PreparedBlock::new(b.query_name.clone(), features, TfIdf::default()),
                    b.truth(),
                )
            })
            .collect()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ResolverConfig::default();
        c.functions.clear();
        assert_eq!(Resolver::new(c).unwrap_err(), CoreError::NoFunctions);
        let mut c = ResolverConfig::default();
        c.criteria.clear();
        assert_eq!(Resolver::new(c).unwrap_err(), CoreError::NoCriteria);
    }

    #[test]
    fn out_of_range_supervision_is_rejected() {
        let blocks = prepared();
        let (block, _) = &blocks[0];
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let sup = Supervision::new([(9999, 0)].into_iter().collect());
        assert!(matches!(
            resolver.resolve(block, &sup),
            Err(CoreError::SupervisionOutOfRange { .. })
        ));
    }

    #[test]
    fn resolution_covers_every_document() {
        let blocks = prepared();
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        for (block, truth) in &blocks {
            let sup = Supervision::sample_from_truth(truth, 0.2, 5);
            let r = resolver.resolve(block, &sup).unwrap();
            assert_eq!(r.partition.len(), block.len());
            assert!(!r.layers.is_empty());
        }
    }

    #[test]
    fn best_graph_reports_selected_layer() {
        let blocks = prepared();
        let (block, truth) = &blocks[0];
        let resolver = Resolver::new(ResolverConfig::accuracy_suite(subset_i10())).unwrap();
        let sup = Supervision::sample_from_truth(truth, 0.25, 6);
        let r = resolver.resolve(block, &sup).unwrap();
        let sel = r.selected().expect("best-graph selects a layer");
        // The selected layer must have maximal selection score.
        let max = r
            .layers
            .iter()
            .map(|l| l.selection_score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((sel.selection_score - max).abs() < 1e-12);
    }

    #[test]
    fn weighted_average_reports_threshold() {
        let blocks = prepared();
        let (block, truth) = &blocks[0];
        let resolver = Resolver::new(ResolverConfig::weighted_average(subset_i10())).unwrap();
        let sup = Supervision::sample_from_truth(truth, 0.25, 6);
        let r = resolver.resolve(block, &sup).unwrap();
        assert!(r.combination_threshold.is_some());
        assert!(r.selected_layer.is_none());
    }

    #[test]
    fn resolver_beats_singletons_on_tiny_corpus() {
        // End-to-end sanity: the full pipeline should beat the trivial
        // all-singletons baseline on Fp, averaged over blocks.
        let blocks = prepared();
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let mut resolved = 0.0;
        let mut singleton = 0.0;
        for (block, truth) in &blocks {
            let sup = Supervision::sample_from_truth(truth, 0.15, 9);
            let r = resolver.resolve(block, &sup).unwrap();
            resolved += MetricSet::evaluate(&r.partition, truth).fp;
            singleton += MetricSet::evaluate(&Partition::singletons(truth.len()), truth).fp;
        }
        assert!(
            resolved > singleton,
            "pipeline Fp {resolved} must beat singleton baseline {singleton}"
        );
    }

    #[test]
    fn resolve_all_covers_every_block_in_order() {
        use crate::blocking::prepare_dataset;
        use weber_corpus::{generate, presets};
        let prepared = prepare_dataset(&generate(&presets::tiny(66)), TfIdf::default());
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let all = resolver.resolve_all(&prepared, 0.2, 4).unwrap();
        assert_eq!(all.len(), prepared.blocks.len());
        for (r, nb) in all.iter().zip(&prepared.blocks) {
            assert_eq!(r.partition.len(), nb.block.len());
        }
        // Matches the per-block path exactly.
        let sup = Supervision::sample_from_truth(&prepared.blocks[0].truth, 0.2, 4);
        let single = resolver.resolve(&prepared.blocks[0].block, &sup).unwrap();
        assert_eq!(all[0].partition, single.partition);
    }

    #[test]
    fn resolve_all_rejects_bad_fraction() {
        use crate::blocking::prepare_dataset;
        use weber_corpus::{generate, presets};
        let prepared = prepare_dataset(&generate(&presets::tiny(66)), TfIdf::default());
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        assert!(matches!(
            resolver.resolve_all(&prepared, 1.5, 1),
            Err(CoreError::InvalidTrainFraction(_))
        ));
    }

    #[test]
    fn zero_prefilter_matches_unfiltered_resolution() {
        // `Some(0.0)` never suppresses a pair (estimated Jaccard >= 0), so
        // the entire resolution — layers, selection, partition — must be
        // identical to running without the prefilter.
        let blocks = prepared();
        let (block, truth) = &blocks[0];
        let sup = Supervision::sample_from_truth(truth, 0.25, 6);
        let plain = Resolver::new(ResolverConfig::accuracy_suite(subset_i10()))
            .unwrap()
            .resolve(block, &sup)
            .unwrap();
        let filtered = Resolver::new(
            ResolverConfig::accuracy_suite(subset_i10()).with_word_vector_prefilter(0.0),
        )
        .unwrap()
        .resolve(block, &sup)
        .unwrap();
        assert_eq!(plain.partition, filtered.partition);
        assert_eq!(plain.layers, filtered.layers);
        assert_eq!(plain.selected_layer, filtered.selected_layer);
    }

    #[test]
    fn out_of_range_prefilter_is_rejected() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let c = ResolverConfig::default().with_word_vector_prefilter(bad);
            assert!(matches!(
                Resolver::new(c),
                Err(CoreError::InvalidPrefilterThreshold(_))
            ));
        }
    }

    #[test]
    fn individual_function_resolution_works() {
        let blocks = prepared();
        let (block, truth) = &blocks[0];
        let resolver = Resolver::new(ResolverConfig::individual(
            FunctionId::F8,
            DecisionCriterion::Threshold,
        ))
        .unwrap();
        let sup = Supervision::sample_from_truth(truth, 0.25, 2);
        let r = resolver.resolve(block, &sup).unwrap();
        assert_eq!(r.layers.len(), 1);
        assert_eq!(r.layers[0].function, "F8");
    }
}
