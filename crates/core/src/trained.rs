//! Trained decision models: the selected evidence layer, detached from the
//! batch it was fitted on.
//!
//! Batch resolution fits every (function × criterion) layer, picks the best
//! graph and closes it — then throws the fitted decisions away. A streaming
//! resolver needs to keep them: after training on a seed batch, every
//! arriving document must be scored against existing members with the *same*
//! function and fitted criterion the batch run would have selected.
//! [`TrainedModel`] captures exactly that — one similarity function plus its
//! fitted decision — and [`Resolver::train`] extracts it using the same
//! best-graph selection as [`Resolver::resolve`].

use std::sync::Arc;

use weber_graph::WeightedGraph;
use weber_simfun::block::PreparedBlock;
use weber_simfun::functions::SimilarityFunction;

use crate::combine::CombinationStrategy;
use crate::decision::{DecisionCriterion, FittedDecision};
use crate::error::CoreError;
use crate::layers::{build_input_partitioned_layers_with, build_layers_with, LayerOptions};
use crate::resolver::Resolver;
use crate::supervision::Supervision;

/// The decision model of a best-graph-selected evidence layer: one
/// similarity function and its fitted decision criterion, ready to score
/// unseen document pairs.
#[derive(Clone)]
pub struct TrainedModel {
    function: Arc<dyn SimilarityFunction>,
    fitted: FittedDecision,
    criterion: DecisionCriterion,
    /// MinHash prefilter threshold the model was trained with; pair
    /// similarities replay it so streaming decisions match the batch layer.
    prefilter: Option<f64>,
    /// Training accuracy `acc(G^i_{D_j})` of the selected layer.
    pub accuracy: f64,
    /// Training-Fp selection score of the selected layer.
    pub selection_score: f64,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("function", &self.function.name())
            .field("criterion", &self.criterion)
            .field("accuracy", &self.accuracy)
            .field("selection_score", &self.selection_score)
            .finish()
    }
}

impl TrainedModel {
    /// Name of the selected similarity function (`"F1"`–`"F10"` or custom).
    pub fn function_name(&self) -> &'static str {
        self.function.name()
    }

    /// The selected decision criterion.
    pub fn criterion(&self) -> DecisionCriterion {
        self.criterion
    }

    /// The fitted decision itself.
    pub fn fitted(&self) -> &FittedDecision {
        &self.fitted
    }

    /// Whether the selected function reads the block's word-vector space —
    /// if not, cached similarity rows survive pushes unchanged and vector
    /// refreshes can be deferred entirely.
    pub fn uses_word_vectors(&self) -> bool {
        self.function.uses_word_vectors()
    }

    /// Similarity value of pair `(i, j)` under the selected function,
    /// sanitised into `[0, 1]` exactly as the batch layers sanitise it
    /// (NaN becomes 0, out-of-range values are clamped) and subject to the
    /// trained prefilter, if any.
    pub fn similarity(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        block.pair_similarity(self.function.as_ref(), self.prefilter, i, j)
    }

    /// The full similarity graph of the selected function over `block`,
    /// served from (and feeding) the block's incremental similarity cache.
    pub fn similarity_graph(&self, block: &PreparedBlock) -> WeightedGraph {
        block.similarity_graph_with(self.function.as_ref(), self.prefilter)
    }

    /// Similarities of `doc` against every *earlier* block member: entry
    /// `i < doc` is the pair value of `(i, doc)`, reusing cached rows where
    /// the block's cache allows. This is the per-arrival scan shape — an
    /// arriving document is always the newest, so the earlier members are
    /// the whole block.
    pub fn similarity_row(&self, block: &PreparedBlock, doc: usize) -> Vec<f64> {
        block.similarity_row_with(self.function.as_ref(), self.prefilter, doc)
    }

    /// Link / no-link decision for pair `(i, j)`, matching the decision the
    /// batch layer would have made for the same pair.
    pub fn decide(&self, block: &PreparedBlock, i: usize, j: usize) -> bool {
        self.decide_value(block, i, j, self.similarity(block, i, j))
    }

    /// [`decide`](Self::decide) with the similarity value already in hand
    /// (e.g. read from a cached graph or row).
    pub fn decide_value(&self, block: &PreparedBlock, i: usize, j: usize, value: f64) -> bool {
        if matches!(self.fitted, FittedDecision::InputCells { .. }) {
            self.fitted
                .decide_in_cell(value, self.both_present(block, i, j))
        } else {
            self.fitted.decide(value)
        }
    }

    /// Estimated link probability for pair `(i, j)`.
    pub fn link_probability(&self, block: &PreparedBlock, i: usize, j: usize) -> f64 {
        self.link_probability_value(block, i, j, self.similarity(block, i, j))
    }

    /// [`link_probability`](Self::link_probability) with the similarity
    /// value already in hand.
    pub fn link_probability_value(
        &self,
        block: &PreparedBlock,
        i: usize,
        j: usize,
        value: f64,
    ) -> f64 {
        if matches!(self.fitted, FittedDecision::InputCells { .. }) {
            self.fitted
                .link_probability_in_cell(value, self.both_present(block, i, j))
        } else {
            self.fitted.link_probability(value)
        }
    }

    fn both_present(&self, block: &PreparedBlock, i: usize, j: usize) -> bool {
        self.function.feature_presence(block, i) > 0.5
            && self.function.feature_presence(block, j) > 0.5
    }

    /// Refit the selected criterion's parameters on the given supervision,
    /// keeping the selected function and criterion fixed.
    ///
    /// Streaming blocks grow after training: every push shifts the
    /// block-local document frequencies, which shifts the similarity-value
    /// distribution the original fit was calibrated against. Re-fitting on
    /// the retained seed labels — with values recomputed over the *current*
    /// block — keeps thresholds and region boundaries calibrated as the
    /// block drifts away from its seed statistics.
    pub fn refit(&mut self, block: &PreparedBlock, supervision: &Supervision) {
        use weber_ml::threshold::optimal_threshold;
        use weber_ml::LabeledValue;
        if matches!(self.criterion, DecisionCriterion::InputPartitioned) {
            let mut cell_present: Vec<LabeledValue> = Vec::new();
            let mut cell_missing: Vec<LabeledValue> = Vec::new();
            for (i, j, link) in supervision.pairs() {
                let sample = LabeledValue::new(self.similarity(block, i, j), link);
                if self.both_present(block, i, j) {
                    cell_present.push(sample);
                } else {
                    cell_missing.push(sample);
                }
            }
            let present = optimal_threshold(&cell_present);
            let missing = optimal_threshold(&cell_missing);
            let total = cell_present.len() + cell_missing.len();
            let training_accuracy = if total == 0 {
                0.5
            } else {
                (present.training_accuracy * cell_present.len() as f64
                    + missing.training_accuracy * cell_missing.len() as f64)
                    / total as f64
            };
            self.fitted = FittedDecision::InputCells {
                present,
                missing,
                training_accuracy,
            };
            self.accuracy = training_accuracy;
        } else {
            let samples = supervision.labeled_values(|i, j| self.similarity(block, i, j));
            self.fitted = self.criterion.fit(&samples);
            self.accuracy = self.fitted.training_accuracy();
        }
    }
}

impl Resolver {
    /// Fit every configured evidence layer on the block's supervision, then
    /// extract the best-graph-selected layer as a reusable [`TrainedModel`].
    ///
    /// Selection always uses best-graph (maximal training-Fp selection
    /// score, ties broken by accuracy), regardless of the configured
    /// combination strategy — a single trained layer is the only combination
    /// form a streaming scorer can replay pair-by-pair.
    pub fn train(
        &self,
        block: &PreparedBlock,
        supervision: &Supervision,
    ) -> Result<TrainedModel, CoreError> {
        supervision.validate(block.len())?;
        let config = self.config();
        let options = LayerOptions {
            word_vector_prefilter: config.word_vector_prefilter,
        };
        let mut layers = build_layers_with(
            block,
            &config.functions,
            &config.criteria,
            supervision,
            options,
        );
        if config.input_partitioned {
            layers.extend(build_input_partitioned_layers_with(
                block,
                &config.functions,
                supervision,
                options,
            ));
        }
        let combined = CombinationStrategy::BestGraph.combine(&layers, supervision, block.len());
        let idx = combined
            .selected_layer
            .expect("best-graph selection always picks a layer");
        let layer = &layers[idx];
        // Standard layers are laid out function-major (criteria inner);
        // input-partitioned layers follow, one per function.
        let base = config.functions.len() * config.criteria.len();
        let function = if idx < base {
            Arc::clone(&config.functions[idx / config.criteria.len()])
        } else {
            Arc::clone(&config.functions[idx - base])
        };
        debug_assert_eq!(function.name(), layer.function);
        Ok(TrainedModel {
            function,
            fitted: layer.fitted.clone(),
            criterion: layer.criterion,
            prefilter: config.word_vector_prefilter,
            accuracy: layer.accuracy,
            selection_score: layer.selection_score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::build_layers;
    use crate::resolver::ResolverConfig;
    use weber_corpus::{generate, presets};
    use weber_extract::pipeline::Extractor;
    use weber_graph::Partition;
    use weber_simfun::functions::subset_i10;
    use weber_textindex::tfidf::TfIdf;

    fn prepared_block() -> (PreparedBlock, Partition) {
        let dataset = generate(&presets::tiny(21));
        let extractor = Extractor::new(&dataset.gazetteer);
        let block = &dataset.blocks[0];
        let features = block
            .documents
            .iter()
            .map(|d| extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        (
            PreparedBlock::new(block.query_name.clone(), features, TfIdf::default()),
            block.truth(),
        )
    }

    #[test]
    fn train_matches_resolve_selection() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.3, 7);
        let resolver = Resolver::new(ResolverConfig::accuracy_suite(subset_i10())).unwrap();
        let model = resolver.train(&block, &sup).unwrap();
        let resolution = resolver.resolve(&block, &sup).unwrap();
        let selected = resolution.selected().expect("best graph selects");
        assert_eq!(model.function_name(), selected.function);
        assert_eq!(model.criterion().label(), selected.criterion);
        assert_eq!(model.accuracy, selected.accuracy);
        assert_eq!(model.selection_score, selected.selection_score);
    }

    #[test]
    fn decisions_replay_the_selected_layer() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.3, 3);
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let model = resolver.train(&block, &sup).unwrap();
        // Recompute the selected layer's decision graph pair by pair: the
        // trained model must reproduce it exactly.
        let layers = build_layers(
            &block,
            &resolver.config().functions,
            &resolver.config().criteria,
            &sup,
        );
        let combined = CombinationStrategy::BestGraph.combine(&layers, &sup, block.len());
        let layer = &layers[combined.selected_layer.unwrap()];
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                assert_eq!(
                    model.decide(&block, i, j),
                    layer.decisions.has_edge(i, j),
                    "pair ({i}, {j})"
                );
                assert!(
                    (model.link_probability(&block, i, j) - layer.link_probability.get(i, j)).abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn train_supports_input_partitioned_layers() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.4, 5);
        let resolver =
            Resolver::new(ResolverConfig::accuracy_suite(subset_i10()).with_input_partitioning())
                .unwrap();
        let model = resolver.train(&block, &sup).unwrap();
        // Whatever layer won, decide() must be callable on every pair.
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                let p = model.link_probability(&block, i, j);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn train_rejects_out_of_range_supervision() {
        let (block, _) = prepared_block();
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let sup = Supervision::new([(9999, 0)].into_iter().collect());
        assert!(matches!(
            resolver.train(&block, &sup),
            Err(CoreError::SupervisionOutOfRange { .. })
        ));
    }

    #[test]
    fn refit_on_the_training_block_is_a_fixed_point() {
        // Similarity values have not changed, so refitting on the same
        // block must reproduce the original decisions exactly.
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.4, 11);
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let original = resolver.train(&block, &sup).unwrap();
        let mut refitted = original.clone();
        refitted.refit(&block, &sup);
        for i in 0..block.len() {
            for j in (i + 1)..block.len() {
                assert_eq!(
                    original.decide(&block, i, j),
                    refitted.decide(&block, i, j),
                    "pair ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn debug_names_the_selected_function() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.3, 2);
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let model = resolver.train(&block, &sup).unwrap();
        let dbg = format!("{model:?}");
        assert!(dbg.contains(model.function_name()), "{dbg}");
    }
}
