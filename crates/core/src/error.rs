//! Error type for resolver configuration and execution.

/// Errors surfaced by the entity-resolution framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The resolver was configured with no similarity functions.
    NoFunctions,
    /// The resolver was configured with no decision criteria.
    NoCriteria,
    /// A training fraction outside `[0, 1]`.
    InvalidTrainFraction(f64),
    /// A MinHash prefilter threshold outside `[0, 1]`.
    InvalidPrefilterThreshold(f64),
    /// Supervision referenced a document index outside the block.
    SupervisionOutOfRange {
        /// The offending document index.
        doc: usize,
        /// The block size.
        block_len: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::NoFunctions => {
                write!(f, "resolver needs at least one similarity function")
            }
            CoreError::NoCriteria => {
                write!(f, "resolver needs at least one decision criterion")
            }
            CoreError::InvalidTrainFraction(x) => {
                write!(f, "training fraction must be in [0, 1], got {x}")
            }
            CoreError::InvalidPrefilterThreshold(x) => {
                write!(
                    f,
                    "word-vector prefilter threshold must be in [0, 1], got {x}"
                )
            }
            CoreError::SupervisionOutOfRange { doc, block_len } => {
                write!(
                    f,
                    "supervised document {doc} is outside the block (len {block_len})"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(CoreError::NoFunctions.to_string().contains("similarity"));
        assert!(CoreError::InvalidTrainFraction(1.5)
            .to_string()
            .contains("1.5"));
        let e = CoreError::SupervisionOutOfRange {
            doc: 9,
            block_len: 5,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::NoCriteria);
        assert!(!e.to_string().is_empty());
    }
}
