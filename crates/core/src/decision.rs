//! Decision criteria `D_j` and their fitted forms.
//!
//! A decision criterion turns a similarity value into a link/no-link
//! decision plus a link-probability estimate. The paper's two families:
//!
//! - a plain **threshold** optimised on the training set (§IV-A, first
//!   paragraph) — the `I*` columns of Table II;
//! - **region accuracy**: partition the value space, estimate per-region
//!   link-existence accuracy, decide by region majority — the `C*` columns.

use weber_ml::accuracy::AccuracyModel;
use weber_ml::regions::RegionScheme;
use weber_ml::threshold::{optimal_threshold, ThresholdFit};
use weber_ml::LabeledValue;

/// An (unfitted) decision criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecisionCriterion {
    /// Optimal threshold on the training set.
    Threshold,
    /// Per-region accuracy estimation with the given region scheme.
    RegionAccuracy(RegionScheme),
    /// Input-partitioned thresholds (feature-presence cells). Fitting this
    /// variant needs pair context, so it is built by
    /// [`build_input_partitioned_layers`](crate::layers::build_input_partitioned_layers)
    /// rather than [`fit`](Self::fit); calling `fit` on it falls back to a
    /// plain threshold.
    InputPartitioned,
}

impl DecisionCriterion {
    /// The paper's standard criterion set: threshold, 10 equal-width
    /// regions, and k-means regions with 10 clusters.
    pub fn standard_set() -> Vec<DecisionCriterion> {
        vec![
            DecisionCriterion::Threshold,
            DecisionCriterion::RegionAccuracy(RegionScheme::equal_width_10()),
            DecisionCriterion::RegionAccuracy(RegionScheme::kmeans(10)),
        ]
    }

    /// Short label for reports, e.g. `"thr"`, `"eq10"`, `"km10"`.
    pub fn label(&self) -> String {
        match self {
            DecisionCriterion::Threshold => "thr".to_string(),
            DecisionCriterion::RegionAccuracy(RegionScheme::EqualWidth { k }) => {
                format!("eq{k}")
            }
            DecisionCriterion::RegionAccuracy(RegionScheme::KMeans { k, .. }) => {
                format!("km{k}")
            }
            DecisionCriterion::InputPartitioned => "input".to_string(),
        }
    }

    /// Fit the criterion to a training sample.
    pub fn fit(&self, samples: &[LabeledValue]) -> FittedDecision {
        match self {
            DecisionCriterion::Threshold | DecisionCriterion::InputPartitioned => {
                FittedDecision::Threshold {
                    fit: optimal_threshold(samples),
                }
            }
            DecisionCriterion::RegionAccuracy(scheme) => {
                let values: Vec<f64> = samples.iter().map(|s| s.value).collect();
                let regions = scheme.fit(&values);
                let model = AccuracyModel::fit(regions, samples);
                let training_accuracy = model.training_accuracy(samples);
                FittedDecision::Regions {
                    model,
                    training_accuracy,
                }
            }
        }
    }
}

/// A fitted decision: maps similarity values to decisions and link
/// probabilities.
#[derive(Debug, Clone)]
pub enum FittedDecision {
    /// Fitted threshold.
    Threshold {
        /// The threshold and its training accuracy.
        fit: ThresholdFit,
    },
    /// Fitted per-region accuracy model.
    Regions {
        /// The accuracy model.
        model: AccuracyModel,
        /// Overall training accuracy of the region decisions.
        training_accuracy: f64,
    },
    /// Input-partitioned thresholds (§IV-A's "regions based on some
    /// properties of the input"): one threshold for pairs where both pages
    /// carry the function's feature, another for pairs where at least one
    /// page lacks it. Built by
    /// [`build_input_partitioned_layers`](crate::layers::build_input_partitioned_layers);
    /// the value-only [`decide`](Self::decide) falls back to the
    /// feature-present fit.
    InputCells {
        /// Fit for pairs where both pages carry the feature.
        present: ThresholdFit,
        /// Fit for pairs where at least one page lacks the feature.
        missing: ThresholdFit,
        /// Overall training accuracy across both cells.
        training_accuracy: f64,
    },
}

impl FittedDecision {
    /// Link / no-link decision for a similarity value.
    pub fn decide(&self, value: f64) -> bool {
        match self {
            FittedDecision::Threshold { fit } => fit.decide(value),
            FittedDecision::Regions { model, .. } => model.decide(value),
            FittedDecision::InputCells { present, .. } => present.decide(value),
        }
    }

    /// Link / no-link decision for a similarity value in a given input
    /// cell (`true` = both pages carry the feature). Identical to
    /// [`decide`](Self::decide) for the value-based criteria.
    pub fn decide_in_cell(&self, value: f64, both_present: bool) -> bool {
        match self {
            FittedDecision::InputCells {
                present, missing, ..
            } => {
                if both_present {
                    present.decide(value)
                } else {
                    missing.decide(value)
                }
            }
            other => other.decide(value),
        }
    }

    /// Link probability for a value in a given input cell.
    pub fn link_probability_in_cell(&self, value: f64, both_present: bool) -> f64 {
        match self {
            FittedDecision::InputCells {
                present, missing, ..
            } => {
                let fit = if both_present { present } else { missing };
                if fit.decide(value) {
                    fit.training_accuracy
                } else {
                    1.0 - fit.training_accuracy
                }
            }
            other => other.link_probability(value),
        }
    }

    /// Estimated probability that a pair with this similarity value is a
    /// link. For the threshold criterion this is the (constant) training
    /// accuracy on the decided side; for regions it is the region's
    /// link-existence rate.
    pub fn link_probability(&self, value: f64) -> f64 {
        match self {
            FittedDecision::Threshold { fit } => {
                if fit.decide(value) {
                    fit.training_accuracy
                } else {
                    1.0 - fit.training_accuracy
                }
            }
            FittedDecision::Regions { model, .. } => model.link_probability(value),
            FittedDecision::InputCells { present, .. } => {
                if present.decide(value) {
                    present.training_accuracy
                } else {
                    1.0 - present.training_accuracy
                }
            }
        }
    }

    /// Overall training accuracy — the paper's `acc(G^i_{D_j})`, used as
    /// the layer weight and by best-graph selection.
    pub fn training_accuracy(&self) -> f64 {
        match self {
            FittedDecision::Threshold { fit } => fit.training_accuracy,
            FittedDecision::Regions {
                training_accuracy, ..
            } => *training_accuracy,
            FittedDecision::InputCells {
                training_accuracy, ..
            } => *training_accuracy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Vec<LabeledValue> {
        (0..40)
            .map(|i| LabeledValue::new(i as f64 / 100.0, false))
            .chain((60..100).map(|i| LabeledValue::new(i as f64 / 100.0, true)))
            .collect()
    }

    /// Training data a single threshold cannot classify: links live in a
    /// *band* of mid similarity values, non-links on both sides. (This
    /// happens in practice when missing features deflate true-pair values.)
    fn banded() -> Vec<LabeledValue> {
        let mut v = Vec::new();
        for i in 0..30 {
            v.push(LabeledValue::new(0.05 + i as f64 * 0.003, false));
        }
        for i in 0..30 {
            v.push(LabeledValue::new(0.45 + i as f64 * 0.003, true));
        }
        for i in 0..30 {
            v.push(LabeledValue::new(0.85 + i as f64 * 0.003, false));
        }
        v
    }

    #[test]
    fn threshold_fits_separable_data() {
        let fit = DecisionCriterion::Threshold.fit(&separable());
        assert_eq!(fit.training_accuracy(), 1.0);
        assert!(fit.decide(0.9));
        assert!(!fit.decide(0.1));
        assert!(fit.link_probability(0.9) > fit.link_probability(0.1));
    }

    #[test]
    fn regions_fit_separable_data() {
        let c = DecisionCriterion::RegionAccuracy(RegionScheme::equal_width_10());
        let fit = c.fit(&separable());
        assert_eq!(fit.training_accuracy(), 1.0);
        assert!(fit.decide(0.95));
        assert!(!fit.decide(0.05));
    }

    #[test]
    fn regions_beat_threshold_on_banded_data() {
        let data = banded();
        let thr = DecisionCriterion::Threshold.fit(&data);
        let reg = DecisionCriterion::RegionAccuracy(RegionScheme::equal_width_10()).fit(&data);
        assert!(
            reg.training_accuracy() > thr.training_accuracy(),
            "regions {} must beat threshold {}",
            reg.training_accuracy(),
            thr.training_accuracy()
        );
        // Regions correctly reject the high-similarity non-links.
        assert!(!reg.decide(0.9));
        assert!(reg.decide(0.5));
    }

    #[test]
    fn threshold_link_probability_is_two_sided() {
        let fit = DecisionCriterion::Threshold.fit(&separable());
        let p_hi = fit.link_probability(0.9);
        let p_lo = fit.link_probability(0.1);
        assert!((p_hi + p_lo - 1.0).abs() < 1e-9 || p_hi >= p_lo);
    }

    #[test]
    fn kmeans_regions_fit() {
        let c = DecisionCriterion::RegionAccuracy(RegionScheme::kmeans(4));
        let fit = c.fit(&separable());
        assert!(fit.training_accuracy() > 0.9);
    }

    #[test]
    fn empty_training_set_gives_uninformative_fits() {
        for c in DecisionCriterion::standard_set() {
            let fit = c.fit(&[]);
            assert_eq!(fit.training_accuracy(), 0.5, "{}", c.label());
        }
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<String> = DecisionCriterion::standard_set()
            .iter()
            .map(|c| c.label())
            .collect();
        assert_eq!(labels, vec!["thr", "eq10", "km10"]);
        assert_eq!(DecisionCriterion::InputPartitioned.label(), "input");
    }

    #[test]
    fn input_cells_decide_per_cell() {
        use weber_ml::threshold::ThresholdFit;
        let fitted = FittedDecision::InputCells {
            present: ThresholdFit {
                threshold: 0.6,
                training_accuracy: 0.9,
            },
            missing: ThresholdFit {
                threshold: 0.2,
                training_accuracy: 0.7,
            },
            training_accuracy: 0.85,
        };
        // Same value, different cells, different decisions.
        assert!(!fitted.decide_in_cell(0.4, true));
        assert!(fitted.decide_in_cell(0.4, false));
        // Value-only decide falls back to the present cell.
        assert!(!fitted.decide(0.4));
        assert!(fitted.decide(0.7));
        // Link probabilities are directional per cell.
        assert!((fitted.link_probability_in_cell(0.7, true) - 0.9).abs() < 1e-12);
        assert!((fitted.link_probability_in_cell(0.1, false) - 0.3).abs() < 1e-12);
        assert_eq!(fitted.training_accuracy(), 0.85);
    }

    #[test]
    fn input_partitioned_fit_falls_back_to_threshold() {
        let fit = DecisionCriterion::InputPartitioned.fit(&separable());
        assert!(matches!(fit, FittedDecision::Threshold { .. }));
        assert_eq!(fit.training_accuracy(), 1.0);
    }

    #[test]
    fn value_criteria_ignore_the_cell() {
        let fit = DecisionCriterion::Threshold.fit(&separable());
        for v in [0.1, 0.5, 0.9] {
            assert_eq!(fit.decide_in_cell(v, true), fit.decide(v));
            assert_eq!(fit.decide_in_cell(v, false), fit.decide(v));
            assert_eq!(
                fit.link_probability_in_cell(v, true),
                fit.link_probability(v)
            );
        }
    }
}
