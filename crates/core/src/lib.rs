#![warn(missing_docs)]

//! # weber-core
//!
//! The entity-resolution framework of the paper (§IV, Algorithm 1):
//!
//! 1. compute the complete weighted graph `G_w^{f_i}` for each similarity
//!    function (per block);
//! 2. obtain the decision criteria `D_j` (threshold, regions, …) from the
//!    training set;
//! 3. apply each decision to the data, computing `G^i_{D_j}` for each
//!    function and criterion;
//! 4. compute the accuracy `acc(G^i_{D_j})`;
//! 5. combine them for all `i, D_j`;
//! 6. apply a clustering algorithm;
//! 7. output the final entity resolution.
//!
//! Modules: [`supervision`] (the labelled training subset), [`decision`]
//! (criteria and their fitted forms), [`layers`] (per-function evidence
//! layers), [`combine`] (weighted average / best graph / majority vote),
//! [`clustering`] (transitive closure / correlation / incremental),
//! [`resolver`] (the orchestrator), [`blocking`] (dataset → prepared
//! blocks), [`experiment`] (the paper's evaluation protocol: 10% training,
//! 5 runs, macro-averaged metrics), [`swoosh`] (merge-based R-Swoosh
//! with data confidences — the related-work baseline of §VI), and
//! [`trained`] (the best-graph-selected layer extracted as a reusable
//! decision model for streaming ingestion).

pub mod active;
pub mod blocking;
pub mod clustering;
pub mod combine;
pub mod decision;
pub mod error;
pub mod experiment;
pub mod layers;
pub mod resolver;
pub mod supervision;
pub mod swoosh;
pub mod trained;

pub use active::{label_docs, select_uncertain_docs, uncertainty_scores};
pub use blocking::{
    key_blocks, prepare_dataset, prepare_dataset_with, sorted_neighborhood, PreparedDataset,
};
pub use clustering::ClusteringMethod;
pub use combine::{CombinationStrategy, WeightScheme};
pub use decision::{DecisionCriterion, FittedDecision};
pub use error::CoreError;
pub use experiment::{run_cross_validation, run_experiment, ExperimentConfig, ExperimentOutcome};
pub use resolver::{Resolution, Resolver, ResolverConfig};
pub use supervision::Supervision;
pub use swoosh::{r_swoosh, MatchFunction, MergeRecord, ProfileMatcher, SwooshOutcome};
pub use trained::TrainedModel;
