//! Clustering back-ends for the combined graph (§IV-C).
//!
//! "In our recent implementation we compute the transitive closure of the
//! graph G_combined, but we also experimented with several other clustering
//! techniques, such as correlation clustering."

use weber_graph::components::connected_components;
use weber_graph::correlation::{correlation_cluster, CorrelationConfig};
use weber_graph::incremental::{incremental_cluster, Linkage};
use weber_graph::Partition;

use crate::combine::Combined;

/// Which clustering algorithm turns the combined graph into the final
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ClusteringMethod {
    /// Transitive closure: connected components of the decision graph
    /// (the paper's default).
    #[default]
    TransitiveClosure,
    /// Correlation clustering over the combined link scores.
    Correlation(CorrelationConfig),
    /// Greedy incremental clustering over the combined link scores (the
    /// related-work baseline of §VI): documents join the best existing
    /// cluster when the linkage score clears the combination threshold
    /// (0.5 when the combiner did not fit one).
    Incremental(Linkage),
}

impl ClusteringMethod {
    /// Cluster the combined evidence into the final entity resolution.
    pub fn cluster(&self, combined: &Combined) -> Partition {
        match self {
            ClusteringMethod::TransitiveClosure => connected_components(&combined.decisions),
            ClusteringMethod::Correlation(config) => correlation_cluster(&combined.scores, *config),
            ClusteringMethod::Incremental(linkage) => incremental_cluster(
                &combined.scores,
                combined.threshold.unwrap_or(0.5),
                *linkage,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_graph::decision::DecisionGraph;
    use weber_graph::weighted::WeightedGraph;

    fn combined(n: usize, edges: &[(usize, usize)]) -> Combined {
        let mut d = DecisionGraph::new(n);
        for &(i, j) in edges {
            d.add_edge(i, j);
        }
        let scores = WeightedGraph::from_fn(n, |i, j| if d.has_edge(i, j) { 0.9 } else { 0.1 });
        Combined {
            decisions: d,
            scores,
            selected_layer: None,
            threshold: None,
        }
    }

    #[test]
    fn transitive_closure_merges_chains() {
        let c = combined(4, &[(0, 1), (1, 2)]);
        let p = ClusteringMethod::TransitiveClosure.cluster(&c);
        assert!(p.same_cluster(0, 2));
        assert!(!p.same_cluster(0, 3));
        assert_eq!(p.cluster_count(), 2);
    }

    #[test]
    fn correlation_clustering_recovers_clean_clusters() {
        let c = combined(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let p = ClusteringMethod::Correlation(CorrelationConfig::default()).cluster(&c);
        assert_eq!(p, Partition::from_labels(vec![0, 0, 0, 1, 1]));
    }

    #[test]
    fn methods_agree_on_clean_input() {
        let c = combined(6, &[(0, 1), (2, 3), (2, 4), (3, 4)]);
        let a = ClusteringMethod::TransitiveClosure.cluster(&c);
        let b = ClusteringMethod::Correlation(CorrelationConfig::default()).cluster(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn incremental_clustering_respects_threshold() {
        let c = combined(4, &[(0, 1), (2, 3)]);
        let p = ClusteringMethod::Incremental(Linkage::Average).cluster(&c);
        assert_eq!(p, Partition::from_labels(vec![0, 0, 1, 1]));
        // Raise the effective threshold via `combined.threshold`.
        let mut strict = combined(4, &[(0, 1), (2, 3)]);
        strict.threshold = Some(0.95);
        let p = ClusteringMethod::Incremental(Linkage::Average).cluster(&strict);
        assert_eq!(p.cluster_count(), 4);
    }

    #[test]
    fn default_is_transitive_closure() {
        assert_eq!(
            ClusteringMethod::default(),
            ClusteringMethod::TransitiveClosure
        );
    }
}
