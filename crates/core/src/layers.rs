//! Evidence layers: one per (similarity function, decision criterion).
//!
//! Steps 1–4 of Algorithm 1: compute `G_w^{f_i}`, fit each decision
//! criterion on the training pairs, derive the decision graph `G^i_{D_j}`
//! and its accuracy estimate `acc(G^i_{D_j})`.

use std::collections::HashMap;
use std::sync::Arc;
use weber_eval::purity::fp_measure;
use weber_graph::components::connected_components;
use weber_graph::decision::DecisionGraph;
use weber_graph::multigraph::Layer;
use weber_graph::weighted::WeightedGraph;
use weber_graph::Partition;

use weber_simfun::block::PreparedBlock;
use weber_simfun::functions::SimilarityFunction;

use weber_ml::threshold::optimal_threshold;
use weber_ml::LabeledValue;

use crate::decision::{DecisionCriterion, FittedDecision};
use crate::supervision::Supervision;

/// A fully materialised evidence layer, with provenance.
#[derive(Debug, Clone)]
pub struct EvidenceLayer {
    /// Name of the similarity function that produced it (`"F1"`–`"F10"`
    /// for the standard suite, or a custom function's name).
    pub function: &'static str,
    /// Which decision criterion was applied.
    pub criterion: DecisionCriterion,
    /// The fitted decision.
    pub fitted: FittedDecision,
    /// The similarity (weighted) graph.
    pub similarities: WeightedGraph,
    /// The decision graph `G^i_{D_j}`.
    pub decisions: DecisionGraph,
    /// Per-pair link-probability graph.
    pub link_probability: WeightedGraph,
    /// Overall accuracy estimate `acc(G^i_{D_j})` (layer weight).
    pub accuracy: f64,
    /// Estimated end-to-end quality of the layer as a resolution: the
    /// Fp-measure of its transitively closed decision graph, restricted to
    /// the training documents. Best-graph selection uses this — pairwise
    /// accuracy alone is a poor proxy for post-closure quality, because a
    /// few false-positive edges can cascade into large wrong merges.
    pub selection_score: f64,
}

impl EvidenceLayer {
    /// Convert into the combination-multigraph layer form.
    pub fn to_multigraph_layer(&self) -> Layer {
        Layer {
            decisions: self.decisions.clone(),
            link_probability: self.link_probability.clone(),
            weight: self.accuracy,
        }
    }
}

/// Estimate a decision graph's quality as a resolution: transitively close
/// it, restrict the resulting partition to the supervised documents, and
/// score Fp against the training labels. Returns 0.5 (uninformative) when
/// there is no supervision.
pub fn training_fp(decisions: &DecisionGraph, supervision: &Supervision) -> f64 {
    if supervision.len() < 2 {
        return 0.5;
    }
    let closed = connected_components(decisions);
    let docs = supervision.docs();
    let predicted = Partition::from_labels(docs.iter().map(|&d| closed.label_of(d)).collect());
    // Project the supervision labels onto the same doc order: each entity is
    // relabelled with the position of its first supervised document, in one
    // pass over the docs.
    let mut first_pos: HashMap<u32, u32> = HashMap::with_capacity(docs.len());
    let truth_labels: Vec<u32> = docs
        .iter()
        .zip(0u32..)
        .map(|(&d, pos)| {
            let entity = supervision.label_of(d).expect("supervised doc has a label");
            *first_pos.entry(entity).or_insert(pos)
        })
        .collect();
    let truth = Partition::from_labels(truth_labels);
    fp_measure(&predicted, &truth)
}

/// Compute the similarity graph `G_w^{f}` of one function over a block.
///
/// Values are sanitised into `[0, 1]`: the contract says similarity
/// functions stay in the unit interval, but a buggy custom function must
/// not poison thresholds, region fits or combined scores — NaN becomes 0
/// (no evidence), out-of-range values are clamped. Served from the block's
/// similarity cache, so repeated calls (and streaming growth) don't
/// recompute pairs.
pub fn similarity_graph(block: &PreparedBlock, f: &dyn SimilarityFunction) -> WeightedGraph {
    block.similarity_graph_with(f, None)
}

/// Tuning knobs for layer construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayerOptions {
    /// MinHash prefilter threshold for word-vector functions: pairs whose
    /// estimated shingle Jaccard falls below it score 0 without computing
    /// the vector similarity. `None` (the default) is the exact path; see
    /// [`ResolverConfig::word_vector_prefilter`](crate::resolver::ResolverConfig::word_vector_prefilter).
    pub word_vector_prefilter: Option<f64>,
}

/// Blocks at or above this size fan per-function layer construction across
/// scoped worker threads (the same pattern `Resolver::resolve_all` uses
/// across blocks). The gate is on block size, not core count, so the
/// parallel path is exercised deterministically everywhere; results are
/// identical to the sequential path because workers are joined in function
/// order and share nothing mutable.
const PARALLEL_BLOCK_LEN: usize = 64;

/// Build all evidence layers for the given functions and criteria.
///
/// The similarity graph per function is computed once (through the block's
/// cache) and shared across criteria.
pub fn build_layers(
    block: &PreparedBlock,
    functions: &[Arc<dyn SimilarityFunction>],
    criteria: &[DecisionCriterion],
    supervision: &Supervision,
) -> Vec<EvidenceLayer> {
    build_layers_with(
        block,
        functions,
        criteria,
        supervision,
        LayerOptions::default(),
    )
}

/// [`build_layers`] with explicit [`LayerOptions`].
pub fn build_layers_with(
    block: &PreparedBlock,
    functions: &[Arc<dyn SimilarityFunction>],
    criteria: &[DecisionCriterion],
    supervision: &Supervision,
    options: LayerOptions,
) -> Vec<EvidenceLayer> {
    if functions.len() > 1 && block.len() >= PARALLEL_BLOCK_LEN {
        std::thread::scope(|scope| {
            let workers: Vec<_> = functions
                .iter()
                .map(|f| {
                    scope.spawn(move || {
                        function_layers(block, f.as_ref(), criteria, supervision, options)
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("layer worker panicked"))
                .collect()
        })
    } else {
        functions
            .iter()
            .flat_map(|f| function_layers(block, f.as_ref(), criteria, supervision, options))
            .collect()
    }
}

/// All layers of one similarity function (one per criterion).
fn function_layers(
    block: &PreparedBlock,
    f: &dyn SimilarityFunction,
    criteria: &[DecisionCriterion],
    supervision: &Supervision,
    options: LayerOptions,
) -> Vec<EvidenceLayer> {
    // Stage timings: region estimation (criterion fitting) is recorded on
    // its own; everything else in this function — similarity graph,
    // decision graphs, accuracy scoring — is the layer-build stage. Both
    // go to global histograms, so the scoped-thread fan-out in
    // `build_layers_with` just records one observation per function.
    let start = std::time::Instant::now();
    let mut fit_elapsed = std::time::Duration::ZERO;
    let sims = block.similarity_graph_with(f, options.word_vector_prefilter);
    let samples = supervision.labeled_values(|i, j| sims.get(i, j));
    let layers: Vec<EvidenceLayer> = criteria
        .iter()
        .map(|&criterion| {
            let fit_start = std::time::Instant::now();
            let fitted = criterion.fit(&samples);
            fit_elapsed += fit_start.elapsed();
            let decisions = DecisionGraph::from_weighted(&sims, |_, _, w| fitted.decide(w));
            let link_probability = sims.map(|w| fitted.link_probability(w));
            let accuracy = fitted.training_accuracy();
            let selection_score = training_fp(&decisions, supervision);
            EvidenceLayer {
                function: f.name(),
                criterion,
                fitted,
                similarities: sims.clone(),
                decisions,
                link_probability,
                accuracy,
                selection_score,
            }
        })
        .collect();
    let registry = weber_obs::Registry::global();
    registry
        .histogram("core.stage.region_estimation_us")
        .record(fit_elapsed.as_micros() as u64);
    registry
        .histogram("core.stage.layer_build_us")
        .record(start.elapsed().saturating_sub(fit_elapsed).as_micros() as u64);
    layers
}

/// Build input-partitioned evidence layers, one per function (§IV-A's
/// "regions based on some properties of the input").
///
/// For each function, every document pair is assigned to one of two input
/// cells — *both pages carry the feature the function needs* vs *at least
/// one does not* (via
/// [`SimilarityFunction::feature_presence`]) — and a separate optimal
/// threshold is fitted per cell. This separates "low value because truly
/// different" from "low value because information is missing", which a
/// single threshold or value-region model conflates.
pub fn build_input_partitioned_layers(
    block: &PreparedBlock,
    functions: &[Arc<dyn SimilarityFunction>],
    supervision: &Supervision,
) -> Vec<EvidenceLayer> {
    build_input_partitioned_layers_with(block, functions, supervision, LayerOptions::default())
}

/// [`build_input_partitioned_layers`] with explicit [`LayerOptions`].
pub fn build_input_partitioned_layers_with(
    block: &PreparedBlock,
    functions: &[Arc<dyn SimilarityFunction>],
    supervision: &Supervision,
    options: LayerOptions,
) -> Vec<EvidenceLayer> {
    if functions.len() > 1 && block.len() >= PARALLEL_BLOCK_LEN {
        std::thread::scope(|scope| {
            let workers: Vec<_> = functions
                .iter()
                .map(|f| {
                    scope.spawn(move || {
                        input_partitioned_layer(block, f.as_ref(), supervision, options)
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("layer worker panicked"))
                .collect()
        })
    } else {
        functions
            .iter()
            .map(|f| input_partitioned_layer(block, f.as_ref(), supervision, options))
            .collect()
    }
}

/// The input-partitioned layer of one similarity function.
fn input_partitioned_layer(
    block: &PreparedBlock,
    f: &dyn SimilarityFunction,
    supervision: &Supervision,
    options: LayerOptions,
) -> EvidenceLayer {
    let sims = block.similarity_graph_with(f, options.word_vector_prefilter);
    let presence: Vec<bool> = (0..block.len())
        .map(|d| f.feature_presence(block, d) > 0.5)
        .collect();
    let both = |i: usize, j: usize| presence[i] && presence[j];
    // Split the training pairs by input cell and fit each.
    let mut cell_present: Vec<LabeledValue> = Vec::new();
    let mut cell_missing: Vec<LabeledValue> = Vec::new();
    for (i, j, link) in supervision.pairs() {
        let sample = LabeledValue::new(sims.get(i, j), link);
        if both(i, j) {
            cell_present.push(sample);
        } else {
            cell_missing.push(sample);
        }
    }
    let fit_present = optimal_threshold(&cell_present);
    let fit_missing = optimal_threshold(&cell_missing);
    let total = cell_present.len() + cell_missing.len();
    let training_accuracy = if total == 0 {
        0.5
    } else {
        (fit_present.training_accuracy * cell_present.len() as f64
            + fit_missing.training_accuracy * cell_missing.len() as f64)
            / total as f64
    };
    let fitted = FittedDecision::InputCells {
        present: fit_present,
        missing: fit_missing,
        training_accuracy,
    };
    let decisions = {
        let mut d = DecisionGraph::new(block.len());
        for (i, j, w) in sims.edges() {
            if fitted.decide_in_cell(w, both(i, j)) {
                d.add_edge(i, j);
            }
        }
        d
    };
    let link_probability = WeightedGraph::from_fn(block.len(), |i, j| {
        fitted.link_probability_in_cell(sims.get(i, j), both(i, j))
    });
    let selection_score = training_fp(&decisions, supervision);
    EvidenceLayer {
        function: f.name(),
        criterion: DecisionCriterion::InputPartitioned,
        fitted,
        similarities: sims,
        decisions,
        link_probability,
        accuracy: training_accuracy,
        selection_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_corpus::{generate, presets};
    use weber_extract::pipeline::Extractor;
    use weber_graph::Partition;
    use weber_simfun::functions::{function, FunctionId};
    use weber_textindex::tfidf::TfIdf;

    fn prepared_block() -> (PreparedBlock, Partition) {
        let dataset = generate(&presets::tiny(11));
        let extractor = Extractor::new(&dataset.gazetteer);
        let block = &dataset.blocks[0];
        let features = block
            .documents
            .iter()
            .map(|d| extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        (
            PreparedBlock::new(block.query_name.clone(), features, TfIdf::default()),
            block.truth(),
        )
    }

    #[test]
    fn similarity_graph_is_complete_and_bounded() {
        let (block, _) = prepared_block();
        let g = similarity_graph(&block, function(FunctionId::F8).as_ref());
        assert_eq!(g.len(), block.len());
        for (_, _, w) in g.edges() {
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn layers_cover_function_criterion_product() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.2, 1);
        let functions = vec![function(FunctionId::F4), function(FunctionId::F8)];
        let criteria = DecisionCriterion::standard_set();
        let layers = build_layers(&block, &functions, &criteria, &sup);
        assert_eq!(layers.len(), functions.len() * criteria.len());
        for layer in &layers {
            assert_eq!(layer.decisions.len(), block.len());
            assert!((0.0..=1.0).contains(&layer.accuracy));
        }
    }

    #[test]
    fn informative_function_layers_have_high_training_accuracy() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.5, 2);
        let layers = build_layers(
            &block,
            &[function(FunctionId::F8)],
            &[DecisionCriterion::Threshold],
            &sup,
        );
        assert!(
            layers[0].accuracy > 0.6,
            "TF-IDF cosine should separate training pairs reasonably: {}",
            layers[0].accuracy
        );
    }

    #[test]
    fn decisions_follow_fitted_criterion() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.3, 3);
        let layers = build_layers(
            &block,
            &[function(FunctionId::F8)],
            &[DecisionCriterion::Threshold],
            &sup,
        );
        let layer = &layers[0];
        for (i, j, w) in layer.similarities.edges() {
            assert_eq!(layer.decisions.has_edge(i, j), layer.fitted.decide(w));
        }
    }

    #[test]
    fn input_partitioned_layers_are_well_formed() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.4, 8);
        let functions = vec![function(FunctionId::F2), function(FunctionId::F8)];
        let layers = build_input_partitioned_layers(&block, &functions, &sup);
        assert_eq!(layers.len(), 2);
        for layer in &layers {
            assert_eq!(layer.decisions.len(), block.len());
            assert!((0.0..=1.0).contains(&layer.accuracy));
            assert!(matches!(layer.fitted, FittedDecision::InputCells { .. }));
        }
    }

    #[test]
    fn input_cells_split_by_feature_presence() {
        // A function whose feature is missing on odd documents should fit
        // separate cells; with empty supervision both cells are default.
        let (block, _) = prepared_block();
        let layers = build_input_partitioned_layers(
            &block,
            &[function(FunctionId::F2)],
            &Supervision::empty(),
        );
        assert_eq!(layers[0].accuracy, 0.5);
    }

    #[test]
    fn parallel_layer_build_matches_sequential() {
        // Grow a block past PARALLEL_BLOCK_LEN by cycling preset documents,
        // then check that the threaded fan-out produces exactly the layers
        // the sequential path would, in the same order.
        let dataset = generate(&presets::tiny(11));
        let extractor = Extractor::new(&dataset.gazetteer);
        let b = &dataset.blocks[0];
        let features: Vec<_> = b
            .documents
            .iter()
            .cycle()
            .take(PARALLEL_BLOCK_LEN)
            .map(|d| extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        let block = PreparedBlock::new(b.query_name.clone(), features, TfIdf::default());
        let truth: Vec<u32> = (0..PARALLEL_BLOCK_LEN as u32)
            .map(|i| i % b.documents.len() as u32)
            .collect();
        let sup = Supervision::sample_from_truth(&Partition::from_labels(truth), 0.3, 5);
        let functions = vec![
            function(FunctionId::F2),
            function(FunctionId::F4),
            function(FunctionId::F8),
        ];
        let criteria = DecisionCriterion::standard_set();
        assert!(block.len() >= PARALLEL_BLOCK_LEN, "parallel gate must open");
        let parallel =
            build_layers_with(&block, &functions, &criteria, &sup, LayerOptions::default());
        let sequential: Vec<EvidenceLayer> = functions
            .iter()
            .flat_map(|f| {
                function_layers(&block, f.as_ref(), &criteria, &sup, LayerOptions::default())
            })
            .collect();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.function, s.function);
            assert_eq!(p.criterion, s.criterion);
            assert_eq!(p.similarities, s.similarities);
            assert_eq!(p.link_probability, s.link_probability);
            assert_eq!(p.accuracy, s.accuracy);
            assert_eq!(p.selection_score, s.selection_score);
            assert_eq!(p.decisions.edge_count(), s.decisions.edge_count());
        }
    }

    #[test]
    fn to_multigraph_layer_preserves_weight() {
        let (block, truth) = prepared_block();
        let sup = Supervision::sample_from_truth(&truth, 0.3, 4);
        let layers = build_layers(
            &block,
            &[function(FunctionId::F4)],
            &[DecisionCriterion::Threshold],
            &sup,
        );
        let ml = layers[0].to_multigraph_layer();
        assert_eq!(ml.weight, layers[0].accuracy);
        assert_eq!(ml.decisions.edge_count(), layers[0].decisions.edge_count());
    }
}
