//! Merge-based generic entity resolution with data confidences (R-Swoosh).
//!
//! The paper's related work (§VI) discusses this family at length: "[5]
//! presents a pairwise comparison-based method, where the authors also
//! consider confidence values during the resolution process. They propose
//! to merge database records, which refer to the same entity, right away,
//! as they are found to be equivalent by the algorithm. The algorithm also
//! computes a new combined confidence value for the merged record. A more
//! complete analysis of results can be found in [7]" (Benjelloun et al.,
//! *Swoosh: a generic approach to entity resolution*, VLDB J. 2009).
//!
//! This module implements R-Swoosh over merged [`PageFeatures`] profiles.
//! Unlike the pairwise framework in [`resolver`](crate::resolver), a merge
//! can *accumulate evidence*: two pages that individually share too little
//! with a third page may, once merged, share enough — so merge-based
//! resolution is not simply the transitive closure of pairwise decisions.

use std::collections::BTreeSet;

use weber_extract::features::PageFeatures;
use weber_graph::Partition;
use weber_simfun::block::PreparedBlock;
use weber_simfun::set_sim::overlap_coefficient;
use weber_simfun::string_sim::jaro_winkler;

/// A (possibly merged) record: the documents it covers, their combined
/// feature profile, and the record's confidence.
#[derive(Debug, Clone)]
pub struct MergeRecord {
    /// Document indices covered by this record.
    pub members: Vec<usize>,
    /// Merged feature profile.
    pub features: PageFeatures,
    /// Data confidence in `[0, 1]`: base records start at 1.0; each merge
    /// multiplies in the match score (uncertain merges degrade confidence,
    /// as in the Menestrina et al. model).
    pub confidence: f64,
}

/// A match function over merged profiles: decides whether two records
/// co-refer and with what confidence.
pub trait MatchFunction: Send + Sync {
    /// `Some(score)` (in `(0, 1]`) if the records match, `None` otherwise.
    fn matches(&self, a: &MergeRecord, b: &MergeRecord) -> Option<f64>;
}

/// The default profile matcher: a weighted vote over feature channels of
/// the merged profiles (concept-vector cosine, concept/organization/person
/// overlap, dominant-name similarity), matching when the combined score
/// clears `threshold`.
///
/// Channel weights can be fitted from the same supervision the resolver
/// uses (see [`ProfileMatcher::fit`]) or left uniform.
#[derive(Debug, Clone)]
pub struct ProfileMatcher {
    /// Combined-score threshold for declaring a match.
    pub threshold: f64,
    /// Channel weights: `[concept cosine, concept overlap, org overlap,
    /// person overlap, name similarity]`.
    pub weights: [f64; 5],
    /// The ambiguous query name (excluded from person overlap).
    pub query_name: String,
}

impl ProfileMatcher {
    /// A matcher with uniform channel weights.
    pub fn uniform(query_name: impl Into<String>, threshold: f64) -> Self {
        Self {
            threshold,
            weights: [1.0; 5],
            query_name: query_name.into(),
        }
    }

    /// Fit channel weights from supervision: each channel is scored by its
    /// pairwise training accuracy under its own optimal threshold (the same
    /// accuracy-estimation idea the paper applies to similarity functions),
    /// and that accuracy-excess over chance becomes the channel weight.
    pub fn fit(
        block: &PreparedBlock,
        supervision: &crate::supervision::Supervision,
        threshold: f64,
    ) -> Self {
        use weber_ml::threshold::optimal_threshold;
        let mut matcher = Self::uniform(block.query_name().to_string(), threshold);
        let records: Vec<MergeRecord> = (0..block.len())
            .map(|d| MergeRecord {
                members: vec![d],
                features: block.features(d).clone(),
                confidence: 1.0,
            })
            .collect();
        for channel in 0..5 {
            let samples: Vec<weber_ml::LabeledValue> = supervision
                .pairs()
                .map(|(i, j, link)| {
                    let v = matcher.channel_score(channel, &records[i], &records[j]);
                    weber_ml::LabeledValue::new(v, link)
                })
                .collect();
            let fit = optimal_threshold(&samples);
            matcher.weights[channel] = (fit.training_accuracy - 0.5).max(0.01);
        }
        matcher
    }

    fn channel_score(&self, channel: usize, a: &MergeRecord, b: &MergeRecord) -> f64 {
        let (fa, fb) = (&a.features, &b.features);
        match channel {
            0 => fa.weighted_concepts.cosine(&fb.weighted_concepts),
            1 => overlap_coefficient(&fa.concepts, &fb.concepts),
            2 => overlap_coefficient(&fa.organizations, &fb.organizations),
            3 => {
                let pa: BTreeSet<String> = fa
                    .other_person_names(&self.query_name)
                    .into_iter()
                    .map(str::to_lowercase)
                    .collect();
                let pb: BTreeSet<String> = fb
                    .other_person_names(&self.query_name)
                    .into_iter()
                    .map(str::to_lowercase)
                    .collect();
                overlap_coefficient(&pa, &pb)
            }
            4 => match (fa.most_frequent_person(), fb.most_frequent_person()) {
                (Some(x), Some(y)) => jaro_winkler(&x.to_lowercase(), &y.to_lowercase()),
                _ => 0.0,
            },
            _ => unreachable!("five channels"),
        }
    }

    /// The weighted combined score of two records.
    pub fn score(&self, a: &MergeRecord, b: &MergeRecord) -> f64 {
        let total: f64 = self.weights.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        (0..5)
            .map(|c| self.weights[c] * self.channel_score(c, a, b))
            .sum::<f64>()
            / total
    }
}

impl MatchFunction for ProfileMatcher {
    fn matches(&self, a: &MergeRecord, b: &MergeRecord) -> Option<f64> {
        let s = self.score(a, b);
        (s >= self.threshold).then_some(s)
    }
}

/// Run R-Swoosh over a block: keep a set of resolved records; for each
/// unresolved record, look for the first resolved match — if found, merge
/// (combining confidences) and re-queue the merged record, otherwise move
/// the record to the resolved set. Terminates because every merge strictly
/// reduces the total record count.
pub fn r_swoosh(block: &PreparedBlock, matcher: &dyn MatchFunction) -> SwooshOutcome {
    let mut queue: Vec<MergeRecord> = (0..block.len())
        .map(|d| MergeRecord {
            members: vec![d],
            features: block.features(d).clone(),
            confidence: 1.0,
        })
        .collect();
    // Process in reverse so pop() visits documents in their natural order.
    queue.reverse();
    let mut resolved: Vec<MergeRecord> = Vec::new();
    let mut merges = 0usize;
    while let Some(record) = queue.pop() {
        let hit = resolved
            .iter()
            .position(|r| matcher.matches(r, &record).is_some());
        match hit {
            Some(pos) => {
                let partner = resolved.swap_remove(pos);
                let score = matcher
                    .matches(&partner, &record)
                    .expect("match already observed");
                let mut members = partner.members.clone();
                members.extend_from_slice(&record.members);
                members.sort_unstable();
                queue.push(MergeRecord {
                    members,
                    features: partner.features.merge(&record.features),
                    confidence: partner.confidence * record.confidence * score,
                });
                merges += 1;
            }
            None => resolved.push(record),
        }
    }
    let clusters: Vec<Vec<usize>> = resolved.iter().map(|r| r.members.clone()).collect();
    let partition = Partition::from_clusters(block.len(), &clusters);
    SwooshOutcome {
        partition,
        records: resolved,
        merges,
    }
}

/// The result of an R-Swoosh run.
#[derive(Debug, Clone)]
pub struct SwooshOutcome {
    /// The induced entity resolution.
    pub partition: Partition,
    /// The final merged records (aligned with the partition's clusters,
    /// though not necessarily in label order).
    pub records: Vec<MergeRecord>,
    /// Number of merge operations performed.
    pub merges: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervision::Supervision;
    use weber_corpus::{generate, presets};
    use weber_extract::pipeline::Extractor;
    use weber_textindex::tfidf::TfIdf;

    fn block_from(texts: &[&str], query: &str) -> PreparedBlock {
        use weber_extract::gazetteer::{EntityKind, Gazetteer};
        let mut g = Gazetteer::new();
        g.add_phrases(
            EntityKind::Organization,
            ["Org X", "Org Y", "Org Z", "Org W"],
        );
        g.add_phrases(EntityKind::Person, ["Alice Cohen", "Bob Cohen"]);
        let e = Extractor::new(&g);
        let features = texts.iter().map(|t| e.extract(t, None)).collect();
        PreparedBlock::new(query, features, TfIdf::default())
    }

    /// A matcher requiring at least `min_common` shared organizations —
    /// deliberately evidence-counting, to expose merge accumulation.
    #[derive(Debug)]
    struct OrgCount {
        min_common: usize,
    }

    impl MatchFunction for OrgCount {
        fn matches(&self, a: &MergeRecord, b: &MergeRecord) -> Option<f64> {
            let common = a
                .features
                .organizations
                .intersection(&b.features.organizations)
                .count();
            (common >= self.min_common).then_some(1.0)
        }
    }

    #[test]
    fn merging_accumulates_evidence_beyond_pairwise_closure() {
        // A={X,Y}, B={X,Z}, C={Y,Z}: every pair shares exactly one org, so
        // with min_common=2 no pairwise match exists and transitive closure
        // would leave three singletons. After A and B fail to match... they
        // do fail; but D={X,Y,Z,W} matches both A and B pairwise; merged
        // profiles then absorb C.
        let block = block_from(
            &[
                "page mentions Org X and Org Y",
                "page mentions Org X and Org Z",
                "page mentions Org Y and Org Z",
                "page mentions Org X and Org Y and Org Z and Org W",
            ],
            "cohen",
        );
        let out = r_swoosh(&block, &OrgCount { min_common: 2 });
        // D matches A ({X,Y}), merged {X,Y,Z,W}+A then matches B and C.
        assert_eq!(out.partition.cluster_count(), 1);
        assert!(out.merges >= 3);
    }

    #[test]
    fn no_matches_yields_singletons() {
        let block = block_from(&["about Org X", "about Org Y", "about Org Z"], "cohen");
        let out = r_swoosh(&block, &OrgCount { min_common: 1 });
        assert_eq!(out.partition.cluster_count(), 3);
        assert_eq!(out.merges, 0);
        assert!(out.records.iter().all(|r| r.confidence == 1.0));
    }

    #[test]
    fn confidence_degrades_with_uncertain_merges() {
        #[derive(Debug)]
        struct Always(f64);
        impl MatchFunction for Always {
            fn matches(&self, _: &MergeRecord, _: &MergeRecord) -> Option<f64> {
                Some(self.0)
            }
        }
        let block = block_from(&["a", "b", "c"], "cohen");
        let out = r_swoosh(&block, &Always(0.8));
        assert_eq!(out.partition.cluster_count(), 1);
        assert_eq!(out.records.len(), 1);
        // Two merges at score 0.8: confidence = 0.8 * 0.8.
        assert!((out.records[0].confidence - 0.64).abs() < 1e-12);
    }

    #[test]
    fn partition_covers_every_document_exactly_once() {
        let block = block_from(
            &[
                "Alice Cohen at Org X",
                "Alice Cohen at Org X",
                "Bob Cohen at Org Y",
                "nothing informative here",
            ],
            "cohen",
        );
        let matcher = ProfileMatcher::uniform("cohen", 0.6);
        let out = r_swoosh(&block, &matcher);
        assert_eq!(out.partition.len(), 4);
        let member_total: usize = out.records.iter().map(|r| r.members.len()).sum();
        assert_eq!(member_total, 4);
    }

    #[test]
    fn profile_matcher_fit_weights_are_positive() {
        let dataset = generate(&presets::tiny(44));
        let extractor = Extractor::new(&dataset.gazetteer);
        let b = &dataset.blocks[0];
        let features = b
            .documents
            .iter()
            .map(|d| extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        let block = PreparedBlock::new(b.query_name.clone(), features, TfIdf::default());
        let sup = Supervision::sample_from_truth(&b.truth(), 0.3, 1);
        let matcher = ProfileMatcher::fit(&block, &sup, 0.5);
        for w in matcher.weights {
            assert!(w > 0.0 && w <= 0.5 + 1e-9);
        }
    }

    #[test]
    fn fitted_swoosh_resolves_synthetic_block_reasonably() {
        let dataset = generate(&presets::tiny(46));
        let extractor = Extractor::new(&dataset.gazetteer);
        let b = &dataset.blocks[0];
        let features = b
            .documents
            .iter()
            .map(|d| extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        let block = PreparedBlock::new(b.query_name.clone(), features, TfIdf::default());
        let truth = b.truth();
        let sup = Supervision::sample_from_truth(&truth, 0.3, 2);
        let matcher = ProfileMatcher::fit(&block, &sup, 0.55);
        let out = r_swoosh(&block, &matcher);
        let fp = weber_eval::fp_measure(&out.partition, &truth);
        let singles = weber_eval::fp_measure(&Partition::singletons(truth.len()), &truth);
        assert!(
            fp > singles,
            "swoosh Fp {fp:.3} should beat singletons {singles:.3}"
        );
    }
}
