//! Active selection of documents to label.
//!
//! The paper labels a *random* 10% of each block ("on each run we randomly
//! choose the training subset") and notes that "the performance of the ER
//! algorithm depends on how well the training set represents the features
//! of the complete dataset". This module implements the natural next step:
//! spend the labelling budget on the documents whose pairs the current
//! model is *least certain* about (uncertainty sampling), instead of
//! uniformly at random. Compared in the `ablation_active` study.

use weber_graph::weighted::WeightedGraph;
use weber_simfun::block::PreparedBlock;
use weber_simfun::functions::SimilarityFunction;

use crate::layers::similarity_graph;
use crate::supervision::Supervision;

/// Score each document by how uncertain the per-function similarity
/// evidence about its pairs is: the mean over functions and partner
/// documents of `1 − 2·|sim − ½|` (1 at a maximally ambiguous value of
/// 0.5, 0 at a confident 0 or 1).
pub fn uncertainty_scores(
    block: &PreparedBlock,
    functions: &[std::sync::Arc<dyn SimilarityFunction>],
) -> Vec<f64> {
    let n = block.len();
    let mut scores = vec![0.0f64; n];
    if n < 2 || functions.is_empty() {
        return scores;
    }
    for f in functions {
        let sims: WeightedGraph = similarity_graph(block, f.as_ref());
        for (i, j, w) in sims.edges() {
            let u = 1.0 - 2.0 * (w - 0.5).abs();
            scores[i] += u;
            scores[j] += u;
        }
    }
    let per_doc = (functions.len() * (n - 1)) as f64;
    for s in &mut scores {
        *s /= per_doc;
    }
    scores
}

/// Select `budget` documents to label by uncertainty sampling: the
/// documents with the highest uncertainty scores, excluding any already
/// labelled in `existing`. Ties break toward lower indices (deterministic).
pub fn select_uncertain_docs(
    block: &PreparedBlock,
    functions: &[std::sync::Arc<dyn SimilarityFunction>],
    existing: &Supervision,
    budget: usize,
) -> Vec<usize> {
    let scores = uncertainty_scores(block, functions);
    let mut candidates: Vec<usize> = (0..block.len())
        .filter(|d| !existing.docs().contains(d))
        .collect();
    candidates.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    candidates.truncate(budget);
    candidates.sort_unstable();
    candidates
}

/// Build supervision over `docs` with labels taken from `truth` (the
/// oracle step of an active-learning loop, or a human labeller in
/// practice).
pub fn label_docs(truth: &weber_graph::Partition, docs: &[usize]) -> Supervision {
    Supervision::new(docs.iter().map(|&d| (d, truth.label_of(d))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use weber_corpus::{generate, presets};
    use weber_extract::pipeline::Extractor;
    use weber_graph::Partition;
    use weber_simfun::functions::{function, FunctionId};
    use weber_textindex::tfidf::TfIdf;

    fn prepared() -> (PreparedBlock, Partition) {
        let dataset = generate(&presets::tiny(27));
        let extractor = Extractor::new(&dataset.gazetteer);
        let b = &dataset.blocks[0];
        let features = b
            .documents
            .iter()
            .map(|d| extractor.extract(&d.text, d.url.as_deref()))
            .collect();
        (
            PreparedBlock::new(b.query_name.clone(), features, TfIdf::default()),
            b.truth(),
        )
    }

    fn suite() -> Vec<std::sync::Arc<dyn SimilarityFunction>> {
        [FunctionId::F4, FunctionId::F8]
            .into_iter()
            .map(function)
            .collect()
    }

    #[test]
    fn uncertainty_scores_are_bounded() {
        let (block, _) = prepared();
        let scores = uncertainty_scores(&block, &suite());
        assert_eq!(scores.len(), block.len());
        for &s in &scores {
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    #[test]
    fn selection_respects_budget_and_exclusions() {
        let (block, truth) = prepared();
        let existing = Supervision::sample_from_truth(&truth, 0.2, 1);
        let picked = select_uncertain_docs(&block, &suite(), &existing, 5);
        assert_eq!(picked.len(), 5);
        for d in &picked {
            assert!(!existing.docs().contains(d));
            assert!(*d < block.len());
        }
        // Sorted, distinct.
        assert!(picked.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn selection_is_deterministic() {
        let (block, truth) = prepared();
        let existing = Supervision::sample_from_truth(&truth, 0.1, 2);
        let a = select_uncertain_docs(&block, &suite(), &existing, 4);
        let b = select_uncertain_docs(&block, &suite(), &existing, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn budget_larger_than_block_takes_everything_unlabelled() {
        let (block, truth) = prepared();
        let existing = Supervision::sample_from_truth(&truth, 0.5, 3);
        let picked = select_uncertain_docs(&block, &suite(), &existing, 10_000);
        assert_eq!(picked.len(), block.len() - existing.len());
    }

    #[test]
    fn label_docs_takes_truth_labels() {
        let (_, truth) = prepared();
        let sup = label_docs(&truth, &[0, 3, 5]);
        assert_eq!(sup.len(), 3);
        assert_eq!(sup.same_entity(0, 3), Some(truth.same_cluster(0, 3)));
    }

    #[test]
    fn degenerate_inputs() {
        let (block, _) = prepared();
        assert!(uncertainty_scores(&block, &[]).iter().all(|&s| s == 0.0));
        let picked = select_uncertain_docs(&block, &suite(), &Supervision::empty(), 0);
        assert!(picked.is_empty());
    }
}
