//! Property-based tests for the resolution framework: end-to-end
//! invariants that must hold for any seed, supervision level and
//! configuration.

use proptest::prelude::*;

use weber_core::blocking::prepare_dataset;
use weber_core::decision::DecisionCriterion;
use weber_core::resolver::{Resolver, ResolverConfig};
use weber_core::supervision::Supervision;
use weber_corpus::{generate, presets};
use weber_graph::decision::DecisionGraph;
use weber_graph::entity::is_clique_union;
use weber_simfun::functions::{subset_i10, FunctionId};
use weber_textindex::tfidf::TfIdf;

proptest! {
    // Full resolutions are expensive; keep the case count small but the
    // assertions strong.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn resolution_is_always_a_valid_partition(
        seed in 0u64..1000,
        frac in 0.05f64..0.5,
        sup_seed in 0u64..100,
    ) {
        let prepared = prepare_dataset(&generate(&presets::tiny(seed)), TfIdf::default());
        let resolver = Resolver::new(ResolverConfig::accuracy_suite(subset_i10())).unwrap();
        for nb in &prepared.blocks {
            let sup = Supervision::sample_from_truth(&nb.truth, frac, sup_seed);
            let r = resolver.resolve(&nb.block, &sup).unwrap();
            // Covers every document.
            prop_assert_eq!(r.partition.len(), nb.block.len());
            // The induced entity graph is a union of disjoint cliques.
            let g = DecisionGraph::from_partition(&r.partition);
            prop_assert!(is_clique_union(&g));
            // Diagnostics are complete: 10 functions x 3 criteria.
            prop_assert_eq!(r.layers.len(), 30);
            for l in &r.layers {
                prop_assert!((0.0..=1.0).contains(&l.accuracy));
                prop_assert!((0.0..=1.0).contains(&l.selection_score));
            }
        }
    }

    #[test]
    fn resolution_is_deterministic(seed in 0u64..1000) {
        let prepared = prepare_dataset(&generate(&presets::tiny(seed)), TfIdf::default());
        let resolver = Resolver::new(ResolverConfig::default()).unwrap();
        let nb = &prepared.blocks[0];
        let sup = Supervision::sample_from_truth(&nb.truth, 0.2, 9);
        let a = resolver.resolve(&nb.block, &sup).unwrap();
        let b = resolver.resolve(&nb.block, &sup).unwrap();
        prop_assert_eq!(a.partition, b.partition);
        prop_assert_eq!(a.selected_layer, b.selected_layer);
    }

    #[test]
    fn more_criteria_never_reduce_layer_count(seed in 0u64..200) {
        let prepared = prepare_dataset(&generate(&presets::tiny(seed)), TfIdf::default());
        let nb = &prepared.blocks[0];
        let sup = Supervision::sample_from_truth(&nb.truth, 0.2, 1);
        let thr = Resolver::new(ResolverConfig::threshold_suite(subset_i10()))
            .unwrap()
            .resolve(&nb.block, &sup)
            .unwrap();
        let acc = Resolver::new(ResolverConfig::accuracy_suite(subset_i10()))
            .unwrap()
            .resolve(&nb.block, &sup)
            .unwrap();
        prop_assert!(acc.layers.len() > thr.layers.len());
        // The accuracy suite's best selection score can only be >= the
        // threshold suite's (it considers a superset of layers).
        let best = |layers: &[weber_core::resolver::LayerReport]| {
            layers.iter().map(|l| l.selection_score).fold(f64::MIN, f64::max)
        };
        prop_assert!(best(&acc.layers) >= best(&thr.layers) - 1e-12);
    }

    #[test]
    fn empty_supervision_still_resolves(seed in 0u64..200) {
        let prepared = prepare_dataset(&generate(&presets::tiny(seed)), TfIdf::default());
        let nb = &prepared.blocks[0];
        let resolver = Resolver::new(ResolverConfig::individual(
            FunctionId::F8,
            DecisionCriterion::Threshold,
        ))
        .unwrap();
        let r = resolver.resolve(&nb.block, &Supervision::empty()).unwrap();
        prop_assert_eq!(r.partition.len(), nb.block.len());
    }

    #[test]
    fn supervision_pairs_are_consistent_with_truth(seed in 0u64..500, frac in 0.1f64..0.9) {
        let dataset = generate(&presets::tiny(seed));
        let truth = dataset.blocks[0].truth();
        let sup = Supervision::sample_from_truth(&truth, frac, seed);
        for (i, j, same) in sup.pairs() {
            prop_assert_eq!(same, truth.same_cluster(i, j));
        }
    }
}
