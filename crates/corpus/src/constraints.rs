//! Ground-truth constraints derived from a generated block.
//!
//! The entity layer ([`weber_entity`]) accepts declarative global
//! constraints — cannot-link pairs and one-to-one mappings — and
//! enforces them by splitting clusters at materialization. To measure
//! whether that enforcement *helps* (the [`crate::presets::constrained_small`]
//! experiment), the corpus has to supply constraints that are true:
//! this module derives them from a block's persona labels, the same
//! ground truth Fp is scored against.
//!
//! Both derivations are deterministic in the block, so a test or an
//! experiment re-running on the same seed sees the same constraint set.

use std::collections::BTreeMap;

use weber_entity::Constraint;

use crate::dataset::NameBlock;

/// Documents of each persona, keyed by persona label (ascending), each
/// list in document order.
fn by_persona(block: &NameBlock) -> BTreeMap<u32, Vec<usize>> {
    let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (doc, &label) in block.truth_labels.iter().enumerate() {
        groups.entry(label).or_default().push(doc);
    }
    groups
}

/// Up to `limit` cannot-link pairs between documents of *different*
/// personas, spread round-robin across every persona pair so no single
/// pair of personas hogs the budget. Every emitted pair is true by
/// construction (the two documents carry different truth labels), so a
/// resolver that merged them has over-merged and the constraint corrects
/// a real error.
pub fn cannot_link_truth(block: &NameBlock, limit: usize) -> Vec<Constraint> {
    let groups: Vec<Vec<usize>> = by_persona(block).into_values().collect();
    let deepest = groups.iter().map(Vec::len).max().unwrap_or(0);
    let mut out = Vec::new();
    'rounds: for round in 0..deepest {
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                if out.len() >= limit {
                    break 'rounds;
                }
                let (a, b) = (&groups[i], &groups[j]);
                // Advance through both personas' documents; once both
                // are exhausted this pair only repeats, so skip it.
                if round < a.len() || round < b.len() {
                    out.push(Constraint::CannotLink {
                        a: a[round % a.len()],
                        b: b[round % b.len()],
                    });
                }
            }
        }
    }
    out
}

/// A one-to-one mapping under `key` annotating the first `per_persona`
/// documents of each persona with that persona's identity. Two
/// annotated documents then conflict exactly when their personas differ
/// — the strongest form of ground truth the entity layer accepts: it
/// both splits over-merged clusters (different values) and surfaces
/// under-merges as unmet-merge violations (same value, different
/// entities).
pub fn one_to_one_truth(block: &NameBlock, key: &str, per_persona: usize) -> Constraint {
    let mut values = Vec::new();
    for (label, docs) in by_persona(block) {
        for &doc in docs.iter().take(per_persona) {
            values.push((doc, format!("persona-{label}")));
        }
    }
    Constraint::OneToOne {
        key: key.to_string(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::GeneratedDocument;

    fn block(labels: Vec<u32>) -> NameBlock {
        NameBlock {
            query_name: "cohen".into(),
            documents: labels
                .iter()
                .map(|_| GeneratedDocument {
                    url: None,
                    text: "x".into(),
                })
                .collect(),
            truth_labels: labels,
        }
    }

    #[test]
    fn cannot_links_are_true_and_bounded() {
        let b = block(vec![0, 0, 1, 1, 2]);
        let pairs = cannot_link_truth(&b, 4);
        assert_eq!(pairs.len(), 4);
        for c in &pairs {
            let Constraint::CannotLink { a, b: d } = c else {
                panic!("wrong kind");
            };
            assert_ne!(b.truth_labels[*a], b.truth_labels[*d], "{c:?}");
        }
        // A generous limit is capped by what the personas can supply,
        // and never emits a duplicate pair.
        let all = cannot_link_truth(&b, 1000);
        let mut keys: Vec<(usize, usize)> = all
            .iter()
            .map(|c| match c {
                Constraint::CannotLink { a, b } => (*a.min(b), *a.max(b)),
                other => panic!("wrong kind {other:?}"),
            })
            .collect();
        keys.sort_unstable();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate cannot-link emitted");
    }

    #[test]
    fn one_to_one_values_follow_the_personas() {
        let b = block(vec![0, 1, 0, 1, 1]);
        let Constraint::OneToOne { key, values } = one_to_one_truth(&b, "identity", 2) else {
            panic!("wrong kind");
        };
        assert_eq!(key, "identity");
        assert_eq!(values.len(), 4, "two docs per persona");
        for (doc, value) in &values {
            assert_eq!(*value, format!("persona-{}", b.truth_labels[*doc]));
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let config = crate::presets::constrained_small(7);
        let data = crate::generator::generate(&config);
        let b = &data.blocks[0];
        assert_eq!(cannot_link_truth(b, 8), cannot_link_truth(b, 8));
        assert_eq!(
            one_to_one_truth(b, "k", 2).forbids(0, 1),
            one_to_one_truth(b, "k", 2).forbids(0, 1)
        );
    }
}
