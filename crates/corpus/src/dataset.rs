//! The generated dataset: documents, blocks, ground truth, gazetteer.

use serde::{Deserialize, Serialize};

use weber_extract::gazetteer::Gazetteer;
use weber_graph::Partition;

/// One synthetic web document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratedDocument {
    /// Page URL, when the page has one.
    pub url: Option<String>,
    /// Page text.
    pub text: String,
}

/// All documents retrieved for one ambiguous name, with ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NameBlock {
    /// The ambiguous name (search keyword).
    pub query_name: String,
    /// The retrieved documents.
    pub documents: Vec<GeneratedDocument>,
    /// Ground-truth labels: `truth_labels[i]` is the persona index of
    /// document `i`.
    pub truth_labels: Vec<u32>,
}

impl NameBlock {
    /// The ground-truth partition of this block.
    pub fn truth(&self) -> Partition {
        Partition::from_labels(self.truth_labels.clone())
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True for a block with no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Number of distinct persons (clusters) in the ground truth.
    pub fn entity_count(&self) -> usize {
        self.truth().cluster_count()
    }
}

/// A complete generated dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name of the preset, e.g. `"www05-like"`.
    pub label: String,
    /// Seed it was generated from.
    pub seed: u64,
    /// One block per ambiguous name.
    pub blocks: Vec<NameBlock>,
    /// The dictionary a NER system would use over this corpus.
    pub gazetteer: Gazetteer,
}

impl Dataset {
    /// Total number of documents across blocks.
    pub fn document_count(&self) -> usize {
        self.blocks.iter().map(NameBlock::len).sum()
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialise from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> NameBlock {
        NameBlock {
            query_name: "cohen".into(),
            documents: vec![
                GeneratedDocument {
                    url: Some("http://x.example.com/a".into()),
                    text: "text a".into(),
                },
                GeneratedDocument {
                    url: None,
                    text: "text b".into(),
                },
            ],
            truth_labels: vec![0, 1],
        }
    }

    #[test]
    fn truth_partition_roundtrip() {
        let b = block();
        assert_eq!(b.truth().cluster_count(), 2);
        assert_eq!(b.entity_count(), 2);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn dataset_counts_documents() {
        let d = Dataset {
            label: "test".into(),
            seed: 1,
            blocks: vec![block(), block()],
            gazetteer: Gazetteer::new(),
        };
        assert_eq!(d.document_count(), 4);
    }

    #[test]
    fn json_roundtrip() {
        let d = Dataset {
            label: "test".into(),
            seed: 42,
            blocks: vec![block()],
            gazetteer: Gazetteer::new(),
        };
        let json = d.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(back.label, "test");
        assert_eq!(back.seed, 42);
        assert_eq!(back.blocks[0].documents, d.blocks[0].documents);
        assert_eq!(back.blocks[0].truth_labels, d.blocks[0].truth_labels);
    }
}
