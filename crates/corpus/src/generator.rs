//! Document text synthesis: persona profile + quality knobs → page text.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;
use rand::SeedableRng;

use crate::dataset::{Dataset, GeneratedDocument, NameBlock};
use crate::persona::Persona;
use crate::presets::CorpusConfig;
use crate::quality::NameQuality;
use crate::vocab::GLUE;
use crate::world::{generic_domain, World, WorldBlock};

/// Generate a full dataset from a configuration. Deterministic in
/// `config.seed`.
///
/// ```
/// use weber_corpus::{generate, presets};
///
/// let dataset = generate(&presets::tiny(7));
/// assert_eq!(dataset.blocks.len(), 3);
/// assert_eq!(dataset.document_count(), 72);
/// // Ground truth is attached per block:
/// assert!(dataset.blocks[0].entity_count() >= 2);
/// ```
pub fn generate(config: &CorpusConfig) -> Dataset {
    let world = World::build(config);
    let gazetteer = world.gazetteer();
    let mut blocks = Vec::with_capacity(world.blocks.len());
    for (b, wb) in world.blocks.iter().enumerate() {
        blocks.push(generate_block(config, &world, wb, b as u64));
    }
    Dataset {
        label: config.label.clone(),
        seed: config.seed,
        blocks,
        gazetteer,
    }
}

fn generate_block(
    config: &CorpusConfig,
    world: &World,
    wb: &WorldBlock,
    block_idx: u64,
) -> NameBlock {
    let mut documents: Vec<GeneratedDocument> = Vec::with_capacity(wb.assignment.len());
    for (d, &persona_idx) in wb.assignment.iter().enumerate() {
        let doc_seed = config
            .seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(block_idx << 32)
            .wrapping_add(d as u64);
        let mut rng = StdRng::seed_from_u64(doc_seed);
        let persona = &wb.personas[persona_idx];
        // With some probability the page is a mirror of an earlier page
        // about the same persona (same text with a syndication note, on a
        // different host) — the web's near-duplicate phenomenon.
        let earlier: Vec<usize> = (0..d)
            .filter(|&e| wb.assignment[e] == persona_idx)
            .collect();
        let doc =
            if !earlier.is_empty() && rng.random_bool(wb.quality.duplicate_prob.clamp(0.0, 1.0)) {
                let source = &documents[earlier[rng.random_range(0..earlier.len())]];
                mirror_document(world, source, &mut rng)
            } else {
                generate_document(world, persona, &wb.quality, &mut rng)
            };
        documents.push(doc);
    }
    NameBlock {
        query_name: wb.surname.clone(),
        documents,
        truth_labels: wb.assignment.iter().map(|&p| p as u32).collect(),
    }
}

/// A near-duplicate of `source`: identical body with a mirror notice, on a
/// generic hosting domain.
fn mirror_document(
    world: &World,
    source: &GeneratedDocument,
    rng: &mut StdRng,
) -> GeneratedDocument {
    let path_word = world.content_words[world.zipf.sample(rng)].as_str();
    GeneratedDocument {
        url: Some(format!(
            "http://{}/mirror/{}{}",
            generic_domain(rng),
            path_word,
            rng.random_range(0..10_000u32)
        )),
        text: format!("{} Mirrored copy of an archived page.", source.text),
    }
}

/// Render one document about `persona` under the block's quality profile.
pub fn generate_document(
    world: &World,
    persona: &Persona,
    q: &NameQuality,
    rng: &mut StdRng,
) -> GeneratedDocument {
    let mut sentences: Vec<String> = Vec::new();

    // How the page refers to the person: full name, initial form, or the
    // bare ambiguous surname. One form per page (pages are internally
    // consistent), repeated across sentences so "most frequent name" works.
    let name = if rng.random_bool(q.full_name_prob.clamp(0.0, 1.0)) {
        persona.full_name.clone()
    } else if rng.random_bool(0.5) {
        persona.initial_name.clone()
    } else {
        persona.surname.clone()
    };

    // Intro sentence, optionally with the affiliation.
    if rng.random_bool(q.org_prob.clamp(0.0, 1.0)) {
        let org = persona
            .organizations
            .choose(rng)
            .expect("personas have at least one organization");
        sentences.push(format!("{name} is a {} at {org}.", persona.role));
    } else {
        sentences.push(format!("{name} is a {}.", persona.role));
    }
    if rng.random_bool(0.5) {
        sentences.push(format!("{name} is based in {}.", persona.location));
    }

    // Concept mentions: expected count q.concept_mentions.
    let mut concept_count = q.concept_mentions.floor() as usize;
    if rng.random_bool((q.concept_mentions - concept_count as f64).clamp(0.0, 1.0)) {
        concept_count += 1;
    }
    for _ in 0..concept_count {
        let c = persona
            .concepts
            .choose(rng)
            .expect("personas have at least one concept");
        sentences.push(format!("{name} works on {c}."));
    }

    // Associates.
    for a in &persona.associates {
        if rng.random_bool(q.associate_prob.clamp(0.0, 1.0)) {
            sentences.push(format!("{name} collaborates with {a}."));
        }
    }

    // Spurious (noise) entity mentions — extraction/reality noise.
    if rng.random_bool(q.spurious_prob.clamp(0.0, 1.0)) {
        match rng.random_range(0..3u8) {
            0 => {
                let o = world
                    .pools
                    .organizations
                    .choose(rng)
                    .expect("organizations pool non-empty");
                sentences.push(format!("Related news from {o}."));
            }
            1 => {
                let c = world
                    .pools
                    .concepts
                    .choose(rng)
                    .expect("concepts pool non-empty");
                sentences.push(format!("See also articles about {c}."));
            }
            _ => {
                let a = world
                    .pools
                    .associates
                    .choose(rng)
                    .expect("associates pool non-empty");
                sentences.push(format!("Unrelated profile of {a}."));
            }
        }
    }

    // Background prose: doc_len content words, drawn from the persona's
    // topical vocabulary with probability topic_purity, otherwise from the
    // global Zipf pool; interleaved with glue words.
    let (len_lo, len_hi) = q.doc_len;
    let n_words = if len_hi > len_lo {
        rng.random_range(len_lo..=len_hi)
    } else {
        len_lo
    };
    let mut prose: Vec<&str> = Vec::with_capacity(n_words * 3 / 2);
    for w in 0..n_words {
        let word =
            if !persona.topic_words.is_empty() && rng.random_bool(q.topic_purity.clamp(0.0, 1.0)) {
                let idx = persona.topic_words[rng.random_range(0..persona.topic_words.len())];
                world.content_words[idx].as_str()
            } else {
                world.content_words[world.zipf.sample(rng)].as_str()
            };
        prose.push(word);
        if w % 4 == 3 {
            prose.push(GLUE[rng.random_range(0..GLUE.len())]);
        }
    }
    if !prose.is_empty() {
        sentences.push(format!("{}.", prose.join(" ")));
    }

    // URL.
    let url = if rng.random_bool(q.url_presence.clamp(0.0, 1.0)) {
        let path_word = world.content_words[world.zipf.sample(rng)].as_str();
        if rng.random_bool(q.home_url.clamp(0.0, 1.0)) {
            Some(format!(
                "http://{}/{}/{}",
                persona.domain, persona.surname, path_word
            ))
        } else {
            Some(format!(
                "http://{}/{}{}",
                generic_domain(rng),
                path_word,
                rng.random_range(0..10_000u32)
            ))
        }
    } else {
        None
    };

    GeneratedDocument {
        url,
        text: sentences.join(" "),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn generation_is_deterministic() {
        let cfg = presets::tiny(21);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.documents, y.documents);
            assert_eq!(x.truth_labels, y.truth_labels);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&presets::tiny(1));
        let b = generate(&presets::tiny(2));
        assert_ne!(a.blocks[0].documents, b.blocks[0].documents);
    }

    #[test]
    fn block_shapes_match_config() {
        let cfg = presets::tiny(5);
        let d = generate(&cfg);
        assert_eq!(d.blocks.len(), cfg.names);
        for b in &d.blocks {
            assert_eq!(b.len(), cfg.docs_per_name);
            assert_eq!(b.truth_labels.len(), cfg.docs_per_name);
            assert!(b.entity_count() >= 1);
        }
        assert_eq!(d.document_count(), cfg.names * cfg.docs_per_name);
    }

    #[test]
    fn documents_mention_a_name_form() {
        let cfg = presets::tiny(8);
        let d = generate(&cfg);
        let block = &d.blocks[0];
        for doc in &block.documents {
            assert!(
                doc.text.to_lowercase().contains(&block.query_name),
                "document must mention the surname: {}",
                doc.text
            );
        }
    }

    #[test]
    fn urls_follow_quality_settings() {
        let mut cfg = presets::tiny(3);
        cfg.quality.duplicate_prob = (0.0, 0.0); // mirrors always carry URLs
        cfg.quality.url_presence = (1.0, 1.0);
        let d = generate(&cfg);
        assert!(d.blocks[0].documents.iter().all(|doc| doc.url.is_some()));
        cfg.quality.url_presence = (0.0, 0.0);
        let d = generate(&cfg);
        assert!(d.blocks[0].documents.iter().all(|doc| doc.url.is_none()));
    }

    #[test]
    fn full_name_prob_one_always_uses_full_names() {
        let mut cfg = presets::tiny(4);
        cfg.quality.full_name_prob = (1.0, 1.0);
        let d = generate(&cfg);
        // Rebuild the world to learn the persona names.
        let w = World::build(&cfg);
        for (wb, block) in w.blocks.iter().zip(&d.blocks) {
            for (doc, &p) in block.documents.iter().zip(&wb.assignment) {
                let full = &wb.personas[p].full_name;
                assert!(
                    doc.text.to_lowercase().contains(full),
                    "expected {full} in: {}",
                    doc.text
                );
            }
        }
    }

    #[test]
    fn duplicate_prob_one_mirrors_repeat_documents() {
        let mut cfg = presets::tiny(12);
        cfg.quality.duplicate_prob = (1.0, 1.0);
        let d = generate(&cfg);
        // With duplicate probability 1, every document after a persona's
        // first is a mirror of an earlier one.
        let mirrors = d
            .blocks
            .iter()
            .flat_map(|b| &b.documents)
            .filter(|doc| doc.text.contains("Mirrored copy"))
            .count();
        let docs: usize = d.blocks.iter().map(|b| b.len()).sum();
        let personas: usize = d.blocks.iter().map(|b| b.entity_count()).sum();
        assert_eq!(mirrors, docs - personas);
        // Mirrors share their source's persona, so truth is unchanged in
        // shape (still covers all docs).
        for b in &d.blocks {
            assert_eq!(b.truth().len(), b.len());
        }
    }

    #[test]
    fn duplicate_prob_zero_produces_no_mirrors() {
        let mut cfg = presets::tiny(12);
        cfg.quality.duplicate_prob = (0.0, 0.0);
        let d = generate(&cfg);
        assert!(d
            .blocks
            .iter()
            .flat_map(|b| &b.documents)
            .all(|doc| !doc.text.contains("Mirrored copy")));
    }

    #[test]
    fn texts_are_nonempty_prose() {
        let d = generate(&presets::tiny(6));
        for b in &d.blocks {
            for doc in &b.documents {
                assert!(doc.text.split_whitespace().count() > 10);
                assert!(doc.text.ends_with('.'));
            }
        }
    }
}
