//! Deterministic word pools and Zipf sampling for text synthesis.
//!
//! Real web text has a Zipfian word distribution; TF-IDF similarity (F8–F10)
//! only behaves realistically if the synthetic text does too. Content words
//! are pronounceable pseudo-words generated from syllables, so they never
//! collide with gazetteer entries or stopwords.

use rand::rngs::StdRng;
use rand::Rng;
use rand::RngExt;
use rand::SeedableRng;

const CONSONANTS: &[&str] = &[
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "br",
    "cl", "dr", "gr", "pl", "st", "tr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"];

/// Generate a pronounceable pseudo-word from a seed index (deterministic).
pub fn pseudo_word(index: u64) -> String {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ index.wrapping_mul(0x9E3779B97F4A7C15));
    let syllables = 2 + (rng.random_range(0..3)) as usize;
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(CONSONANTS[rng.random_range(0..CONSONANTS.len())]);
        w.push_str(VOWELS[rng.random_range(0..VOWELS.len())]);
    }
    w
}

/// A fixed pool of distinct pseudo-words.
pub fn word_pool(size: usize, namespace: u64) -> Vec<String> {
    let mut out = Vec::with_capacity(size);
    let mut seen = std::collections::HashSet::new();
    let mut i = 0u64;
    while out.len() < size {
        let w = pseudo_word(namespace.wrapping_mul(1_000_003) + i);
        i += 1;
        if seen.insert(w.clone()) {
            out.push(w);
        }
    }
    out
}

/// A Zipf-distributed sampler over `0..n` with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with exponent `s` (typically ~1.0).
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Samplers are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample a rank index in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.random_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }
}

/// English glue words used to make sentences look like prose (these are all
/// stopwords, so the analyzer strips them — they only shape raw text).
pub const GLUE: &[&str] = &[
    "the", "a", "of", "and", "in", "on", "with", "for", "at", "is", "was", "has", "had", "this",
    "that", "from", "by", "an", "to",
];

/// First names for persona construction.
pub const FIRST_NAMES: &[&str] = &[
    "william", "andrew", "sarah", "david", "maria", "james", "linda", "robert", "susan", "michael",
    "karen", "richard", "nancy", "thomas", "elena", "daniel", "laura", "kevin", "julia", "steven",
    "anna", "paul", "ruth", "george", "alice", "frank", "diane", "peter", "carol", "henry",
    "grace", "victor", "irene", "oscar", "claire", "martin", "judith", "walter", "helen", "arthur",
];

/// Ambiguous surnames (block keys). Mirrors the flavour of the WWW'05 set
/// (Cheyer, Cohen, Hardt, Israel, Kaelbling, Mark, McCallum, Mitchell,
/// Mulford, Ng, Pereira, Voss).
pub const SURNAMES: &[&str] = &[
    "cheyer",
    "cohen",
    "hardt",
    "israel",
    "kaelbling",
    "mark",
    "mccallum",
    "mitchell",
    "mulford",
    "ng",
    "pereira",
    "voss",
    "smith",
    "lee",
    "brown",
    "walker",
    "turner",
    "collins",
    "parker",
    "morris",
    "reed",
    "bailey",
    "rivera",
    "cooper",
    "bell",
    "murphy",
    "ward",
    "cox",
    "diaz",
    "gray",
];

/// Organization name stems; combined with suffixes to build the org pool.
pub const ORG_STEMS: &[&str] = &[
    "stanford",
    "carnegie",
    "cornell",
    "apex",
    "vertex",
    "quantum",
    "nimbus",
    "zenith",
    "cascade",
    "aurora",
    "summit",
    "pioneer",
    "atlas",
    "horizon",
    "meridian",
    "solstice",
    "rampart",
    "keystone",
    "lighthouse",
    "granite",
    "harbor",
    "crescent",
    "obsidian",
    "palisade",
    "sequoia",
    "monarch",
];

/// Organization suffixes.
pub const ORG_SUFFIXES: &[&str] = &[
    "university",
    "labs",
    "institute",
    "systems",
    "research",
    "college",
    "corporation",
    "foundation",
    "group",
    "technologies",
];

/// Locations.
pub const LOCATIONS: &[&str] = &[
    "pittsburgh",
    "lausanne",
    "boston",
    "seattle",
    "amherst",
    "palo alto",
    "zurich",
    "london",
    "tokyo",
    "toronto",
    "berlin",
    "madrid",
    "austin",
    "dublin",
    "oslo",
    "prague",
    "lisbon",
    "geneva",
    "kyoto",
    "helsinki",
];

/// Role words used in sentence templates (non-stopword, real-ish words kept
/// distinct from pseudo-words; they add shared low-information content).
pub const ROLES: &[&str] = &[
    "professor",
    "researcher",
    "engineer",
    "artist",
    "director",
    "author",
    "analyst",
    "consultant",
    "editor",
    "scientist",
    "manager",
    "curator",
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pseudo_words_are_deterministic_and_nonempty() {
        assert_eq!(pseudo_word(42), pseudo_word(42));
        assert_ne!(pseudo_word(1), pseudo_word(2));
        assert!(pseudo_word(7).len() >= 4);
    }

    #[test]
    fn word_pool_is_distinct() {
        let pool = word_pool(500, 1);
        let set: std::collections::HashSet<_> = pool.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn word_pools_differ_by_namespace() {
        assert_ne!(word_pool(10, 1), word_pool(10, 2));
    }

    #[test]
    fn zipf_front_ranks_dominate() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Top-10 of 1000 ranks should carry roughly 39% of the mass under
        // s=1.0 (H(10)/H(1000) ≈ 0.39); allow generous slack.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3 && frac < 0.5, "head fraction {frac}");
    }

    #[test]
    fn zipf_samples_are_in_range() {
        let z = Zipf::new(5, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_zero() {
        Zipf::new(0, 1.0);
    }

    #[test]
    fn static_pools_are_nonempty_and_lowercase() {
        for list in [FIRST_NAMES, SURNAMES, LOCATIONS, ROLES] {
            assert!(!list.is_empty());
            for w in list {
                assert_eq!(&w.to_lowercase(), w);
            }
        }
    }

    #[test]
    fn glue_words_are_stopwords() {
        for w in GLUE {
            assert!(weber_textindex::is_stopword(w), "{w}");
        }
    }
}
