//! The world model: who the real people behind each ambiguous name are.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;
use rand::RngExt;
use rand::SeedableRng;

use weber_extract::gazetteer::{EntityKind, Gazetteer, GazetteerEntry};

use crate::persona::{EntityPools, Persona};
use crate::presets::CorpusConfig;
use crate::quality::NameQuality;
use crate::vocab::{self, Zipf};

/// Generic hosting domains shared across personas (URLs on these carry no
/// identity signal, confusing F2 — like personal pages on big hosts).
pub const GENERIC_DOMAINS: &[&str] = &[
    "people.webhost.net",
    "profiles.connectsite.com",
    "pages.freesites.org",
    "members.portalhub.com",
];

/// One ambiguous name's slice of the world.
#[derive(Debug, Clone)]
pub struct WorldBlock {
    /// The ambiguous surname (the block key / search keyword).
    pub surname: String,
    /// The real persons behind the name.
    pub personas: Vec<Persona>,
    /// The block's quality profile.
    pub quality: NameQuality,
    /// Document → persona index (ground truth), length = docs per name.
    pub assignment: Vec<usize>,
}

/// The full world: blocks, shared pools, content vocabulary.
#[derive(Debug)]
pub struct World {
    /// Per-name blocks.
    pub blocks: Vec<WorldBlock>,
    /// Shared entity pools.
    pub pools: EntityPools,
    /// Global content-word pool for background text.
    pub content_words: Vec<String>,
    /// Zipf sampler over the content pool.
    pub zipf: Zipf,
}

impl World {
    /// Build a world from a corpus configuration (deterministic in
    /// `config.seed`).
    pub fn build(config: &CorpusConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let pools = EntityPools::build(config.content_pool_size);
        let content_words = vocab::word_pool(config.content_pool_size, 11);
        let zipf = Zipf::new(config.content_pool_size, config.zipf_exponent);

        let mut blocks = Vec::with_capacity(config.names);
        for b in 0..config.names {
            let surname = vocab::SURNAMES[b % vocab::SURNAMES.len()].to_string();
            let quality = config.quality.draw(&mut rng);
            // Persona count: log-uniform in the configured range, capped by
            // the number of documents.
            let (lo, hi) = config.personas_range;
            let (lo, hi) = (lo.max(1), hi.max(lo.max(1)));
            let log_lo = (lo as f64).ln();
            let log_hi = (hi as f64).ln();
            let k = (if log_hi > log_lo {
                rng.random_range(log_lo..log_hi).exp()
            } else {
                lo as f64
            })
            .round() as usize;
            let k = k.clamp(1, config.docs_per_name.max(1));

            // Per-name topical pool: all personas of this name draw their
            // vocabularies from it, so same-name pages share topic words.
            let breadth = quality.topic_breadth.clamp(1, config.content_pool_size);
            let mut topic_pool: Vec<usize> = (0..breadth)
                .map(|_| rng.random_range(0..config.content_pool_size))
                .collect();
            topic_pool.sort_unstable();
            topic_pool.dedup();

            let mut used_first_names = Vec::new();
            let mut personas: Vec<Persona> = (0..k)
                .map(|_| pools.make_persona(&surname, &topic_pool, &mut used_first_names, &mut rng))
                .collect();
            inject_overlap(&mut personas, quality.persona_overlap, &mut rng);

            let assignment =
                assign_documents(config.docs_per_name, k, config.dominant_fraction, &mut rng);
            blocks.push(WorldBlock {
                surname,
                personas,
                quality,
                assignment,
            });
        }
        Self {
            blocks,
            pools,
            content_words,
            zipf,
        }
    }

    /// Build the gazetteer a dictionary NER would use over this world: all
    /// persona names (full, initial and bare-surname variants), associates,
    /// organizations, locations and concepts (with specificity weights).
    pub fn gazetteer(&self) -> Gazetteer {
        let mut g = Gazetteer::new();
        let mut seen = std::collections::HashSet::new();
        let mut add_unique = |g: &mut Gazetteer, e: GazetteerEntry| {
            if seen.insert((e.phrase.clone(), e.kind)) {
                g.add(e);
            }
        };
        for block in &self.blocks {
            add_unique(
                &mut g,
                GazetteerEntry::simple(block.surname.clone(), EntityKind::Person),
            );
            for p in &block.personas {
                add_unique(
                    &mut g,
                    GazetteerEntry::simple(p.full_name.clone(), EntityKind::Person),
                );
                add_unique(
                    &mut g,
                    GazetteerEntry::simple(p.initial_name.clone(), EntityKind::Person),
                );
            }
        }
        for (i, a) in self.pools.associates.iter().enumerate() {
            let _ = i;
            add_unique(
                &mut g,
                GazetteerEntry::simple(a.clone(), EntityKind::Person),
            );
        }
        for o in &self.pools.organizations {
            add_unique(
                &mut g,
                GazetteerEntry::simple(o.clone(), EntityKind::Organization),
            );
        }
        for l in vocab::LOCATIONS {
            add_unique(&mut g, GazetteerEntry::simple(*l, EntityKind::Location));
        }
        for (i, c) in self.pools.concepts.iter().enumerate() {
            // Deterministic specificity weight in [0.3, 1.0].
            let weight = 0.3 + 0.7 * ((i * 7919) % 100) as f64 / 99.0;
            add_unique(
                &mut g,
                GazetteerEntry::simple(c.clone(), EntityKind::Concept).with_weight(weight),
            );
        }
        g
    }
}

/// Let personas of one block share organizations/concepts with probability
/// `overlap` — the ambiguity that makes F4/F5 fallible.
fn inject_overlap(personas: &mut [Persona], overlap: f64, rng: &mut impl Rng) {
    if personas.len() < 2 {
        return;
    }
    for i in 1..personas.len() {
        if rng.random_bool(overlap.clamp(0.0, 1.0)) {
            let donor = rng.random_range(0..i);
            let org = personas[donor].organizations[0].clone();
            if !personas[i].organizations.contains(&org) {
                personas[i].organizations.push(org);
            }
        }
        if rng.random_bool(overlap.clamp(0.0, 1.0)) {
            let donor = rng.random_range(0..i);
            let concept = personas[donor].concepts[0].clone();
            if !personas[i].concepts.contains(&concept) {
                personas[i].concepts.push(concept);
            }
        }
        if rng.random_bool(overlap.clamp(0.0, 1.0)) {
            let donor = rng.random_range(0..i);
            let associate = personas[donor].associates[0].clone();
            if !personas[i].associates.contains(&associate) {
                personas[i].associates.push(associate);
            }
        }
    }
}

/// Assign `docs` documents to `k` personas: everyone gets at least one
/// document, a dominant persona takes roughly `dominant_fraction` of the
/// leftover, the rest decays geometrically (web reality: one famous person
/// plus a long tail). The assignment is then shuffled.
fn assign_documents(
    docs: usize,
    k: usize,
    dominant_fraction: (f64, f64),
    rng: &mut impl Rng,
) -> Vec<usize> {
    assert!(k >= 1 && k <= docs.max(1));
    let mut sizes = vec![1usize; k];
    let mut leftover = docs.saturating_sub(k);
    let f = if dominant_fraction.1 > dominant_fraction.0 {
        rng.random_range(dominant_fraction.0..dominant_fraction.1)
    } else {
        dominant_fraction.0
    };
    let dominant_extra = ((leftover as f64) * f).round() as usize;
    sizes[0] += dominant_extra.min(leftover);
    leftover -= dominant_extra.min(leftover);
    if k > 1 {
        // Geometric weights over the tail.
        let weights: Vec<f64> = (1..k).map(|i| 0.7f64.powi(i as i32)).collect();
        let total: f64 = weights.iter().sum();
        let mut given = 0usize;
        for (i, w) in weights.iter().enumerate() {
            let share = ((leftover as f64) * w / total).floor() as usize;
            sizes[i + 1] += share;
            given += share;
        }
        // Round-robin the remainder.
        let mut rem = leftover - given;
        let mut i = 1;
        while rem > 0 {
            sizes[i % k] += 1;
            rem -= 1;
            i += 1;
        }
    } else {
        sizes[0] += leftover;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), docs.max(k));
    let mut assignment: Vec<usize> = sizes
        .iter()
        .enumerate()
        .flat_map(|(p, &s)| std::iter::repeat_n(p, s))
        .collect();
    // Shuffle so train/test splits see all personas.
    use rand::seq::SliceRandom;
    assignment.shuffle(rng);
    assignment
}

/// Pick a generic hosting domain.
pub fn generic_domain(rng: &mut impl Rng) -> &'static str {
    GENERIC_DOMAINS
        .choose(rng)
        .expect("generic domain pool non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn world_build_is_deterministic() {
        let cfg = presets::tiny(7);
        let a = World::build(&cfg);
        let b = World::build(&cfg);
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x.assignment, y.assignment);
            assert_eq!(
                x.personas.iter().map(|p| &p.full_name).collect::<Vec<_>>(),
                y.personas.iter().map(|p| &p.full_name).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn every_persona_gets_at_least_one_document() {
        let cfg = presets::tiny(3);
        let w = World::build(&cfg);
        for b in &w.blocks {
            let k = b.personas.len();
            assert_eq!(b.assignment.len(), cfg.docs_per_name);
            for p in 0..k {
                assert!(
                    b.assignment.contains(&p),
                    "persona {p} of {} has no documents",
                    b.surname
                );
            }
        }
    }

    #[test]
    fn persona_counts_respect_range() {
        let mut cfg = presets::tiny(9);
        cfg.personas_range = (2, 5);
        cfg.names = 8;
        let w = World::build(&cfg);
        for b in &w.blocks {
            assert!((2..=5).contains(&b.personas.len()), "{}", b.personas.len());
        }
    }

    #[test]
    fn gazetteer_covers_world_entities() {
        let cfg = presets::tiny(1);
        let w = World::build(&cfg);
        let g = w.gazetteer();
        assert!(!g.is_empty());
        let persons: Vec<&str> = g
            .of_kind(EntityKind::Person)
            .map(|e| e.phrase.as_str())
            .collect();
        for b in &w.blocks {
            assert!(persons.contains(&b.surname.as_str()));
            for p in &b.personas {
                assert!(persons.contains(&p.full_name.as_str()));
            }
        }
        // Concept weights are in (0, 1].
        for e in g.of_kind(EntityKind::Concept) {
            assert!(e.weight > 0.0 && e.weight <= 1.0);
        }
    }

    #[test]
    fn assign_documents_sums_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = assign_documents(100, 7, (0.3, 0.6), &mut rng);
        assert_eq!(a.len(), 100);
        let mut counts = [0usize; 7];
        for &p in &a {
            counts[p] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 1));
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // Persona 0 dominates.
        assert!(counts[0] >= *counts[1..].iter().max().unwrap());
    }

    #[test]
    fn overlap_injection_shares_entities() {
        let pools = EntityPools::build(100);
        let mut rng = StdRng::seed_from_u64(2);
        let mut used = Vec::new();
        let pool: Vec<usize> = (0..50).collect();
        let mut personas: Vec<Persona> = (0..6)
            .map(|_| pools.make_persona("voss", &pool, &mut used, &mut rng))
            .collect();
        inject_overlap(&mut personas, 1.0, &mut rng);
        // With overlap probability 1, every later persona shares persona
        // 0's lineage org or concept with someone earlier.
        let shared_any = (1..personas.len()).any(|i| {
            (0..i).any(|j| {
                personas[i]
                    .organizations
                    .iter()
                    .any(|o| personas[j].organizations.contains(o))
            })
        });
        assert!(shared_any);
    }
}
