//! Per-name quality knobs.
//!
//! "The similarity functions … perform very differently for the different
//! names" — the paper's central observation, and the property the corpus
//! must reproduce. Each ambiguous name draws a [`NameQuality`] from the
//! preset's [`QualityRanges`]; the draw decides which feature channels are
//! informative for that name. A name with `url_presence ≈ 0.2` cripples F2;
//! a name with `full_name_prob ≈ 0.3` cripples F3/F7; low `topic_purity`
//! cripples F8–F10; and so on.

use rand::Rng;
use rand::RngExt;

/// An inclusive range `(lo, hi)` to draw a knob from.
pub type Range = (f64, f64);

fn draw(rng: &mut impl Rng, (lo, hi): Range) -> f64 {
    if hi <= lo {
        lo
    } else {
        rng.random_range(lo..hi)
    }
}

/// Ranges from which per-name quality knobs are drawn.
#[derive(Debug, Clone)]
pub struct QualityRanges {
    /// Probability a document carries a URL at all.
    pub url_presence: Range,
    /// Probability a carried URL is on the persona's home domain (vs a
    /// shared generic host that confuses F2).
    pub home_url: Range,
    /// Expected number of concept mentions per document.
    pub concept_mentions: Range,
    /// Probability a document names the persona's organization.
    pub org_prob: Range,
    /// Probability a document mentions each persona associate.
    pub associate_prob: Range,
    /// Probability the persona is referred to by full name (vs bare
    /// ambiguous surname / initial form).
    pub full_name_prob: Range,
    /// Fraction of content words drawn from the persona's topical
    /// vocabulary (the rest from the shared background Zipf pool).
    pub topic_purity: Range,
    /// Probability that a persona shares an organization or concept with
    /// another persona of the same name (hard cases).
    pub persona_overlap: Range,
    /// Probability of a spurious (unrelated) entity mention per document —
    /// extraction noise.
    pub spurious_prob: Range,
    /// Probability that a document is a near-duplicate (mirror) of an
    /// earlier page about the same persona — a common web phenomenon that
    /// makes some pairs trivially easy while adding no new information.
    pub duplicate_prob: Range,
    /// Document length in content words, drawn uniformly.
    pub doc_len: (usize, usize),
    /// Size of the per-name topical word pool that all personas of the
    /// name draw their topic vocabularies from. Smaller pools mean more
    /// shared vocabulary between same-name personas, making the TF-IDF
    /// functions (F8-F10) genuinely fallible.
    pub topic_breadth: (usize, usize),
}

impl QualityRanges {
    /// Draw one name's quality profile.
    pub fn draw(&self, rng: &mut impl Rng) -> NameQuality {
        NameQuality {
            url_presence: draw(rng, self.url_presence),
            home_url: draw(rng, self.home_url),
            concept_mentions: draw(rng, self.concept_mentions),
            org_prob: draw(rng, self.org_prob),
            associate_prob: draw(rng, self.associate_prob),
            full_name_prob: draw(rng, self.full_name_prob),
            topic_purity: draw(rng, self.topic_purity),
            persona_overlap: draw(rng, self.persona_overlap),
            spurious_prob: draw(rng, self.spurious_prob),
            duplicate_prob: draw(rng, self.duplicate_prob),
            doc_len: self.doc_len,
            topic_breadth: if self.topic_breadth.1 > self.topic_breadth.0 {
                rng.random_range(self.topic_breadth.0..=self.topic_breadth.1)
            } else {
                self.topic_breadth.0
            },
        }
    }
}

/// A concrete quality profile for one ambiguous name's block.
#[derive(Debug, Clone, Copy)]
pub struct NameQuality {
    /// See [`QualityRanges::url_presence`].
    pub url_presence: f64,
    /// See [`QualityRanges::home_url`].
    pub home_url: f64,
    /// See [`QualityRanges::concept_mentions`].
    pub concept_mentions: f64,
    /// See [`QualityRanges::org_prob`].
    pub org_prob: f64,
    /// See [`QualityRanges::associate_prob`].
    pub associate_prob: f64,
    /// See [`QualityRanges::full_name_prob`].
    pub full_name_prob: f64,
    /// See [`QualityRanges::topic_purity`].
    pub topic_purity: f64,
    /// See [`QualityRanges::persona_overlap`].
    pub persona_overlap: f64,
    /// See [`QualityRanges::spurious_prob`].
    pub spurious_prob: f64,
    /// See [`QualityRanges::duplicate_prob`].
    pub duplicate_prob: f64,
    /// See [`QualityRanges::doc_len`].
    pub doc_len: (usize, usize),
    /// See [`QualityRanges::topic_breadth`].
    pub topic_breadth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ranges() -> QualityRanges {
        QualityRanges {
            url_presence: (0.3, 0.9),
            home_url: (0.5, 0.9),
            concept_mentions: (0.5, 3.0),
            org_prob: (0.3, 0.9),
            associate_prob: (0.2, 0.7),
            full_name_prob: (0.4, 0.95),
            topic_purity: (0.2, 0.8),
            persona_overlap: (0.0, 0.4),
            spurious_prob: (0.0, 0.15),
            duplicate_prob: (0.0, 0.1),
            doc_len: (40, 120),
            topic_breadth: (80, 200),
        }
    }

    #[test]
    fn draws_stay_in_range() {
        let r = ranges();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let q = r.draw(&mut rng);
            assert!(q.url_presence >= 0.3 && q.url_presence < 0.9);
            assert!(q.concept_mentions >= 0.5 && q.concept_mentions < 3.0);
            assert!(q.topic_purity >= 0.2 && q.topic_purity < 0.8);
        }
    }

    #[test]
    fn draws_vary_across_names() {
        let r = ranges();
        let mut rng = StdRng::seed_from_u64(2);
        let a = r.draw(&mut rng);
        let b = r.draw(&mut rng);
        assert_ne!(a.url_presence, b.url_presence);
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut r = ranges();
        r.url_presence = (0.5, 0.5);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(r.draw(&mut rng).url_presence, 0.5);
    }
}
