//! Dirty corpora: the web-scale setting *before* blocking.
//!
//! Every preset so far hands the resolver documents already grouped by an
//! exact query name — the paper's datasets arrive that way. A real web
//! document collection does not: documents about all entities sit in one
//! flat pile, name mentions are misspelled or abbreviated, and block
//! membership itself must be discovered (the job of `weber-block`).
//!
//! A [`DirtyCorpus`] is such a pile, generated from the same persona world
//! as the clean presets: the per-name blocks are flattened, shuffled, and a
//! configurable fraction of documents has its surname mentions corrupted by
//! realistic misspellings (transposition, deletion, doubling, vowel swap).
//! Global ground truth — which documents refer to the same persona — is
//! retained, so blocking recall is measurable.

use rand::rngs::StdRng;
use rand::Rng;
use rand::RngExt;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use weber_extract::gazetteer::Gazetteer;
use weber_textindex::normalize_phrase;

use crate::generator::generate;
use crate::presets::CorpusConfig;
use crate::quality::QualityRanges;

/// Configuration of a dirty corpus: a clean corpus shape plus dirt knobs.
#[derive(Debug, Clone)]
pub struct DirtyConfig {
    /// The underlying world/corpus shape.
    pub base: CorpusConfig,
    /// Probability that a document's surname mentions are misspelled.
    pub variant_prob: f64,
}

/// One document of a dirty corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirtyDocument {
    /// Page URL, when the page has one.
    pub url: Option<String>,
    /// Page text (surname mentions possibly corrupted).
    pub text: String,
    /// Ground-truth global entity id (persona across all names).
    pub entity: u32,
}

/// A flat, shuffled document collection with global entity ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirtyCorpus {
    /// Human-readable preset label, e.g. `"dirty"`.
    pub label: String,
    /// Seed it was generated from.
    pub seed: u64,
    /// The documents, in shuffled (crawl) order.
    pub documents: Vec<DirtyDocument>,
    /// Number of distinct entities across the corpus.
    pub entities: u32,
    /// The dictionary a NER system would use over this corpus.
    pub gazetteer: Gazetteer,
}

impl DirtyCorpus {
    /// Number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Number of brute-force comparisons resolving without blocking would
    /// imply: `n·(n−1)/2`.
    pub fn brute_force_pairs(&self) -> u64 {
        let n = self.documents.len() as u64;
        n * (n.saturating_sub(1)) / 2
    }

    /// All ground-truth co-referent pairs `(i, j)` with `i < j`, sorted —
    /// the denominator of blocking pair-recall.
    pub fn truth_pairs(&self) -> Vec<(usize, usize)> {
        let mut by_entity: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
        for (i, d) in self.documents.iter().enumerate() {
            by_entity.entry(d.entity).or_default().push(i);
        }
        let mut pairs = Vec::new();
        for docs in by_entity.values() {
            for (x, &i) in docs.iter().enumerate() {
                for &j in &docs[x + 1..] {
                    pairs.push((i, j));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Deserialise from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<Self> {
        serde_json::from_str(json)
    }
}

/// The full dirty preset: 10 names × 120 documents flattened into one
/// 1200-document pile, a quarter of them with misspelled surnames. The
/// quality knobs sit between `www05_like` and `weps_like` with a slightly
/// higher topic-purity floor, so same-persona documents share enough
/// vocabulary for similarity-based candidate generation to be measurable.
pub fn dirty(seed: u64) -> DirtyConfig {
    DirtyConfig {
        base: CorpusConfig {
            label: "dirty".into(),
            seed,
            names: 10,
            docs_per_name: 120,
            personas_range: (2, 40),
            dominant_fraction: (0.2, 0.6),
            content_pool_size: 2000,
            zipf_exponent: 1.05,
            quality: QualityRanges {
                url_presence: (0.35, 0.9),
                home_url: (0.45, 0.9),
                concept_mentions: (0.5, 2.5),
                org_prob: (0.3, 0.85),
                associate_prob: (0.15, 0.7),
                full_name_prob: (0.3, 0.9),
                topic_purity: (0.2, 0.55),
                persona_overlap: (0.05, 0.4),
                spurious_prob: (0.05, 0.25),
                duplicate_prob: (0.0, 0.12),
                doc_len: (50, 160),
                topic_breadth: (90, 220),
            },
        },
        variant_prob: 0.25,
    }
}

/// A small dirty corpus for integration tests and CI smoke: 6 names × 40
/// documents (240 total), same dirt characteristics as [`dirty`].
pub fn dirty_small(seed: u64) -> DirtyConfig {
    let mut config = dirty(seed);
    config.base.label = "dirty-small".into();
    config.base.names = 6;
    config.base.docs_per_name = 40;
    config.base.personas_range = (2, 12);
    config
}

/// Generate a dirty corpus: build the clean per-name dataset, flatten it,
/// corrupt surname mentions, and shuffle. Deterministic in
/// `config.base.seed`.
///
/// ```
/// use weber_corpus::dirty::{dirty_small, generate_dirty};
///
/// let corpus = generate_dirty(&dirty_small(7));
/// assert_eq!(corpus.len(), 240);
/// assert!(corpus.entities >= 12); // ≥ 2 personas over 6 names
/// assert!(!corpus.truth_pairs().is_empty());
/// ```
pub fn generate_dirty(config: &DirtyConfig) -> DirtyCorpus {
    let dataset = generate(&config.base);
    let mut rng = StdRng::seed_from_u64(config.base.seed ^ 0xD1271C0D);
    let mut documents = Vec::with_capacity(dataset.document_count());
    let mut next_entity = 0u32;
    for block in &dataset.blocks {
        // Dense global entity ids for this block's personas.
        let max_label = block.truth_labels.iter().copied().max().unwrap_or(0);
        let base = next_entity;
        next_entity += max_label + 1;
        let surname = normalize_phrase(&block.query_name);
        for (doc, &label) in block.documents.iter().zip(&block.truth_labels) {
            let text = if rng.random_bool(config.variant_prob.clamp(0.0, 1.0)) {
                corrupt_mentions(&doc.text, &surname, &mut rng)
            } else {
                doc.text.clone()
            };
            documents.push(DirtyDocument {
                url: doc.url.clone(),
                text,
                entity: base + label,
            });
        }
    }
    use rand::seq::SliceRandom;
    documents.shuffle(&mut rng);
    DirtyCorpus {
        label: config.base.label.clone(),
        seed: config.base.seed,
        documents,
        entities: next_entity,
        gazetteer: dataset.gazetteer,
    }
}

/// Replace every whole-word occurrence of `surname` in `text` with one
/// misspelled variant (all occurrences get the same variant — a page is
/// internally consistent about how it spells the name).
fn corrupt_mentions(text: &str, surname: &str, rng: &mut StdRng) -> String {
    let variant = misspell(surname, rng);
    if variant == surname {
        return text.to_string();
    }
    // Whole-word replace: a match must not be flanked by alphanumerics
    // (so "mark" never fires inside "marketing"-like pseudo-words).
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len() + 8);
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(surname) {
        let start = from + pos;
        let end = start + surname.len();
        let left_ok = start == 0 || !(bytes[start - 1] as char).is_alphanumeric();
        let right_ok = end == text.len() || !(bytes[end] as char).is_alphanumeric();
        out.push_str(&text[from..start]);
        if left_ok && right_ok {
            out.push_str(&variant);
        } else {
            out.push_str(surname);
        }
        from = end;
    }
    out.push_str(&text[from..]);
    out
}

/// One deterministic misspelling of an ASCII lowercase name: transpose two
/// adjacent letters, drop a letter, double a letter, or swap a vowel.
/// Names shorter than three characters are returned unchanged (corrupting
/// "ng" would leave nothing to recognise).
pub fn misspell(name: &str, rng: &mut impl Rng) -> String {
    let chars: Vec<char> = name.chars().collect();
    if chars.len() < 3 {
        return name.to_string();
    }
    const VOWELS: &[char] = &['a', 'e', 'i', 'o', 'u'];
    let mut out = chars.clone();
    match rng.random_range(0..4u8) {
        0 => {
            // Transpose two adjacent interior letters.
            let i = rng.random_range(0..out.len() - 1);
            out.swap(i, i + 1);
        }
        1 => {
            // Drop one letter (keep the first — the initial survives
            // most real typos).
            let i = rng.random_range(1..out.len());
            out.remove(i);
        }
        2 => {
            // Double one letter.
            let i = rng.random_range(0..out.len());
            let c = out[i];
            out.insert(i, c);
        }
        _ => {
            // Replace the first vowel with a different one.
            if let Some(i) = out.iter().position(|c| VOWELS.contains(c)) {
                let at = VOWELS.iter().position(|&v| v == out[i]).unwrap_or(0);
                out[i] = VOWELS[(at + 1 + rng.random_range(0..VOWELS.len() - 1)) % VOWELS.len()];
            } else {
                let i = rng.random_range(0..out.len() - 1);
                out.swap(i, i + 1);
            }
        }
    }
    let candidate: String = out.into_iter().collect();
    if candidate == name {
        // Rare no-op (e.g. transposing a doubled letter): force a doubling.
        let mut forced: Vec<char> = name.chars().collect();
        let c = forced[0];
        forced.insert(0, c);
        forced.into_iter().collect()
    } else {
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = dirty_small(11);
        let a = generate_dirty(&cfg);
        let b = generate_dirty(&cfg);
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.entities, b.entities);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_dirty(&dirty_small(1));
        let b = generate_dirty(&dirty_small(2));
        assert_ne!(a.documents, b.documents);
    }

    #[test]
    fn shapes_match_config() {
        let cfg = dirty_small(5);
        let c = generate_dirty(&cfg);
        assert_eq!(c.len(), cfg.base.names * cfg.base.docs_per_name);
        assert_eq!(c.label, "dirty-small");
        // Entities are dense 0..entities and all referenced.
        let mut seen = vec![false; c.entities as usize];
        for d in &c.documents {
            seen[d.entity as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every entity id must be used");
    }

    #[test]
    fn truth_pairs_are_within_entities() {
        let c = generate_dirty(&dirty_small(3));
        let pairs = c.truth_pairs();
        assert!(!pairs.is_empty());
        for (i, j) in pairs {
            assert!(i < j);
            assert_eq!(c.documents[i].entity, c.documents[j].entity);
        }
    }

    #[test]
    fn variant_prob_one_corrupts_most_documents() {
        let mut cfg = dirty_small(9);
        cfg.variant_prob = 1.0;
        let dirty = generate_dirty(&cfg);
        cfg.variant_prob = 0.0;
        let clean = generate_dirty(&cfg);
        let changed = dirty
            .documents
            .iter()
            .zip(&clean.documents)
            .filter(|(d, c)| d.text != c.text)
            .count();
        // Every document mentions its surname at least once, so with
        // variant_prob = 1 the overwhelming majority of texts change
        // (short surnames like "ng" are left alone by design).
        assert!(
            changed * 10 >= clean.len() * 7,
            "only {changed}/{} documents corrupted",
            clean.len()
        );
        // Clean generation with prob 0 matches the underlying dataset order
        // modulo the shuffle: same multiset of texts as the base blocks.
        let base = generate(&cfg.base);
        let mut base_texts: Vec<&str> = base
            .blocks
            .iter()
            .flat_map(|b| b.documents.iter().map(|d| d.text.as_str()))
            .collect();
        let mut clean_texts: Vec<&str> = clean.documents.iter().map(|d| d.text.as_str()).collect();
        base_texts.sort_unstable();
        clean_texts.sort_unstable();
        assert_eq!(base_texts, clean_texts);
    }

    #[test]
    fn misspell_changes_long_names_only() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let v = misspell("cohen", &mut rng);
            assert_ne!(v, "cohen");
            assert!(!v.is_empty());
        }
        assert_eq!(misspell("ng", &mut rng), "ng");
    }

    #[test]
    fn corrupt_mentions_is_whole_word() {
        let mut rng = StdRng::seed_from_u64(8);
        let out = corrupt_mentions("mark marketing mark.", "mark", &mut rng);
        assert!(
            out.contains("marketing"),
            "interior match must be preserved: {out}"
        );
        assert!(
            !out.starts_with("mark "),
            "leading mention corrupted: {out}"
        );
    }

    #[test]
    fn json_roundtrip() {
        let c = generate_dirty(&dirty_small(2));
        let json = c.to_json().unwrap();
        let back = DirtyCorpus::from_json(&json).unwrap();
        assert_eq!(back.documents, c.documents);
        assert_eq!(back.entities, c.entities);
        assert_eq!(back.label, c.label);
    }
}
