//! Corpus configurations and the dataset presets used by the experiments.

use crate::quality::QualityRanges;

/// Full configuration of a synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Human-readable label carried into the dataset.
    pub label: String,
    /// Master seed; everything is deterministic given it.
    pub seed: u64,
    /// Number of ambiguous names (blocks).
    pub names: usize,
    /// Documents per name.
    pub docs_per_name: usize,
    /// Per-name persona count, drawn log-uniformly from this inclusive
    /// range (the WWW'05 dataset "varies from 2 to 61" clusters per name).
    pub personas_range: (usize, usize),
    /// Range for the dominant persona's share of the spare documents.
    pub dominant_fraction: (f64, f64),
    /// Size of the background content-word pool.
    pub content_pool_size: usize,
    /// Zipf exponent of the background word distribution.
    pub zipf_exponent: f64,
    /// Per-name quality knob ranges.
    pub quality: QualityRanges,
}

/// A WWW'05-like corpus: 12 names × 100 documents, 2–60 entities per name,
/// moderately informative features. Mirrors the Bekkerman–McCallum dataset
/// the paper evaluates first (Fig. 2, Tables II–III).
pub fn www05_like(seed: u64) -> CorpusConfig {
    CorpusConfig {
        label: "www05-like".into(),
        seed,
        names: 12,
        docs_per_name: 100,
        personas_range: (2, 60),
        dominant_fraction: (0.25, 0.7),
        content_pool_size: 2000,
        zipf_exponent: 1.05,
        quality: QualityRanges {
            url_presence: (0.35, 0.95),
            home_url: (0.45, 0.9),
            concept_mentions: (0.3, 2.5),
            org_prob: (0.25, 0.85),
            associate_prob: (0.15, 0.7),
            full_name_prob: (0.3, 0.9),
            topic_purity: (0.12, 0.5),
            persona_overlap: (0.05, 0.45),
            spurious_prob: (0.05, 0.25),
            duplicate_prob: (0.0, 0.12),
            doc_len: (50, 160),
            topic_breadth: (90, 220),
        },
    }
}

/// A WePS-2-like corpus: 10 names × 150 documents. Harder than WWW'05, as
/// in the paper (its Fp drops from ≈0.88 to ≈0.79): more personas sharing
/// features, poorer URLs, more surname-only pages, muddier topics.
pub fn weps_like(seed: u64) -> CorpusConfig {
    CorpusConfig {
        label: "weps-like".into(),
        seed,
        names: 10,
        docs_per_name: 150,
        personas_range: (6, 45),
        dominant_fraction: (0.15, 0.45),
        content_pool_size: 2500,
        zipf_exponent: 1.0,
        quality: QualityRanges {
            url_presence: (0.25, 0.8),
            home_url: (0.3, 0.75),
            concept_mentions: (0.2, 2.0),
            org_prob: (0.2, 0.75),
            associate_prob: (0.1, 0.6),
            full_name_prob: (0.25, 0.8),
            topic_purity: (0.1, 0.45),
            persona_overlap: (0.1, 0.5),
            spurious_prob: (0.05, 0.3),
            duplicate_prob: (0.0, 0.18),
            doc_len: (40, 140),
            topic_breadth: (50, 130),
        },
    }
}

/// A small corpus for integration/shape tests: 4 names x 60 documents —
/// large enough blocks that 10–15% supervision yields a meaningful number
/// of training pairs (the regime the paper's technique is designed for),
/// while staying fast.
pub fn small(seed: u64) -> CorpusConfig {
    CorpusConfig {
        label: "small".into(),
        seed,
        names: 4,
        docs_per_name: 60,
        personas_range: (3, 12),
        dominant_fraction: (0.25, 0.6),
        content_pool_size: 1200,
        zipf_exponent: 1.0,
        quality: QualityRanges {
            url_presence: (0.35, 0.9),
            home_url: (0.45, 0.9),
            concept_mentions: (0.3, 2.5),
            org_prob: (0.25, 0.85),
            associate_prob: (0.15, 0.7),
            full_name_prob: (0.3, 0.9),
            topic_purity: (0.12, 0.5),
            persona_overlap: (0.05, 0.45),
            spurious_prob: (0.05, 0.25),
            duplicate_prob: (0.0, 0.1),
            doc_len: (40, 120),
            topic_breadth: (80, 180),
        },
    }
}

/// A `small`-shaped corpus tuned so unsupervised merging over-reaches:
/// personas share many features (high overlap, muddy topics, few URLs),
/// which pushes the trained resolver towards lumping distinct personas
/// together. That is exactly the regime where external knowledge helps,
/// so this is the preset behind the entity layer's constraint
/// experiments: seeded cannot-link / one-to-one ground truth (see
/// [`crate::constraints`]) measurably improves Fp here, where on the
/// cleaner presets it has little to correct.
pub fn constrained_small(seed: u64) -> CorpusConfig {
    CorpusConfig {
        label: "constrained-small".into(),
        seed,
        names: 4,
        docs_per_name: 48,
        personas_range: (3, 8),
        dominant_fraction: (0.25, 0.55),
        content_pool_size: 900,
        zipf_exponent: 1.0,
        quality: QualityRanges {
            url_presence: (0.1, 0.4),
            home_url: (0.2, 0.5),
            concept_mentions: (0.2, 1.2),
            org_prob: (0.15, 0.5),
            associate_prob: (0.1, 0.4),
            full_name_prob: (0.2, 0.6),
            topic_purity: (0.05, 0.2),
            persona_overlap: (0.35, 0.7),
            spurious_prob: (0.15, 0.35),
            duplicate_prob: (0.0, 0.1),
            doc_len: (40, 110),
            topic_breadth: (60, 140),
        },
    }
}

/// A tiny corpus for unit tests and doc examples: 3 names × 24 documents,
/// few personas, fast to generate and resolve.
pub fn tiny(seed: u64) -> CorpusConfig {
    CorpusConfig {
        label: "tiny".into(),
        seed,
        names: 3,
        docs_per_name: 24,
        personas_range: (2, 5),
        dominant_fraction: (0.3, 0.6),
        content_pool_size: 400,
        zipf_exponent: 1.0,
        quality: QualityRanges {
            url_presence: (0.6, 0.9),
            home_url: (0.6, 0.9),
            concept_mentions: (1.0, 3.0),
            org_prob: (0.5, 0.9),
            associate_prob: (0.3, 0.8),
            full_name_prob: (0.6, 0.95),
            topic_purity: (0.4, 0.8),
            persona_overlap: (0.0, 0.2),
            spurious_prob: (0.0, 0.1),
            duplicate_prob: (0.0, 0.05),
            doc_len: (30, 80),
            topic_breadth: (60, 150),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_shapes() {
        let w = www05_like(0);
        assert_eq!(w.names, 12);
        assert_eq!(w.docs_per_name, 100);
        assert_eq!(w.personas_range, (2, 60));
        let p = weps_like(0);
        assert_eq!(p.names, 10);
        assert_eq!(p.docs_per_name, 150);
    }

    #[test]
    fn weps_is_harder_than_www05() {
        let w = www05_like(0).quality;
        let p = weps_like(0).quality;
        assert!(p.url_presence.1 <= w.url_presence.1);
        assert!(p.topic_purity.1 <= w.topic_purity.1);
        assert!(p.topic_breadth.1 <= w.topic_breadth.1);
        assert!(p.persona_overlap.1 >= w.persona_overlap.1);
        assert!(p.spurious_prob.1 >= w.spurious_prob.1);
    }

    #[test]
    fn constrained_small_is_muddier_than_small() {
        let s = small(0).quality;
        let c = constrained_small(0).quality;
        assert!(c.persona_overlap.0 > s.persona_overlap.0);
        assert!(c.topic_purity.1 < s.topic_purity.1);
        assert!(c.url_presence.1 < s.url_presence.1);
    }

    #[test]
    fn tiny_is_small() {
        let t = tiny(0);
        assert!(t.names * t.docs_per_name < 100);
    }
}
