//! Corpus summary statistics.
//!
//! Shared by the CLI's `stats` command and the `dataset_io` example, and
//! used in tests to verify that the presets really order by difficulty
//! (e.g. the WePS-like corpus must have poorer URL coverage than the
//! WWW'05-like one).

use crate::dataset::{Dataset, NameBlock};

/// Statistics of one block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStats {
    /// The ambiguous name.
    pub query_name: String,
    /// Number of documents.
    pub documents: usize,
    /// Number of ground-truth entities.
    pub entities: usize,
    /// Size of the largest entity's document set.
    pub dominant_size: usize,
    /// Fraction of documents carrying a URL.
    pub url_rate: f64,
    /// Minimum / mean / maximum document length in whitespace tokens.
    pub doc_len: (usize, f64, usize),
}

impl BlockStats {
    /// Compute statistics for one block.
    pub fn compute(block: &NameBlock) -> Self {
        let n = block.len();
        let truth = block.truth();
        let lens: Vec<usize> = block
            .documents
            .iter()
            .map(|d| d.text.split_whitespace().count())
            .collect();
        let with_url = block.documents.iter().filter(|d| d.url.is_some()).count();
        let mean_len = if n == 0 {
            0.0
        } else {
            lens.iter().sum::<usize>() as f64 / n as f64
        };
        Self {
            query_name: block.query_name.clone(),
            documents: n,
            entities: truth.cluster_count(),
            dominant_size: truth.cluster_sizes().into_iter().max().unwrap_or(0),
            url_rate: if n == 0 {
                0.0
            } else {
                with_url as f64 / n as f64
            },
            doc_len: (
                lens.iter().copied().min().unwrap_or(0),
                mean_len,
                lens.iter().copied().max().unwrap_or(0),
            ),
        }
    }
}

/// Statistics of a whole dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    /// Dataset label.
    pub label: String,
    /// Per-block statistics, in dataset order.
    pub blocks: Vec<BlockStats>,
}

impl DatasetStats {
    /// Compute statistics for every block.
    pub fn compute(dataset: &Dataset) -> Self {
        Self {
            label: dataset.label.clone(),
            blocks: dataset.blocks.iter().map(BlockStats::compute).collect(),
        }
    }

    /// Total documents.
    pub fn document_count(&self) -> usize {
        self.blocks.iter().map(|b| b.documents).sum()
    }

    /// Mean per-block entity count.
    pub fn mean_entities(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(|b| b.entities as f64).sum::<f64>() / self.blocks.len() as f64
    }

    /// Mean URL coverage across blocks.
    pub fn mean_url_rate(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(|b| b.url_rate).sum::<f64>() / self.blocks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, presets};

    #[test]
    fn block_stats_hand_computed() {
        use crate::dataset::GeneratedDocument;
        let block = NameBlock {
            query_name: "cohen".into(),
            documents: vec![
                GeneratedDocument {
                    url: Some("http://x.example.org/a".into()),
                    text: "one two three".into(),
                },
                GeneratedDocument {
                    url: None,
                    text: "four five".into(),
                },
            ],
            truth_labels: vec![0, 0],
        };
        let s = BlockStats::compute(&block);
        assert_eq!(s.documents, 2);
        assert_eq!(s.entities, 1);
        assert_eq!(s.dominant_size, 2);
        assert!((s.url_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.doc_len.0, 2);
        assert_eq!(s.doc_len.2, 3);
        assert!((s.doc_len.1 - 2.5).abs() < 1e-12);
    }

    #[test]
    fn dataset_stats_aggregate() {
        let d = generate(&presets::tiny(9));
        let s = DatasetStats::compute(&d);
        assert_eq!(s.label, "tiny");
        assert_eq!(s.document_count(), d.document_count());
        assert!(s.mean_entities() >= 1.0);
        assert!((0.0..=1.0).contains(&s.mean_url_rate()));
    }

    #[test]
    fn weps_preset_is_measurably_harder_than_www05() {
        // Average over a few seeds: the WePS-like corpus must have poorer
        // URL coverage and more entities per block (smaller dominant
        // clusters relative to block size).
        let mut w_url = 0.0;
        let mut p_url = 0.0;
        for seed in [1u64, 2, 3] {
            w_url += DatasetStats::compute(&generate(&presets::www05_like(seed))).mean_url_rate();
            p_url += DatasetStats::compute(&generate(&presets::weps_like(seed))).mean_url_rate();
        }
        assert!(
            p_url < w_url,
            "weps url coverage {p_url:.3} should be below www05 {w_url:.3}"
        );
    }

    #[test]
    fn empty_dataset_stats() {
        let d = Dataset {
            label: "empty".into(),
            seed: 0,
            blocks: vec![],
            gazetteer: weber_extract::gazetteer::Gazetteer::new(),
        };
        let s = DatasetStats::compute(&d);
        assert_eq!(s.document_count(), 0);
        assert_eq!(s.mean_entities(), 0.0);
    }
}
