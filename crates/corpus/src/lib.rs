#![warn(missing_docs)]

//! # weber-corpus
//!
//! A persona-grounded synthetic web-document generator standing in for the
//! paper's two datasets (the WWW'05 crawl of Bekkerman & McCallum and the
//! WePS-2 test collection), which are no longer distributable.
//!
//! The generator builds a *world*: for each ambiguous surname a set of
//! personas (real people), each with an affiliation, concepts, associates,
//! a home web domain and a topical vocabulary. Documents about a persona
//! sample from that profile under per-name *quality knobs* (URL presence,
//! concept richness, name ambiguity, topic purity, …), so that — exactly as
//! in the paper's data — every similarity function works well for some
//! names and poorly for others, and no single function dominates.
//!
//! Ground truth (which documents refer to which persona) is retained, which
//! is what makes training samples and evaluation possible.
//!
//! Presets: [`presets::www05_like`] (12 names × ~100 docs, 2–60 entities
//! per name) and [`presets::weps_like`] (10 names × ~150 docs, harder:
//! more entity overlap, poorer features). [`presets::constrained_small`]
//! deliberately over-merges, and pairs with the [`constraints`] module's
//! ground-truth cannot-link / one-to-one derivations to measure how much
//! the entity layer's constraint enforcement recovers.
//!
//! The [`dirty`] module goes one step earlier than both: it flattens a
//! generated world into a single shuffled document pile with misspelled
//! name mentions and *global* entity ground truth — the input of the
//! corpus-scale blocking tier (`weber-block`), where block membership
//! itself must be discovered.

pub mod constraints;
pub mod dataset;
pub mod dirty;
pub mod generator;
pub mod persona;
pub mod presets;
pub mod quality;
pub mod stats;
pub mod vocab;
pub mod world;

pub use constraints::{cannot_link_truth, one_to_one_truth};
pub use dataset::{Dataset, GeneratedDocument, NameBlock};
pub use dirty::{dirty, dirty_small, generate_dirty, DirtyConfig, DirtyCorpus, DirtyDocument};
pub use generator::generate;
pub use persona::Persona;
pub use presets::{constrained_small, small, tiny, weps_like, www05_like, CorpusConfig};
pub use quality::{NameQuality, QualityRanges};
pub use stats::{BlockStats, DatasetStats};
pub use world::World;
