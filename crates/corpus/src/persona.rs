//! Personas: the real-world people behind an ambiguous name.

use rand::seq::IndexedRandom;
use rand::Rng;
use rand::RngExt;

use crate::vocab;

/// One real person sharing an ambiguous surname with others.
#[derive(Debug, Clone)]
pub struct Persona {
    /// Full name, lowercase: `"william cohen"`.
    pub full_name: String,
    /// First-initial variant: `"w cohen"`.
    pub initial_name: String,
    /// The shared ambiguous surname: `"cohen"`.
    pub surname: String,
    /// Affiliated organizations (1–2).
    pub organizations: Vec<String>,
    /// Topical concepts the persona is associated with (2–5).
    pub concepts: Vec<String>,
    /// Frequently co-mentioned other people (2–4 full names).
    pub associates: Vec<String>,
    /// Home location.
    pub location: String,
    /// Home web domain, e.g. `"cs.apexuniversity.edu"`.
    pub domain: String,
    /// Persona-specific topical vocabulary (indices into the global content
    /// word pool).
    pub topic_words: Vec<usize>,
    /// Role noun used in templates ("professor", "artist", …).
    pub role: String,
}

/// Shared pools a world draws persona attributes from.
#[derive(Debug, Clone)]
pub struct EntityPools {
    /// Organization names.
    pub organizations: Vec<String>,
    /// Concept phrases.
    pub concepts: Vec<String>,
    /// Associate person full names.
    pub associates: Vec<String>,
    /// Size of the global content-word pool.
    pub content_pool_size: usize,
}

impl EntityPools {
    /// Build deterministic pools sized for a corpus.
    pub fn build(content_pool_size: usize) -> Self {
        let mut organizations = Vec::new();
        for stem in vocab::ORG_STEMS {
            for suffix in vocab::ORG_SUFFIXES {
                organizations.push(format!("{stem} {suffix}"));
            }
        }
        // Concept phrases: pairs of pseudo-words namespaced away from the
        // content pool, e.g. "brousta neplio" — they read like topic names
        // and never collide with background words.
        let concept_words = vocab::word_pool(400, 77);
        let mut concepts = Vec::with_capacity(200);
        for i in 0..200 {
            concepts.push(format!(
                "{} {}",
                concept_words[2 * i],
                concept_words[2 * i + 1]
            ));
        }
        // Associates: unambiguous first+last pseudo-person names.
        let last_names = vocab::word_pool(300, 99);
        let mut associates = Vec::with_capacity(300);
        for (i, last) in last_names.iter().enumerate() {
            let first = vocab::FIRST_NAMES[i % vocab::FIRST_NAMES.len()];
            associates.push(format!("{first} {last}"));
        }
        Self {
            organizations,
            concepts,
            associates,
            content_pool_size,
        }
    }

    /// Create a persona for `surname` using `rng`.
    ///
    /// `used_first_names` prevents two personas of one block sharing a full
    /// name (they would be genuinely indistinguishable). `topic_pool` is
    /// the per-name pool of content-word indices the persona's topical
    /// vocabulary is drawn from; same-name personas share this pool, so
    /// their word distributions overlap realistically.
    pub fn make_persona(
        &self,
        surname: &str,
        topic_pool: &[usize],
        used_first_names: &mut Vec<String>,
        rng: &mut impl Rng,
    ) -> Persona {
        let first = vocab::FIRST_NAMES
            .iter()
            .map(|s| s.to_string())
            .filter(|f| !used_first_names.contains(f))
            .nth(
                rng.random_range(
                    0..vocab::FIRST_NAMES
                        .len()
                        .saturating_sub(used_first_names.len())
                        .max(1),
                ),
            )
            .unwrap_or_else(|| format!("alt{}", used_first_names.len()));
        used_first_names.push(first.clone());

        let n_orgs = rng.random_range(1..=2);
        let organizations: Vec<String> = self.organizations.sample(rng, n_orgs).cloned().collect();
        let n_concepts = rng.random_range(2..=5);
        let concepts: Vec<String> = self.concepts.sample(rng, n_concepts).cloned().collect();
        let n_assoc = rng.random_range(2..=4);
        let associates: Vec<String> = self.associates.sample(rng, n_assoc).cloned().collect();
        let location = vocab::LOCATIONS
            .choose(rng)
            .expect("locations pool non-empty")
            .to_string();
        let role = vocab::ROLES
            .choose(rng)
            .expect("roles pool non-empty")
            .to_string();
        // Home domain derived from the primary organization, through the
        // workspace-shared slug helper (one normalization home, not a
        // parallel char-filter copy).
        let org_slug = weber_textindex::slug(&organizations[0]);
        let tld = ["edu", "org", "com", "net"]
            .choose(rng)
            .expect("tlds non-empty");
        let domain = format!("{}.{}", org_slug, tld);
        // Topical vocabulary: a random subset of the per-name topic pool
        // (falling back to the whole content pool when none is given).
        let n_topic = rng.random_range(30..=60);
        let mut topic_words: Vec<usize> = if topic_pool.is_empty() {
            (0..n_topic.min(self.content_pool_size))
                .map(|_| rng.random_range(0..self.content_pool_size))
                .collect()
        } else {
            (0..n_topic)
                .map(|_| topic_pool[rng.random_range(0..topic_pool.len())])
                .collect()
        };
        topic_words.sort_unstable();
        topic_words.dedup();

        Persona {
            full_name: format!("{first} {surname}"),
            initial_name: format!(
                "{} {surname}",
                first.chars().next().expect("non-empty first name")
            ),
            surname: surname.to_string(),
            organizations,
            concepts,
            associates,
            location,
            domain,
            topic_words,
            role,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pools_have_expected_sizes() {
        let p = EntityPools::build(1000);
        assert_eq!(
            p.organizations.len(),
            vocab::ORG_STEMS.len() * vocab::ORG_SUFFIXES.len()
        );
        assert_eq!(p.concepts.len(), 200);
        assert_eq!(p.associates.len(), 300);
    }

    #[test]
    fn personas_are_well_formed() {
        let pools = EntityPools::build(1000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut used = Vec::new();
        let pool: Vec<usize> = (0..120).collect();
        let p = pools.make_persona("cohen", &pool, &mut used, &mut rng);
        assert!(p.full_name.ends_with(" cohen"));
        assert_eq!(p.surname, "cohen");
        assert!(p.initial_name.len() < p.full_name.len());
        assert!((1..=2).contains(&p.organizations.len()));
        assert!((2..=5).contains(&p.concepts.len()));
        assert!((2..=4).contains(&p.associates.len()));
        assert!(p.domain.contains('.'));
        assert!(!p.topic_words.is_empty());
        assert!(p.topic_words.iter().all(|&w| w < 120));
    }

    #[test]
    fn personas_of_one_block_get_distinct_first_names() {
        let pools = EntityPools::build(1000);
        let mut rng = StdRng::seed_from_u64(6);
        let mut used = Vec::new();
        let names: Vec<String> = (0..10)
            .map(|_| {
                pools
                    .make_persona("ng", &(0..80).collect::<Vec<_>>(), &mut used, &mut rng)
                    .full_name
            })
            .collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn concept_phrases_are_two_pseudo_words() {
        let pools = EntityPools::build(10);
        for c in &pools.concepts {
            assert_eq!(c.split(' ').count(), 2);
        }
    }
}
