//! Property-based tests for the corpus generator: structural invariants
//! must hold for every seed.

use proptest::prelude::*;

use weber_corpus::{generate, presets, Dataset};

fn tiny_with(seed: u64) -> Dataset {
    generate(&presets::tiny(seed))
}

proptest! {
    // Dataset generation is comparatively slow; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn blocks_have_consistent_shapes(seed in 0u64..10_000) {
        let d = tiny_with(seed);
        prop_assert_eq!(d.blocks.len(), 3);
        for b in &d.blocks {
            prop_assert_eq!(b.documents.len(), b.truth_labels.len());
            prop_assert_eq!(b.len(), 24);
            let truth = b.truth();
            prop_assert!(truth.cluster_count() >= 1);
            prop_assert!(truth.cluster_count() <= 5);
            // Every persona owns at least one document.
            prop_assert!(truth.cluster_sizes().iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn every_document_mentions_its_query_name(seed in 0u64..10_000) {
        let d = tiny_with(seed);
        for b in &d.blocks {
            for doc in &b.documents {
                prop_assert!(
                    doc.text.to_lowercase().contains(&b.query_name),
                    "missing '{}' in: {}", b.query_name, doc.text
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic(seed in 0u64..10_000) {
        let a = tiny_with(seed);
        let b = tiny_with(seed);
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            prop_assert_eq!(&x.documents, &y.documents);
            prop_assert_eq!(&x.truth_labels, &y.truth_labels);
        }
    }

    #[test]
    fn json_roundtrip_for_any_seed(seed in 0u64..10_000) {
        let d = tiny_with(seed);
        let json = d.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        prop_assert_eq!(back.document_count(), d.document_count());
        for (x, y) in back.blocks.iter().zip(&d.blocks) {
            prop_assert_eq!(&x.documents, &y.documents);
            prop_assert_eq!(&x.truth_labels, &y.truth_labels);
        }
        prop_assert_eq!(back.gazetteer.len(), d.gazetteer.len());
    }

    #[test]
    fn urls_are_parseable_when_present(seed in 0u64..10_000) {
        let d = tiny_with(seed);
        for b in &d.blocks {
            for doc in &b.documents {
                if let Some(url) = &doc.url {
                    prop_assert!(
                        weber_extract::url::UrlFeatures::parse(url).is_some(),
                        "unparseable URL: {url}"
                    );
                }
            }
        }
    }

    #[test]
    fn gazetteer_contains_all_block_surnames(seed in 0u64..10_000) {
        let d = tiny_with(seed);
        let persons: Vec<&str> = d
            .gazetteer
            .of_kind(weber_extract::gazetteer::EntityKind::Person)
            .map(|e| e.phrase.as_str())
            .collect();
        for b in &d.blocks {
            prop_assert!(persons.contains(&b.query_name.as_str()));
        }
    }
}
