#![warn(missing_docs)]

//! # weber-obs
//!
//! A small, dependency-free metrics registry for the weber stack: atomic
//! [`Counter`]s, [`Gauge`]s and fixed-bucket latency [`Histogram`]s, held
//! by name in a [`Registry`] and read out as plain [`MetricsSnapshot`]
//! structs (or the Prometheus-flavoured text of
//! [`Registry::render_text`]).
//!
//! Design constraints, in order:
//!
//! - **Zero cost when unread.** Recording is a handful of relaxed atomic
//!   operations on pre-registered handles — no locks, no allocation, no
//!   formatting. The registry lock is taken only at registration and
//!   snapshot time, never on the hot path. Holding a handle to a metric
//!   nobody ever snapshots costs nothing but its memory.
//! - **No dependencies.** Everything is `std`. Consumers that speak JSON
//!   (the `weber serve` protocol) convert snapshots themselves.
//! - **Names are the schema.** A metric is identified by its dotted name
//!   (`stream.ingest_us`, `core.stage.layer_build_us`); [`Scope`] prepends
//!   a label segment so per-subsystem names stay consistent.
//!
//! Handles are `Arc`s: registering the same name twice returns the same
//! underlying metric, so independent call sites share one counter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, live-entry counts).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`sub`](Self::sub)).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default latency bucket upper bounds, in microseconds: 100µs to 60s in
/// roughly 1-2.5-5 steps, wide enough for both a sub-millisecond ingest
/// and a multi-second checkpoint retrain.
pub const DEFAULT_LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000, 60_000_000,
];

/// Sentinel used for the min register before the first observation.
const MIN_EMPTY: u64 = u64::MAX;

/// A fixed-bucket histogram: cumulative-style bucket counts over explicit
/// upper bounds, plus count / sum / min / max registers. Values are `u64`
/// (the stack records microseconds, but nothing here is time-specific).
///
/// Recording is lock-free: one `fetch_add` for the bucket, four more for
/// the registers (min/max via compare-exchange loops). Buckets are chosen
/// by linear scan — bound lists are short and the scan is branch-predictor
/// friendly.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds (inclusive), strictly increasing. Values above the
    /// last bound land in the implicit overflow bucket.
    bounds: Vec<u64>,
    /// One count per bound, plus the overflow bucket at the end.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A histogram over the default latency bounds.
    pub fn new() -> Self {
        Self::with_bounds(DEFAULT_LATENCY_BOUNDS_US)
    }

    /// A histogram over explicit upper bounds (must be non-empty and
    /// strictly increasing).
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(MIN_EMPTY),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record the elapsed time since `start`, in microseconds. Durations
    /// beyond `u64` microseconds (584 millennia) saturate.
    pub fn record_since(&self, start: Instant) {
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.record(us);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .bounds
                .iter()
                .map(|&b| BucketCount::Le(b))
                .chain(std::iter::once(BucketCount::Overflow))
                .zip(&self.buckets)
                .map(|(le, c)| (le, c.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A bucket's upper bound in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketCount {
    /// Values `<=` this bound (microseconds for latency histograms).
    Le(u64),
    /// Values above every explicit bound.
    Overflow,
}

impl std::fmt::Display for BucketCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BucketCount::Le(b) => write!(f, "{b}"),
            BucketCount::Overflow => write!(f, "+Inf"),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket (bound, count) pairs, non-cumulative, overflow last.
    pub buckets: Vec<(BucketCount, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from the bucket counts by
    /// linear interpolation inside the bucket holding the quantile rank.
    /// The estimate is clamped to the observed `[min, max]` range, so an
    /// overflow-bucket rank answers `max` rather than infinity. Returns 0
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0u64;
        let mut lower = 0u64;
        for &(bound, n) in &self.buckets {
            let upper = match bound {
                BucketCount::Le(b) => b,
                BucketCount::Overflow => self.max,
            };
            if n > 0 {
                let cum = seen + n;
                if rank <= cum as f64 {
                    let within = (rank - seen as f64) / n as f64;
                    let est = lower as f64 + within * (upper.saturating_sub(lower)) as f64;
                    return est.clamp(self.min as f64, self.max as f64);
                }
                seen = cum;
            }
            lower = upper;
        }
        self.max as f64
    }
}

/// A point-in-time copy of every metric in a registry, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter (name, value) pairs.
    pub counters: Vec<(String, u64)>,
    /// Gauge (name, value) pairs.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a named gauge, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Snapshot of a named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Merge another snapshot into this one (disjoint name sets expected;
    /// on a clash both entries are kept) and restore sorted order.
    pub fn merge(&mut self, other: MetricsSnapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
        self.counters.sort();
        self.gauges.sort();
        self.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// Merge another snapshot into this one with every incoming metric
    /// name prefixed by `prefix.` — how an aggregator (the shard router)
    /// folds per-backend snapshots into one report without name clashes:
    /// backend 0's `stream.ingests` becomes `shard0.stream.ingests`.
    pub fn merge_namespaced(&mut self, prefix: &str, other: MetricsSnapshot) {
        self.merge(MetricsSnapshot {
            counters: other
                .counters
                .into_iter()
                .map(|(n, v)| (format!("{prefix}.{n}"), v))
                .collect(),
            gauges: other
                .gauges
                .into_iter()
                .map(|(n, v)| (format!("{prefix}.{n}"), v))
                .collect(),
            histograms: other
                .histograms
                .into_iter()
                .map(|mut h| {
                    h.name = format!("{prefix}.{}", h.name);
                    h
                })
                .collect(),
        });
    }

    /// Render as Prometheus-flavoured plain text, one value per line,
    /// deterministic order.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!("{}_count {}\n", h.name, h.count));
            out.push_str(&format!("{}_sum {}\n", h.name, h.sum));
            out.push_str(&format!("{}_min {}\n", h.name, h.min));
            out.push_str(&format!("{}_max {}\n", h.name, h.max));
            for (le, c) in &h.buckets {
                out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {c}\n", h.name));
            }
        }
        out
    }
}

/// A named collection of metrics. Registration returns shared [`Arc`]
/// handles: asking for the same name twice hands back the same metric, so
/// the registry lock is only a registration/snapshot cost, never a
/// recording cost.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-global registry. Library code that has no natural
    /// owner for its metrics (the batch pipeline's stage timers) records
    /// here; binaries read it out at exit.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().unwrap().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.gauges
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// The histogram registered under `name` (default latency bounds),
    /// creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, DEFAULT_LATENCY_BOUNDS_US)
    }

    /// The histogram registered under `name`, creating it with `bounds` on
    /// first use (an existing histogram keeps its original bounds).
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::with_bounds(bounds))),
        )
    }

    /// A [`Scope`] that prepends `prefix.` to every metric name.
    pub fn scope(self: &Arc<Self>, prefix: impl Into<String>) -> Scope {
        Scope {
            registry: Arc::clone(self),
            prefix: prefix.into(),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .unwrap()
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap()
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap()
                .iter()
                .map(|(n, h)| h.snapshot(n))
                .collect(),
        }
    }

    /// Render every metric as Prometheus-flavoured plain text, one value
    /// per line, deterministic order (what `--metrics-file` dumps).
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A labelled view of a registry: every metric name gets `prefix.`
/// prepended, so per-subsystem (or per-stage, per-name) scopes register
/// consistently named metrics without threading string concatenation
/// through call sites.
#[derive(Debug, Clone)]
pub struct Scope {
    registry: Arc<Registry>,
    prefix: String,
}

impl Scope {
    /// The underlying registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// A child scope: `parent.child.`-prefixed names.
    pub fn scope(&self, prefix: &str) -> Scope {
        Scope {
            registry: Arc::clone(&self.registry),
            prefix: format!("{}.{prefix}", self.prefix),
        }
    }

    fn qualify(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// The counter `prefix.name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.qualify(name))
    }

    /// The gauge `prefix.name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.qualify(name))
    }

    /// The histogram `prefix.name` (default latency bounds).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.qualify(name))
    }
}

/// Time a closure and record the elapsed microseconds into a histogram
/// from the global registry under `name`. This is the batch pipeline's
/// stage-timing primitive: one global histogram per stage, zero setup for
/// callers, and the closure's result passes straight through.
pub fn time_stage<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let h = Registry::global().histogram(name);
    let start = Instant::now();
    let out = f();
    h.record_since(start);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = Gauge::new();
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        // On-boundary values land in the bucket they bound.
        h.record(10);
        h.record(100);
        h.record(1000);
        // Interior and overflow values.
        h.record(0);
        h.record(11);
        h.record(1001);
        let s = h.snapshot("t");
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 10 + 100 + 1000 + 11 + 1001);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1001);
        assert_eq!(
            s.buckets,
            vec![
                (BucketCount::Le(10), 2),   // 0, 10
                (BucketCount::Le(100), 2),  // 11, 100
                (BucketCount::Le(1000), 1), // 1000
                (BucketCount::Overflow, 1), // 1001
            ]
        );
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot("t");
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.99), 0.0);
        assert!(s.buckets.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn quantiles_interpolate_and_clamp_to_observed_range() {
        let h = Histogram::with_bounds(&[10, 100, 1000]);
        // 90 values in (10, 100], 10 in (100, 1000].
        for _ in 0..90 {
            h.record(50);
        }
        for _ in 0..10 {
            h.record(500);
        }
        let s = h.snapshot("t");
        // p50 falls in the second bucket, interpolated between 10 and 100.
        let p50 = s.quantile(0.5);
        assert!(p50 > 10.0 && p50 <= 100.0, "p50 = {p50}");
        // p99 lands in the third bucket but clamps to the observed max.
        let p99 = s.quantile(0.99);
        assert!(p99 > 100.0 && p99 <= 500.0, "p99 = {p99}");
        // Quantile 0 never goes below the smallest observation.
        assert!(s.quantile(0.0) >= s.min as f64);
        // Overflow-bucket ranks answer the observed max, not infinity.
        let h2 = Histogram::with_bounds(&[10]);
        h2.record(7_000);
        let s2 = h2.snapshot("t");
        assert_eq!(s2.quantile(0.99), 7_000.0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_bounds_are_rejected() {
        Histogram::with_bounds(&[10, 10]);
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost() {
        let registry = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    // Each thread registers by name, exercising the
                    // shared-handle path, not just a cloned Arc.
                    let c = registry.counter("hits");
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(registry.counter("hits").get(), threads * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_preserve_count_and_sum() {
        let h = Arc::new(Histogram::with_bounds(&[5, 50]));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(t * 10 + (i % 3));
                    }
                });
            }
        });
        let s = h.snapshot("t");
        assert_eq!(s.count, 4000);
        let buckets_total: u64 = s.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(buckets_total, s.count, "every record lands in a bucket");
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn scopes_qualify_names() {
        let r = Arc::new(Registry::new());
        let s = r.scope("stream");
        s.counter("ingests").add(2);
        s.scope("cache").counter("hits").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("stream.ingests"), Some(2));
        assert_eq!(snap.counter("stream.cache.hits"), Some(1));
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = Registry::new();
        r.counter("a").inc();
        r.gauge("b").set(-3);
        r.histogram("c").record(42);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), Some(1));
        assert_eq!(s.gauge("b"), Some(-3));
        assert_eq!(s.histogram("c").unwrap().count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn merge_namespaced_prefixes_every_metric() {
        let local = Registry::new();
        local.counter("route.requests").add(2);
        let backend = Registry::new();
        backend.counter("stream.ingests").add(7);
        backend.gauge("stream.queue_depth").set(1);
        backend.histogram("stream.ingest_us").record(300);
        let mut merged = local.snapshot();
        merged.merge_namespaced("shard0", backend.snapshot());
        assert_eq!(merged.counter("route.requests"), Some(2));
        assert_eq!(merged.counter("shard0.stream.ingests"), Some(7));
        assert_eq!(merged.gauge("shard0.stream.queue_depth"), Some(1));
        assert_eq!(
            merged.histogram("shard0.stream.ingest_us").unwrap().count,
            1
        );
        // The un-prefixed backend names are gone; order stays sorted.
        assert_eq!(merged.counter("stream.ingests"), None);
        assert!(merged.counters.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn render_text_is_line_per_value() {
        let r = Registry::new();
        r.counter("requests").add(3);
        r.gauge("depth").set(2);
        r.histogram_with("lat_us", &[10]).record(4);
        let text = r.render_text();
        assert!(text.contains("requests 3\n"), "{text}");
        assert!(text.contains("depth 2\n"), "{text}");
        assert!(text.contains("lat_us_count 1\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"10\"} 1\n"), "{text}");
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 0\n"), "{text}");
    }

    #[test]
    fn time_stage_records_into_the_global_registry() {
        let before = Registry::global().histogram("obs.test.stage_us").count();
        let out = time_stage("obs.test.stage_us", || 21 * 2);
        assert_eq!(out, 42);
        let after = Registry::global().histogram("obs.test.stage_us").count();
        assert_eq!(after, before + 1);
    }

    #[test]
    fn record_since_measures_microseconds() {
        let h = Histogram::new();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        h.record_since(start);
        let s = h.snapshot("t");
        assert_eq!(s.count, 1);
        assert!(s.min >= 2_000, "slept 2ms, recorded {}us", s.min);
    }
}
