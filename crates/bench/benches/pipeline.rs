//! Criterion benchmarks for the end-to-end pipeline: extraction + block
//! preparation, layer building, and full resolution of one block.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use weber_core::blocking::prepare_dataset;
use weber_core::decision::DecisionCriterion;
use weber_core::layers::build_layers;
use weber_core::resolver::{Resolver, ResolverConfig};
use weber_core::supervision::Supervision;
use weber_corpus::{generate, presets};
use weber_extract::pipeline::Extractor;
use weber_simfun::functions::{function, subset_i10, SimilarityFunction};
use weber_textindex::tfidf::TfIdf;

fn bench_extraction(c: &mut Criterion) {
    let dataset = generate(&presets::tiny(7));
    let extractor = Extractor::new(&dataset.gazetteer);
    let docs: Vec<_> = dataset.blocks[0].documents.clone();
    c.bench_function("extract_block_24_docs", |b| {
        b.iter(|| {
            docs.iter()
                .map(|d| {
                    extractor
                        .extract(black_box(&d.text), d.url.as_deref())
                        .tokens
                        .len()
                })
                .sum::<usize>()
        })
    });
}

fn bench_prepare_dataset(c: &mut Criterion) {
    let dataset = generate(&presets::tiny(7));
    c.bench_function("prepare_tiny_dataset", |b| {
        b.iter(|| {
            prepare_dataset(black_box(&dataset), TfIdf::default())
                .blocks
                .len()
        })
    });
}

fn bench_layer_build(c: &mut Criterion) {
    let prepared = prepare_dataset(&generate(&presets::tiny(7)), TfIdf::default());
    let nb = &prepared.blocks[0];
    let sup = Supervision::sample_from_truth(&nb.truth, 0.2, 1);
    let criteria = DecisionCriterion::standard_set();
    let functions: Vec<std::sync::Arc<dyn SimilarityFunction>> =
        subset_i10().into_iter().map(function).collect();
    c.bench_function("build_layers_10fn_3crit", |b| {
        b.iter(|| build_layers(black_box(&nb.block), &functions, &criteria, &sup).len())
    });
}

fn bench_full_resolution(c: &mut Criterion) {
    let prepared = prepare_dataset(&generate(&presets::tiny(7)), TfIdf::default());
    let nb = &prepared.blocks[0];
    let sup = Supervision::sample_from_truth(&nb.truth, 0.2, 1);
    let resolver = Resolver::new(ResolverConfig::accuracy_suite(subset_i10())).unwrap();
    c.bench_function("resolve_block_c10", |b| {
        b.iter(|| {
            resolver
                .resolve(black_box(&nb.block), &sup)
                .unwrap()
                .partition
                .cluster_count()
        })
    });
}

criterion_group! {
    name = benches;
    // End-to-end targets are tens of milliseconds each; keep the sweep
    // short so `cargo bench --workspace` stays minutes, not hours.
    config = Criterion::default().sample_size(20);
    targets = bench_extraction,
        bench_prepare_dataset,
        bench_layer_build,
        bench_full_resolution
}
criterion_main!(benches);
