//! Criterion benchmarks for the graph substrate: union-find closure,
//! decision-graph operations, and correlation clustering.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use weber_graph::components::connected_components;
use weber_graph::correlation::{correlation_cluster, CorrelationConfig};
use weber_graph::decision::DecisionGraph;
use weber_graph::union_find::UnionFind;
use weber_graph::weighted::WeightedGraph;

/// A deterministic pseudo-random block-structured decision graph: `n`
/// nodes in `k` ground-truth clusters, intra-cluster edge probability 0.7,
/// inter 0.02.
fn synthetic_decisions(n: usize, k: usize) -> DecisionGraph {
    let mut g = DecisionGraph::new(n);
    let mut state = 0x12345678u64;
    let mut rand01 = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..n {
        for j in i + 1..n {
            let same = i % k == j % k;
            let p = if same { 0.7 } else { 0.02 };
            if rand01() < p {
                g.add_edge(i, j);
            }
        }
    }
    g
}

fn bench_union_find(c: &mut Criterion) {
    let g = synthetic_decisions(150, 12);
    let edges: Vec<(usize, usize)> = g.edges().collect();
    c.bench_function("union_find_closure_150", |b| {
        b.iter_batched(
            || UnionFind::new(150),
            |mut uf| {
                for &(i, j) in &edges {
                    uf.union(i, j);
                }
                uf.set_count()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_connected_components(c: &mut Criterion) {
    let g = synthetic_decisions(150, 12);
    c.bench_function("connected_components_150", |b| {
        b.iter(|| connected_components(black_box(&g)).cluster_count())
    });
}

fn bench_correlation(c: &mut Criterion) {
    let truth = synthetic_decisions(100, 8);
    let scores = WeightedGraph::from_fn(100, |i, j| if truth.has_edge(i, j) { 0.85 } else { 0.12 });
    c.bench_function("correlation_cluster_100", |b| {
        b.iter(|| {
            correlation_cluster(black_box(&scores), CorrelationConfig::default()).cluster_count()
        })
    });
}

fn bench_decision_graph_ops(c: &mut Criterion) {
    c.bench_function("decision_graph_build_150", |b| {
        b.iter(|| synthetic_decisions(black_box(150), 12).edge_count())
    });
}

criterion_group!(
    benches,
    bench_union_find,
    bench_connected_components,
    bench_correlation,
    bench_decision_graph_ops
);
criterion_main!(benches);
