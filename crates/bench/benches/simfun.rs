//! Criterion benchmarks for the similarity-function suite: per-function
//! all-pairs throughput over a prepared block, and the string measures.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use weber_core::blocking::prepare_dataset;
use weber_corpus::{generate, presets};
use weber_simfun::functions::{function, FunctionId};
use weber_simfun::{jaro_winkler, levenshtein, ngram_dice};
use weber_textindex::tfidf::TfIdf;

fn bench_functions(c: &mut Criterion) {
    let prepared = prepare_dataset(&generate(&presets::tiny(42)), TfIdf::default());
    let block = &prepared.blocks[0].block;
    let mut g = c.benchmark_group("similarity_functions");
    g.throughput(criterion::Throughput::Elements(
        (block.len() * (block.len() - 1) / 2) as u64,
    ));
    for id in FunctionId::ALL {
        let f = function(id);
        g.bench_function(id.label(), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..block.len() {
                    for j in i + 1..block.len() {
                        acc += f.compare(black_box(block), i, j);
                    }
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_string_measures(c: &mut Criterion) {
    let pairs = [
        ("william cohen", "w cohen"),
        ("andrew mccallum", "andrew ng"),
        ("cs.cmu.edu/~wcohen", "cs.cmu.edu/afs/cohen"),
        ("leslie kaelbling", "leslie pack kaelbling"),
    ];
    let mut g = c.benchmark_group("string_similarity");
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|(a, x)| jaro_winkler(black_box(a), black_box(x)))
                .sum::<f64>()
        })
    });
    g.bench_function("levenshtein", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|(a, x)| levenshtein(black_box(a), black_box(x)))
                .sum::<usize>()
        })
    });
    g.bench_function("ngram_dice", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|(a, x)| ngram_dice(black_box(a), black_box(x), 2))
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_functions, bench_string_measures
}
criterion_main!(benches);
