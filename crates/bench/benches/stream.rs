//! Criterion benchmarks for the streaming resolver's hot paths.
//!
//! An `ingest` scores the arriving document against every existing member
//! of its name's block with the trained decision model — that scan is the
//! per-arrival critical path and scales linearly with block size, so it is
//! benchmarked at block sizes 10 / 100 / 1000 with pair-decision
//! throughput reported. Seeding (full best-graph training on a labelled
//! batch) is benchmarked once at a realistic block size; it is the
//! amortised checkpoint cost, not the per-arrival cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use weber_core::resolver::{Resolver, ResolverConfig};
use weber_core::supervision::Supervision;
use weber_core::TrainedModel;
use weber_corpus::{generate, presets};
use weber_extract::features::PageFeatures;
use weber_extract::pipeline::Extractor;
use weber_simfun::block::{PreparedBlock, WordVectorScheme};
use weber_stream::{SeedDocument, StreamConfig, StreamResolver};

/// A prepared block of `n` documents (cycling a generated corpus block)
/// plus a model trained on the labelled originals — the state an ingest
/// scores against.
fn scoring_fixture(n: usize) -> (PreparedBlock, TrainedModel) {
    let dataset = generate(&presets::tiny(3));
    let extractor = Extractor::new(&dataset.gazetteer);
    let source = &dataset.blocks[0];
    let features: Vec<PageFeatures> = (0..n)
        .map(|i| {
            let d = &source.documents[i % source.documents.len()];
            extractor.extract(&d.text, d.url.as_deref())
        })
        .collect();
    let block = PreparedBlock::with_scheme(
        source.query_name.clone(),
        features,
        WordVectorScheme::default(),
    );
    let truth = source.truth();
    let labelled = source.documents.len().min(n);
    let sup = Supervision::new((0..labelled).map(|i| (i, truth.label_of(i))).collect());
    let model = Resolver::new(ResolverConfig::default())
        .unwrap()
        .train(&block, &sup)
        .unwrap();
    (block, model)
}

fn bench_ingest_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_ingest_scan");
    for n in [10usize, 100, 1000] {
        let (block, model) = scoring_fixture(n);
        let doc = block.len() - 1;
        group.throughput(Throughput::Elements(doc as u64));
        group.bench_function(&format!("block_{n}"), |b| {
            b.iter(|| {
                (0..doc)
                    .filter(|&j| model.decide(black_box(&block), doc, j))
                    .count()
            })
        });
    }
    group.finish();
}

fn bench_seed(c: &mut Criterion) {
    let dataset = generate(&presets::tiny(3));
    let source = &dataset.blocks[0];
    let truth = source.truth();
    let docs: Vec<SeedDocument> = source
        .documents
        .iter()
        .zip(0..)
        .map(|(d, i)| SeedDocument {
            text: d.text.clone(),
            url: d.url.clone(),
            label: truth.label_of(i),
        })
        .collect();
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();
    let mut group = c.benchmark_group("stream_seed");
    group.sample_size(10);
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.bench_function(&format!("block_{}", docs.len()), |b| {
        // seed() replaces the name's state wholesale, so repeated calls
        // measure the same work every iteration.
        b.iter(|| stream.seed(&source.query_name, black_box(&docs)).unwrap())
    });
    group.finish();
}

fn bench_ingest_200(c: &mut Criterion) {
    // End-to-end streaming ingest: seed a daemon-shaped resolver with one
    // labelled batch and grow the name's block to 200 documents, one
    // arrival at a time — checkpoint retrains, cached similarity rows,
    // deferred vector syncs and all. This is the scenario the BENCH_stream
    // acceptance numbers are recorded on.
    let dataset = generate(&presets::tiny(3));
    let source = &dataset.blocks[0];
    let truth = source.truth();
    let docs: Vec<SeedDocument> = source
        .documents
        .iter()
        .zip(0..)
        .map(|(d, i)| SeedDocument {
            text: d.text.clone(),
            url: d.url.clone(),
            label: truth.label_of(i),
        })
        .collect();
    let total = 200usize;
    let stream = StreamResolver::new(StreamConfig::default(), &dataset.gazetteer).unwrap();
    let mut group = c.benchmark_group("stream_ingest_200");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("tiny_seed", |b| {
        b.iter(|| {
            // Re-seeding resets the name's state, so each iteration grows
            // the block from scratch.
            stream.seed(&source.query_name, black_box(&docs)).unwrap();
            for i in docs.len()..total {
                let d = &source.documents[i % source.documents.len()];
                stream
                    .ingest(&source.query_name, &d.text, d.url.as_deref())
                    .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ingest_scan, bench_seed, bench_ingest_200
}
criterion_main!(benches);
