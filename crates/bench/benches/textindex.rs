//! Criterion benchmarks for the text-indexing substrate: tokenisation,
//! stemming, TF-IDF index construction and sparse-vector similarity.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use weber_corpus::{generate, presets};
use weber_textindex::{porter_stem, tokenize, Analyzer, CorpusIndex, TfIdf};

fn sample_texts() -> Vec<String> {
    let dataset = generate(&presets::tiny(99));
    dataset
        .blocks
        .iter()
        .flat_map(|b| b.documents.iter().map(|d| d.text.clone()))
        .collect()
}

fn bench_tokenize(c: &mut Criterion) {
    let texts = sample_texts();
    let total_bytes: usize = texts.iter().map(String::len).sum();
    let mut g = c.benchmark_group("textindex");
    g.throughput(criterion::Throughput::Bytes(total_bytes as u64));
    g.bench_function("tokenize_corpus", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for t in &texts {
                n += tokenize(black_box(t)).len();
            }
            n
        })
    });
    g.finish();
}

fn bench_stemmer(c: &mut Criterion) {
    let words: Vec<String> = sample_texts()
        .iter()
        .flat_map(|t| tokenize(t))
        .map(|t| t.text)
        .take(5_000)
        .collect();
    c.bench_function("porter_stem_5k_words", |b| {
        b.iter(|| {
            let mut len = 0usize;
            for w in &words {
                len += porter_stem(black_box(w)).len();
            }
            len
        })
    });
}

fn bench_index_build(c: &mut Criterion) {
    let texts = sample_texts();
    c.bench_function("tfidf_index_build", |b| {
        b.iter_batched(
            Analyzer::english,
            |analyzer| {
                let mut index = CorpusIndex::new();
                for t in &texts {
                    index.add_document(&analyzer.analyze(black_box(t)));
                }
                index.tfidf_vectors(TfIdf::default()).len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_vector_similarity(c: &mut Criterion) {
    let texts = sample_texts();
    let analyzer = Analyzer::english();
    let mut index = CorpusIndex::new();
    for t in &texts {
        index.add_document(&analyzer.analyze(t));
    }
    let vectors = index.tfidf_vectors(TfIdf::default());
    let dim = index.vocabulary_size();
    let mut g = c.benchmark_group("sparse_similarity");
    g.bench_function("cosine_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..vectors.len() {
                for j in i + 1..vectors.len() {
                    acc += vectors[i].cosine(black_box(&vectors[j]));
                }
            }
            acc
        })
    });
    g.bench_function("pearson_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..vectors.len() {
                for j in i + 1..vectors.len() {
                    acc += vectors[i].pearson(black_box(&vectors[j]), dim);
                }
            }
            acc
        })
    });
    g.bench_function("extended_jaccard_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..vectors.len() {
                for j in i + 1..vectors.len() {
                    acc += vectors[i].extended_jaccard(black_box(&vectors[j]));
                }
            }
            acc
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tokenize,
        bench_stemmer,
        bench_index_build,
        bench_vector_similarity
}
criterion_main!(benches);
