#![warn(missing_docs)]

//! # weber-bench
//!
//! The benchmark harness regenerating every table and figure of the
//! paper's evaluation section (see `DESIGN.md` §4 and `EXPERIMENTS.md`),
//! plus Criterion micro-benchmarks and ablation studies.
//!
//! Binaries (run with `cargo run -p weber-bench --release --bin <name>`):
//!
//! | binary                 | reproduces                                  |
//! |------------------------|---------------------------------------------|
//! | `fig1_region_accuracy` | Fig. 1 — per-region accuracy of a function  |
//! | `fig2_www05`           | Fig. 2 — WWW'05 per-function metrics        |
//! | `fig3_weps`            | Fig. 3 — WePS per-function metrics          |
//! | `table2_comparison`    | Table II — I4/I7/I10/C4/C7/C10/W            |
//! | `table3_per_name`      | Table III — per-name Fp breakdown           |
//! | `ablation_regions`     | region scheme / count sweep                 |
//! | `ablation_training`    | training-fraction sweep                     |
//! | `ablation_combination` | combination × clustering sweep              |

use weber_core::blocking::{prepare_dataset, PreparedDataset};
use weber_core::experiment::ExperimentConfig;
use weber_corpus::{generate, presets};
use weber_eval::MetricSet;
use weber_textindex::tfidf::TfIdf;

/// Default seed used by every experiment binary, so printed results are
/// reproducible run to run.
pub const DEFAULT_SEED: u64 = 20100301; // ICDE 2010 flavour

/// Generate and prepare the WWW'05-like dataset.
pub fn prepared_www05(seed: u64) -> PreparedDataset {
    prepare_dataset(&generate(&presets::www05_like(seed)), TfIdf::default())
}

/// Generate and prepare the WePS-like dataset.
pub fn prepared_weps(seed: u64) -> PreparedDataset {
    prepare_dataset(&generate(&presets::weps_like(seed)), TfIdf::default())
}

/// The paper's protocol: 10% training, 5 runs.
pub fn paper_protocol() -> ExperimentConfig {
    ExperimentConfig {
        train_fraction: 0.1,
        runs: 5,
        base_seed: 1,
    }
}

/// Format a metric to 4 decimals, as the paper's tables print them.
pub fn fmt(v: f64) -> String {
    format!("{v:.4}")
}

/// Redirect an output file into `dir` (keeping its file name), creating
/// the directory if needed. This is the `--bench-out DIR` behaviour shared
/// by the perf and block-bench binaries: one flag relocates every report
/// a run produces without respelling each `--*-out` path.
pub fn redirect_into(dir: &str, path: &str) -> String {
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("cannot create bench output directory {dir}: {e}"));
    let name = std::path::Path::new(path)
        .file_name()
        .unwrap_or_else(|| panic!("output path '{path}' has no file name"));
    std::path::Path::new(dir)
        .join(name)
        .to_string_lossy()
        .into_owned()
}

/// The current git revision (short hash, `+dirty` when the tree has local
/// modifications), or `"unknown"` outside a git checkout.
pub fn git_revision() -> String {
    let output = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    match output(&["rev-parse", "--short", "HEAD"]) {
        None => "unknown".to_string(),
        Some(rev) => {
            let dirty = output(&["status", "--porcelain"])
                .map(|s| !s.is_empty())
                .unwrap_or(false);
            if dirty {
                format!("{rev}+dirty")
            } else {
                rev
            }
        }
    }
}

/// Print the run manifest as `#`-prefixed header lines: which binary
/// produced the output, under which seed and configuration, from which
/// git revision and crate version. Archived `results/*.txt` files carry
/// this header so a result can always be traced back to the code that
/// produced it; `scripts/results_check.sh` strips `#` lines before
/// diffing, so the manifest never causes spurious drift.
pub fn print_manifest(binary: &str, seed: u64, config: &str) {
    println!("# manifest: {binary}");
    println!("# seed: {seed}");
    println!("# config: {config}");
    println!("# git-revision: {}", git_revision());
    println!(
        "# crates: weber workspace {} (textindex extract simfun graph ml eval corpus core stream obs bench)",
        env!("CARGO_PKG_VERSION")
    );
}

/// RAII handle returned by [`manifest`]: prints the stage-timing footer
/// when dropped, i.e. when the experiment's `main` returns.
pub struct ManifestGuard {
    _priv: (),
}

impl Drop for ManifestGuard {
    fn drop(&mut self) {
        print_stage_timings();
    }
}

/// Print the manifest header now and the stage-timing footer at scope
/// exit. Experiment binaries call this on the first line of `main`:
///
/// ```ignore
/// let _manifest = weber_bench::manifest("fig2_www05", DEFAULT_SEED, "…");
/// ```
pub fn manifest(binary: &str, seed: u64, config: &str) -> ManifestGuard {
    print_manifest(binary, seed, config);
    ManifestGuard { _priv: () }
}

/// Print the batch pipeline's per-stage wall times as `#`-prefixed footer
/// lines, read from the global metrics registry ([`weber_obs`]). Stages
/// with no observations are omitted; a binary that never ran the pipeline
/// prints nothing.
pub fn print_stage_timings() {
    let snapshot = weber_obs::Registry::global().snapshot();
    let stages: Vec<_> = snapshot
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("core.stage.") && h.count > 0)
        .collect();
    if stages.is_empty() {
        return;
    }
    println!("# stage timings (wall time, microseconds):");
    for h in stages {
        let stage = h
            .name
            .trim_start_matches("core.stage.")
            .trim_end_matches("_us");
        println!(
            "#   {stage}: total={} calls={} mean={:.0} max={}",
            h.sum,
            h.count,
            h.mean(),
            h.max
        );
    }
}

/// Print a markdown-style table: header plus rows of equal arity.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&sep);
    for row in rows {
        line(row);
    }
}

/// A row of the three paper metrics.
pub fn metric_cells(m: &MetricSet) -> Vec<String> {
    vec![fmt(m.fp), fmt(m.f), fmt(m.rand)]
}

/// The shared body of Figures 2 and 3: run every individual function under
/// the threshold criterion, then the combined technique (all functions, all
/// criteria, best-graph selection), and print one row per bar group.
pub fn figure_per_function(title: &str, prepared: &PreparedDataset) {
    use weber_core::decision::DecisionCriterion;
    use weber_core::experiment::run_experiment;
    use weber_core::resolver::ResolverConfig;
    use weber_simfun::functions::{subset_i10, FunctionId};

    let protocol = paper_protocol();
    println!("{title}");
    println!(
        "{} names, {} documents, 10% training, {} runs averaged",
        prepared.blocks.len(),
        prepared.blocks.iter().map(|b| b.block.len()).sum::<usize>(),
        protocol.runs
    );
    println!();
    let mut rows = Vec::new();
    for id in FunctionId::ALL {
        let cfg = ResolverConfig::individual(id, DecisionCriterion::Threshold);
        let out = run_experiment(prepared, &cfg, &protocol).expect("valid configuration");
        let mut row = vec![id.label().to_string()];
        row.extend(metric_cells(&out.mean));
        rows.push(row);
    }
    let combined = run_experiment(
        prepared,
        &ResolverConfig::accuracy_suite(subset_i10()),
        &protocol,
    )
    .expect("valid configuration");
    let mut row = vec!["Combined".to_string()];
    row.extend(metric_cells(&combined.mean));
    rows.push(row);
    print_table(&["function", "Fp-measure", "F-measure", "RandIndex"], &rows);

    let best_individual = rows[..rows.len() - 1]
        .iter()
        .map(|r| r[1].parse::<f64>().expect("formatted metric"))
        .fold(f64::NEG_INFINITY, f64::max);
    println!();
    println!(
        "combined Fp {} vs best individual Fp {} -> improvement {:+.4}",
        fmt(combined.mean.fp),
        fmt(best_individual),
        combined.mean.fp - best_individual
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_is_four_decimals() {
        assert_eq!(fmt(0.81277), "0.8128");
        assert_eq!(fmt(1.0), "1.0000");
    }

    #[test]
    fn protocol_matches_paper() {
        let p = paper_protocol();
        assert_eq!(p.train_fraction, 0.1);
        assert_eq!(p.runs, 5);
    }

    #[test]
    fn metric_cells_order_is_fp_f_rand() {
        let m = MetricSet {
            fp: 0.1,
            f: 0.2,
            rand: 0.3,
        };
        assert_eq!(metric_cells(&m), vec!["0.1000", "0.2000", "0.3000"]);
    }
}
