//! Ablation: random vs uncertainty-sampled supervision.
//!
//! The paper labels a random 10% of each block and notes that performance
//! "depends on how well the training set represents the features of the
//! complete dataset". This sweep compares, at equal labelling budgets,
//! random document selection (paper) against uncertainty sampling
//! (`weber-core::active`): label the documents whose pairwise evidence is
//! closest to the undecidable 0.5.

use weber_bench::{fmt, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::active::{label_docs, select_uncertain_docs};
use weber_core::resolver::{Resolver, ResolverConfig};
use weber_core::supervision::Supervision;
use weber_eval::{MetricSet, RunAverage};
use weber_simfun::functions::{function, subset_i10, SimilarityFunction};

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_active",
        DEFAULT_SEED,
        "C10 configuration, www05-like, label budgets 5/10/20 percent, 5 random seeds",
    );
    println!("Ablation — random vs uncertainty-sampled labelling (WWW'05-like)");
    println!("C10 configuration; budgets as a fraction of each block; 5 random seeds");
    println!();
    let prepared = prepared_www05(DEFAULT_SEED);
    let resolver = Resolver::new(ResolverConfig::accuracy_suite(subset_i10())).unwrap();
    let functions: Vec<std::sync::Arc<dyn SimilarityFunction>> =
        subset_i10().into_iter().map(function).collect();

    let mut rows = Vec::new();
    for budget_fraction in [0.05f64, 0.1, 0.2] {
        let mut random_avg = RunAverage::new();
        let mut active_avg = RunAverage::new();
        for nb in &prepared.blocks {
            let budget = ((nb.block.len() as f64) * budget_fraction).round() as usize;
            let mut r_block = RunAverage::new();
            let mut a_block = RunAverage::new();
            for seed in 1..=5u64 {
                // Random baseline: the paper's protocol.
                let random = Supervision::sample_from_truth(&nb.truth, budget_fraction, seed);
                let res = resolver.resolve(&nb.block, &random).unwrap();
                r_block.push(MetricSet::evaluate(&res.partition, &nb.truth));

                // Active: seed with a small random third of the budget
                // (uncertainty needs nothing, but a seed batch is the
                // standard protocol), then spend the rest by uncertainty.
                let seed_budget = (budget / 3).max(1);
                let seeded = Supervision::sample_from_truth(
                    &nb.truth,
                    seed_budget as f64 / nb.block.len() as f64,
                    seed,
                );
                let extra = select_uncertain_docs(
                    &nb.block,
                    &functions,
                    &seeded,
                    budget.saturating_sub(seeded.len()),
                );
                let mut docs: Vec<usize> = seeded.docs().to_vec();
                docs.extend(extra);
                let active = label_docs(&nb.truth, &docs);
                let res = resolver.resolve(&nb.block, &active).unwrap();
                a_block.push(MetricSet::evaluate(&res.partition, &nb.truth));
            }
            random_avg.push(r_block.mean().expect("runs"));
            active_avg.push(a_block.mean().expect("runs"));
        }
        let r = random_avg.mean().expect("blocks");
        let a = active_avg.mean().expect("blocks");
        rows.push(vec![
            format!("{:.0}%", budget_fraction * 100.0),
            fmt(r.fp),
            fmt(a.fp),
            format!("{:+.4}", a.fp - r.fp),
        ]);
    }
    print_table(&["budget", "random Fp", "active Fp", "delta"], &rows);
}
