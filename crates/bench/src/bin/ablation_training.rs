//! Ablation: training-set fraction.
//!
//! The paper fixes the training set at 10% of each block; this sweep shows
//! how the combined technique degrades with less supervision and improves
//! with more — the practical question for anyone deploying it.

use weber_bench::{metric_cells, prepared_weps, prepared_www05, print_table, DEFAULT_SEED};
use weber_core::blocking::PreparedDataset;
use weber_core::experiment::{run_experiment, ExperimentConfig};
use weber_core::resolver::ResolverConfig;
use weber_simfun::functions::subset_i10;

fn sweep(label: &str, prepared: &PreparedDataset) {
    println!("{label}");
    let mut rows = Vec::new();
    for fraction in [0.02, 0.05, 0.1, 0.2, 0.3, 0.5] {
        let protocol = ExperimentConfig {
            train_fraction: fraction,
            runs: 5,
            base_seed: 1,
        };
        let out = run_experiment(
            prepared,
            &ResolverConfig::accuracy_suite(subset_i10()),
            &protocol,
        )
        .expect("valid configuration");
        let mut row = vec![format!("{:.0}%", fraction * 100.0)];
        row.extend(metric_cells(&out.mean));
        rows.push(row);
    }
    print_table(&["training", "Fp-measure", "F-measure", "RandIndex"], &rows);
    println!();
}

fn main() {
    let _manifest = weber_bench::manifest(
        "ablation_training",
        DEFAULT_SEED,
        "training-fraction sweep, C10 configuration, both datasets, 5 runs averaged",
    );
    println!("Ablation — training fraction (C10 configuration, 5 runs averaged)");
    println!();
    sweep("WWW'05-like dataset", &prepared_www05(DEFAULT_SEED));
    sweep("WePS-like dataset", &prepared_weps(DEFAULT_SEED));
}
